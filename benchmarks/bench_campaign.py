"""Micro-benchmark: distributed campaign shards vs the serial runner.

Runs the ``campaign_shards`` bench spec (four attack units on one model)
twice — serially through :class:`repro.campaign.CampaignRunner` and
distributed across :data:`repro.bench.CAMPAIGN_SHARDS` worker shards — and
gates the two contracts of the distributed runner:

* **byte-stability**: the canonical merge of the per-shard stores is
  byte-identical to the canonical compaction of the serial store (record
  bytes depend only on the spec and scenario, never on which process
  executed them);
* **speedup**: on a host with at least :data:`repro.bench.CAMPAIGN_SHARDS`
  cores, the sharded run completes ≥2× faster than the serial one (the
  acceptance criterion of the distributed executor).

Run with::

    PYTHONPATH=src python benchmarks/bench_campaign.py

The speedup assertion is skipped automatically on hosts with fewer cores
than shards, and can be demoted explicitly with
``BENCH_CAMPAIGN_SKIP_SPEEDUP=1`` (shared CI runners advertise cores they
do not deliver).  The byte-identity assertion always runs.  A
``BENCH_campaign.json`` report is written to the working directory.
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path

from repro.bench import (
    CAMPAIGN_SHARDS,
    BenchmarkResult,
    host_info,
    peak_rss_bytes,
    write_report,
)
from repro.bench.workloads import CAMPAIGN_SHARDS_SPEC
from repro.campaign import (
    CampaignSpec,
    compact_store,
    find_shard_stores,
    merge_stores,
    run_campaign,
)

#: minimum serial/sharded wall ratio on an adequately-cored host
SPEEDUP_FLOOR = 2.0


def main() -> None:
    spec = CampaignSpec(**CAMPAIGN_SHARDS_SPEC)  # type: ignore[arg-type]
    scenarios = spec.expand()
    host = host_info()
    cores = int(host["cores"])
    print(
        f"campaign: {len(scenarios)} scenarios "
        f"({len(spec.models)} model x {len(spec.attacks)} attacks), "
        f"{spec.trials} trials each"
    )
    print(f"host: {cores} cores; shards: {CAMPAIGN_SHARDS}")

    with tempfile.TemporaryDirectory() as tmp:
        serial_store = Path(tmp) / "serial.jsonl"
        serial_start = time.perf_counter()
        serial_summary = run_campaign(spec, str(serial_store), backend="numpy")
        serial_wall = time.perf_counter() - serial_start
        assert serial_summary.executed == len(scenarios)
        print(f"serial:  {serial_wall * 1e3:9.1f} ms ({serial_summary.describe()})")

        sharded_store = Path(tmp) / "sharded.jsonl"
        sharded_start = time.perf_counter()
        sharded_summary = run_campaign(
            spec, str(sharded_store), backend="numpy", shards=CAMPAIGN_SHARDS
        )
        sharded_wall = time.perf_counter() - sharded_start
        assert sharded_summary.executed == len(scenarios)
        print(f"sharded: {sharded_wall * 1e3:9.1f} ms ({sharded_summary.describe()})")

        shard_paths = find_shard_stores(sharded_store)
        assert shard_paths, "distributed run produced no shard stores"
        merged = merge_stores(shard_paths, output=Path(tmp) / "merged.jsonl")
        compacted = compact_store(serial_store, output=Path(tmp) / "compacted.jsonl")
        assert merged == compacted, (
            "merge of the shard stores must be byte-identical to the "
            "compacted serial store"
        )
        print(f"byte-identity: OK ({len(merged)} canonical bytes)")

        speedup = serial_wall / sharded_wall if sharded_wall > 0 else float("inf")
        print(f"speedup: {speedup:.2f}x (floor {SPEEDUP_FLOOR:.1f}x)")

        skip_env = os.environ.get("BENCH_CAMPAIGN_SKIP_SPEEDUP") == "1"
        if cores < CAMPAIGN_SHARDS:
            print(
                f"speedup gate skipped: host has {cores} core(s), "
                f"gate requires >= {CAMPAIGN_SHARDS}"
            )
        elif skip_env:
            print("speedup gate skipped: BENCH_CAMPAIGN_SKIP_SPEEDUP=1")
        else:
            assert speedup >= SPEEDUP_FLOOR, (
                f"--shards {CAMPAIGN_SHARDS} must run >= {SPEEDUP_FLOOR:.1f}x "
                f"faster than serial on a {cores}-core host, got {speedup:.2f}x"
            )

        results = [
            BenchmarkResult(
                name="campaign_serial",
                backend="numpy",
                dtype="float64",
                wall_s=serial_wall,
                samples=len(scenarios),
                repeats=1,
                throughput=len(scenarios) / serial_wall,
                cache_hit_rate=0.0,
                peak_rss_bytes=peak_rss_bytes(),
                extra={"scenarios": len(scenarios)},
            ),
            BenchmarkResult(
                name="campaign_sharded",
                backend="numpy",
                dtype="float64",
                wall_s=sharded_wall,
                samples=len(scenarios),
                repeats=1,
                throughput=len(scenarios) / sharded_wall,
                cache_hit_rate=0.0,
                peak_rss_bytes=peak_rss_bytes(),
                extra={
                    "scenarios": len(scenarios),
                    "shards": CAMPAIGN_SHARDS,
                    "serial_wall_s": serial_wall,
                    "speedup": speedup,
                },
            ),
        ]
        write_report(results, "BENCH_campaign.json", meta={"speedup": speedup})
        print("wrote BENCH_campaign.json")


if __name__ == "__main__":
    main()
