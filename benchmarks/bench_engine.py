"""Micro-benchmark: batched execution engine vs. the per-sample reference path.

Measures mean validation coverage (the Fig. 2 quantity) over a 100-image pool
on a Table-I-style MNIST model, comparing

* ``mean_validation_coverage_reference`` — one forward/backward pass per
  image (the pre-engine hot path), against
* ``mean_validation_coverage`` — chunked batched passes through
  :class:`repro.engine.Engine`,

and additionally reports the memoized revisit time (the greedy loop /
ablation-sweep access pattern).  The script asserts the acceptance criteria
of the batched-engine change: ≥5× wall-clock speedup and ≤1e-8 numerical
equivalence.

Run with::

    PYTHONPATH=src python benchmarks/bench_engine.py

Set ``BENCH_ENGINE_SKIP_SPEEDUP=1`` to enforce only the numerical-equivalence
assertion (for shared CI runners whose wall-clock is too noisy for a
reliable speedup ratio).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.coverage.parameter_coverage import (
    mean_validation_coverage,
    mean_validation_coverage_reference,
)
from repro.data.synth_digits import generate_digits
from repro.engine import Engine
from repro.models.zoo import mnist_cnn

POOL_SIZE = 100
REQUIRED_SPEEDUP = 5.0
TOLERANCE = 1e-8


def _best_of(repeats: int, fn) -> tuple[float, float]:
    """Return ``(best_seconds, value)`` over ``repeats`` timed calls.

    One untimed warm-up call precedes the measurements so allocator and
    index-cache effects do not pollute either side of the comparison.
    """
    value = fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def main() -> None:
    model = mnist_cnn(width_multiplier=0.125, input_size=28, rng=0)
    images = generate_digits(POOL_SIZE, rng=1, size=28).images
    print(f"model: {model.name} ({model.num_parameters()} parameters)")
    print(f"pool:  {POOL_SIZE} images of shape {images.shape[1:]}")

    ref_time, ref_value = _best_of(
        3, lambda: mean_validation_coverage_reference(model, images)
    )
    print(f"per-sample reference: {ref_time * 1e3:9.1f} ms  (coverage {ref_value:.6f})")

    # fresh uncached engine each call: measures the batched compute, not the
    # memo cache
    batched_time, batched_value = _best_of(
        5,
        lambda: mean_validation_coverage(
            model, images, engine=Engine(model, cache=False)
        ),
    )
    print(f"batched engine:       {batched_time * 1e3:9.1f} ms  (coverage {batched_value:.6f})")

    engine = Engine(model)
    engine.mean_validation_coverage(images)  # warm the memo cache
    cached_time, cached_value = _best_of(
        3, lambda: engine.mean_validation_coverage(images)
    )
    print(f"memoized revisit:     {cached_time * 1e3:9.1f} ms  (coverage {cached_value:.6f})")

    speedup = ref_time / batched_time
    error = abs(ref_value - batched_value)
    print(f"\nspeedup (batched vs per-sample): {speedup:.1f}x")
    print(f"numerical difference:            {error:.2e}")

    assert error <= TOLERANCE, (
        f"batched coverage differs from reference by {error:.2e} > {TOLERANCE:.0e}"
    )
    assert abs(cached_value - batched_value) <= TOLERANCE
    if os.environ.get("BENCH_ENGINE_SKIP_SPEEDUP"):
        print(f"OK: ≤{TOLERANCE:.0e} equivalence holds (speedup assertion skipped)")
        return
    assert speedup >= REQUIRED_SPEEDUP, (
        f"batched path is only {speedup:.1f}x faster; required ≥{REQUIRED_SPEEDUP}x"
    )
    print(f"OK: ≥{REQUIRED_SPEEDUP:g}x speedup and ≤{TOLERANCE:.0e} equivalence hold")


if __name__ == "__main__":
    main()
