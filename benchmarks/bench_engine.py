"""Micro-benchmark: batched engine vs per-sample reference, plus backends.

Built on the shared :mod:`repro.bench` harness (one timing/assertion codepath
for this script, ``python -m repro.bench`` and CI).  Measures mean validation
coverage (the Fig. 2 quantity) over a 100-image pool on a Table-I-style MNIST
model, comparing

* ``mean_validation_coverage_reference`` — one forward/backward pass per
  image (the pre-engine hot path),
* ``mean_validation_coverage`` — chunked batched passes through
  :class:`repro.engine.Engine` (``NumpyBackend``),
* the memoized revisit (greedy-loop / ablation-sweep access pattern),
* on hosts with ≥ 4 usable cores, the multi-core ``ParallelBackend``, and
* the ``ModelAxisBackend``: one fused ``stacked_forward`` dispatch over 8
  perturbed model copies vs the bit-identical per-copy loop (the Tables
  II/III detection inner loop).

Asserted acceptance criteria:

* ≥ 5× batched-vs-per-sample wall-clock speedup and ≤ 1e-8 equivalence;
* on ≥ 4-core hosts, ≥ 2× parallel-vs-numpy wall-clock on the 100-image
  coverage+detection workload at ≤ 1e-8 equivalence;
* ≥ 3× fused-vs-loop wall-clock on the 8-copy stacked replay at exact
  (bitwise) equality of the stacked logits.

Run with::

    PYTHONPATH=src python benchmarks/bench_engine.py

Set ``BENCH_ENGINE_SKIP_SPEEDUP=1`` to enforce only the numerical-equivalence
assertions (for shared CI runners whose wall-clock is too noisy for reliable
speedup ratios).  A ``BENCH_engine.json`` report of every measurement is
written next to the working directory.
"""

from __future__ import annotations

import os

import numpy as np

from repro.attacks.base import bias_flat_indices
from repro.bench import measure, write_report
from repro.engine.model_axis import ModelAxisBackend
from repro.coverage.parameter_coverage import (
    mean_validation_coverage,
    mean_validation_coverage_reference,
)
from repro.data.synth_digits import generate_digits
from repro.engine import Engine, ParallelBackend, default_worker_count
from repro.models.zoo import mnist_cnn

POOL_SIZE = 100
REQUIRED_SPEEDUP = 5.0
REQUIRED_PARALLEL_SPEEDUP = 2.0
REQUIRED_MODEL_AXIS_SPEEDUP = 3.0
MODEL_AXIS_COPIES = 8
PARALLEL_MIN_CORES = 4
TOLERANCE = 1e-8


def main() -> None:
    model = mnist_cnn(width_multiplier=0.125, input_size=28, rng=0)
    images = generate_digits(POOL_SIZE, rng=1, size=28).images
    print(f"model: {model.name} ({model.num_parameters()} parameters)")
    print(f"pool:  {POOL_SIZE} images of shape {images.shape[1:]}")

    results = []

    reference = measure(
        "coverage_reference",
        lambda: mean_validation_coverage_reference(model, images),
        samples=POOL_SIZE,
        backend="per-sample",
        repeats=3,
    )
    results.append(reference)
    print(
        f"per-sample reference: {reference.wall_s * 1e3:9.1f} ms  "
        f"(coverage {reference.value:.6f})"
    )

    # fresh uncached engine each call: measures the batched compute, not the
    # memo cache
    batched = measure(
        "coverage",
        lambda: mean_validation_coverage(model, images, engine=Engine(model, cache=False)),
        samples=POOL_SIZE,
        backend="numpy",
        repeats=5,
    )
    results.append(batched)
    print(
        f"batched engine:       {batched.wall_s * 1e3:9.1f} ms  "
        f"(coverage {batched.value:.6f})"
    )

    engine = Engine(model)
    engine.mean_validation_coverage(images)  # warm the memo cache
    cached = measure(
        "revisit",
        lambda: engine.mean_validation_coverage(images),
        samples=POOL_SIZE,
        backend="numpy",
        repeats=3,
    )
    # read the hit rate after the timed revisits so they are counted
    cached.cache_hit_rate = engine.stats.hit_rate
    results.append(cached)
    print(
        f"memoized revisit:     {cached.wall_s * 1e3:9.1f} ms  "
        f"(coverage {cached.value:.6f})"
    )

    speedup = reference.wall_s / batched.wall_s
    error = abs(reference.value - batched.value)
    print(f"\nspeedup (batched vs per-sample): {speedup:.1f}x")
    print(f"numerical difference:            {error:.2e}")

    cores = default_worker_count()
    parallel_speedup = None
    parallel_error = None
    if cores >= PARALLEL_MIN_CORES:
        backend = ParallelBackend()
        try:
            # shared backend keeps the worker pool warm across repeats; the
            # measured quantity is the coverage+detection-style batched pass
            par = measure(
                "coverage",
                lambda: mean_validation_coverage(
                    model, images, engine=Engine(model, backend=backend, cache=False)
                ),
                samples=POOL_SIZE,
                backend="parallel",
                repeats=5,
            )
        finally:
            backend.close()
        results.append(par)
        parallel_speedup = batched.wall_s / par.wall_s
        parallel_error = abs(par.value - batched.value)
        print(
            f"parallel backend:     {par.wall_s * 1e3:9.1f} ms  "
            f"({cores} cores, {parallel_speedup:.1f}x vs numpy)"
        )
    else:
        print(f"parallel backend:     skipped ({cores} usable core(s) < {PARALLEL_MIN_CORES})")

    # model-axis fused dispatch vs the bit-identical per-copy loop: the
    # detection inner loop at MODEL_AXIS_COPIES perturbed copies per group.
    # Each copy carries a large fault on a distinct output-head bias (the
    # single-bias attack's most effective placement, and the fused backend's
    # design point — the shared trunk is computed once for the whole group)
    biases = bias_flat_indices(model)
    copies = []
    for trial in range(MODEL_AXIS_COPIES):
        copy = model.copy()
        copy.parameter_view().add_scalar(int(biases[-1 - trial]), 10.0)
        copies.append(copy)
    loop_engine = Engine(model, cache=False)
    looped = measure(
        "model_axis",
        lambda: loop_engine.stacked_forward(copies, images),
        samples=POOL_SIZE * MODEL_AXIS_COPIES,
        backend="numpy",
        repeats=5,
    )
    results.append(looped)
    fused_engine = Engine(model, backend=ModelAxisBackend(), cache=False)
    fused = measure(
        "model_axis",
        lambda: fused_engine.stacked_forward(copies, images),
        samples=POOL_SIZE * MODEL_AXIS_COPIES,
        backend="model_axis",
        repeats=5,
    )
    results.append(fused)
    model_axis_speedup = looped.wall_s / fused.wall_s
    model_axis_identical = np.array_equal(
        loop_engine.stacked_forward(copies, images),
        fused_engine.stacked_forward(copies, images),
    )
    print(
        f"model-axis fused:     {fused.wall_s * 1e3:9.1f} ms  "
        f"({MODEL_AXIS_COPIES} copies, {model_axis_speedup:.1f}x vs per-copy loop "
        f"{looped.wall_s * 1e3:.1f} ms)"
    )

    write_report(results, "BENCH_engine.json", meta={"pool_size": POOL_SIZE})

    assert error <= TOLERANCE, (
        f"batched coverage differs from reference by {error:.2e} > {TOLERANCE:.0e}"
    )
    assert abs(cached.value - batched.value) <= TOLERANCE
    if parallel_error is not None:
        assert parallel_error <= TOLERANCE, (
            f"parallel coverage differs from numpy by {parallel_error:.2e} > {TOLERANCE:.0e}"
        )
    assert model_axis_identical, (
        "model-axis stacked logits are not bitwise identical to the per-copy loop"
    )
    if os.environ.get("BENCH_ENGINE_SKIP_SPEEDUP"):
        print(f"OK: ≤{TOLERANCE:.0e} equivalence holds (speedup assertions skipped)")
        return
    assert speedup >= REQUIRED_SPEEDUP, (
        f"batched path is only {speedup:.1f}x faster; required ≥{REQUIRED_SPEEDUP}x"
    )
    if parallel_speedup is not None:
        assert parallel_speedup >= REQUIRED_PARALLEL_SPEEDUP, (
            f"parallel backend is only {parallel_speedup:.1f}x faster; "
            f"required ≥{REQUIRED_PARALLEL_SPEEDUP}x on ≥{PARALLEL_MIN_CORES} cores"
        )
    assert model_axis_speedup >= REQUIRED_MODEL_AXIS_SPEEDUP, (
        f"model-axis fused dispatch is only {model_axis_speedup:.1f}x faster; "
        f"required ≥{REQUIRED_MODEL_AXIS_SPEEDUP}x at {MODEL_AXIS_COPIES} copies"
    )
    print(f"OK: ≥{REQUIRED_SPEEDUP:g}x speedup and ≤{TOLERANCE:.0e} equivalence hold")


if __name__ == "__main__":
    main()
