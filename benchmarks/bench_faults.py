"""Micro-benchmark: the retry wrapper must be free when nothing fails.

:class:`repro.engine.Engine` routes every backend call through
``_backend_call``; with a :class:`repro.faults.FaultPolicy` configured that
adds a :class:`~repro.faults.RetryController` frame per dispatch.  This gate
asserts the fault-free cost of that frame: the policy-wrapped engine must be
within ``2%`` wall-clock of the bare engine on an identical ``forward``
workload, at bitwise-identical outputs.

Run with::

    PYTHONPATH=src python benchmarks/bench_faults.py

Set ``BENCH_FAULTS_SKIP_OVERHEAD=1`` to enforce only the output-equality
assertion (for shared CI runners whose wall-clock jitter exceeds the 2%
budget).  A ``BENCH_faults.json`` report is written to the working
directory.
"""

from __future__ import annotations

import os

import numpy as np

from repro.bench import measure, write_report
from repro.engine import Engine
from repro.faults import FaultPolicy
from repro.models.zoo import small_mlp

BATCH = 256
CALLS_PER_REP = 50
#: fault-free overhead budget of the retry wrapper (fractional)
OVERHEAD_BUDGET = 0.02


def _forward_loop(engine: Engine, batch: np.ndarray) -> np.ndarray:
    out = None
    for _ in range(CALLS_PER_REP):
        out = engine.forward(batch)
    return out


def main() -> None:
    model = small_mlp(rng=0)
    batch = np.random.default_rng(1).normal(size=(BATCH, 16))
    bare = Engine(model, cache=False)
    wrapped = Engine(model, cache=False, fault_policy=FaultPolicy())
    print(f"model: {model.name} ({model.num_parameters()} parameters)")
    print(f"workload: {CALLS_PER_REP} forward calls x {BATCH} samples")

    # interleave-by-repeat (both measured with best-of timing) so drift in
    # machine load hits both engines alike
    plain = measure(
        "forward_plain",
        lambda: _forward_loop(bare, batch),
        samples=BATCH * CALLS_PER_REP,
        backend="numpy",
        repeats=7,
    )
    faulted = measure(
        "forward_fault_policy",
        lambda: _forward_loop(wrapped, batch),
        samples=BATCH * CALLS_PER_REP,
        backend="numpy",
        repeats=7,
    )
    print(f"bare engine:    {plain.wall_s * 1e3:9.2f} ms")
    print(f"policy-wrapped: {faulted.wall_s * 1e3:9.2f} ms")

    overhead = faulted.wall_s / plain.wall_s - 1.0
    print(f"retry-wrapper overhead: {overhead * 100:+.2f}% (budget {OVERHEAD_BUDGET:.0%})")

    out_plain = bare.forward(batch)
    out_wrapped = wrapped.forward(batch)
    assert np.array_equal(out_plain, out_wrapped), (
        "fault-policy engine must be bitwise-identical on the fault-free path"
    )
    assert wrapped.stats.retries == 0 and wrapped.stats.downgrades == 0

    write_report(
        [plain, faulted],
        "BENCH_faults.json",
        meta={"overhead_fraction": overhead, "budget": OVERHEAD_BUDGET},
    )

    if os.environ.get("BENCH_FAULTS_SKIP_OVERHEAD"):
        print("BENCH_FAULTS_SKIP_OVERHEAD set: overhead gate skipped")
        return
    assert overhead < OVERHEAD_BUDGET, (
        f"fault-free retry-wrapper overhead {overhead:.1%} exceeds the "
        f"{OVERHEAD_BUDGET:.0%} budget"
    )
    print("PASS")


if __name__ == "__main__":
    main()
