"""Micro-benchmark: greedy selection over in-RAM vs memory-mapped masks.

Built on the shared :mod:`repro.bench` harness.  Measures Algorithm 1's
greedy inner loop (repeated ``best_candidate`` + union) over the packed
activation masks of a pool 4× the engine benchmark's, comparing

* the dense in-RAM :class:`~repro.coverage.MaskMatrix` (the packed-refactor
  baseline), against
* a disk-spilled :class:`~repro.coverage.MmapMaskMatrix` whose in-RAM
  window is capped at *half* the packed matrix bytes, so every
  ``best_candidate`` sweep streams the store in windows instead of holding
  it resident.

Asserted acceptance criteria:

* the mmap-backed selection picks byte-identical test indices (and final
  coverage words) under half the in-RAM budget;
* the mmap store on disk is byte-for-byte the packed words of the in-RAM
  matrix (plus the 24-byte header).

Run with::

    PYTHONPATH=src python benchmarks/bench_selection.py

A ``BENCH_selection.json`` report is written to the working directory.
There is no wall-clock speedup assertion here — the mmap path trades a
bounded slowdown (windowed re-reads through the page cache) for the memory
cap; the report records the ratio so regressions stay visible.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import List, Tuple

import numpy as np

from repro.bench import measure, write_report
from repro.coverage.bitmap import CoverageMap, MaskMatrix, MmapMaskMatrix
from repro.data.synth_digits import generate_digits
from repro.engine import Engine
from repro.models.zoo import mnist_cnn

BASE_POOL_SIZE = 100
POOL_MULTIPLIER = 4
BUDGET = 25


def greedy(masks: MaskMatrix, budget: int) -> Tuple[List[int], CoverageMap]:
    covered = CoverageMap(masks.nbits)
    available = np.ones(len(masks), dtype=bool)
    selected: List[int] = []
    for _ in range(budget):
        best, _count = masks.best_candidate(covered, available)
        covered.union_(masks.row(best))
        available[best] = False
        selected.append(int(best))
    return selected, covered


def main() -> None:
    model = mnist_cnn(width_multiplier=0.125, input_size=28, rng=0)
    pool_size = BASE_POOL_SIZE * POOL_MULTIPLIER
    images = generate_digits(pool_size, rng=2, size=28).images
    engine = Engine(model)
    print(f"model: {model.name} ({model.num_parameters()} parameters)")
    print(f"pool:  {pool_size} images, greedy budget {BUDGET}")

    results = []
    dense = engine.packed_activation_masks(images)
    in_ram = measure(
        "selection",
        lambda: greedy(dense, BUDGET)[1].fraction,
        samples=pool_size,
        backend="in-ram",
        repeats=3,
        value_of=lambda r: r,
        packed_mask_bytes=int(dense.nbytes),
    )
    results.append(in_ram)
    print(f"in-RAM packed:  {in_ram.wall_s * 1e3:9.1f} ms  (coverage {in_ram.value:.6f})")

    with tempfile.TemporaryDirectory() as tmp:
        spilled = engine.packed_activation_masks(images, spill_dir=tmp)
        window_budget = max(1, int(dense.nbytes) // 2)
        windowed = MmapMaskMatrix.open(spilled.path, memory_budget_bytes=window_budget)
        stored = Path(windowed.path).read_bytes()
        mmap_result = measure(
            "mmap_selection",
            lambda: greedy(windowed, BUDGET)[1].fraction,
            samples=pool_size,
            backend="mmap",
            repeats=3,
            value_of=lambda r: r,
            packed_mask_bytes=int(dense.nbytes),
            window_budget_bytes=window_budget,
        )
        results.append(mmap_result)
        print(
            f"mmap windowed:  {mmap_result.wall_s * 1e3:9.1f} ms  "
            f"(window {window_budget} of {int(dense.nbytes)} packed bytes, "
            f"{mmap_result.wall_s / in_ram.wall_s:.2f}x in-RAM wall)"
        )

        dense_selected, dense_covered = greedy(dense, BUDGET)
        mmap_selected, mmap_covered = greedy(windowed, BUDGET)

    write_report(
        results,
        "BENCH_selection.json",
        meta={
            "pool_size": pool_size,
            "pool_multiplier": POOL_MULTIPLIER,
            "budget": BUDGET,
            "window_budget_bytes": window_budget,
        },
    )

    assert dense_selected == mmap_selected, (
        f"mmap-backed greedy selected {mmap_selected}, in-RAM {dense_selected}"
    )
    assert np.array_equal(dense_covered.words, mmap_covered.words)
    assert stored[-dense.words.nbytes :] == np.ascontiguousarray(
        dense.words.astype("<u8", copy=False)
    ).tobytes(), "spilled store bytes differ from the in-RAM packed words"
    print(
        f"OK: byte-identical selection under a {window_budget}-byte window "
        f"({int(dense.nbytes)} packed bytes in RAM otherwise)"
    )


if __name__ == "__main__":
    main()
