"""Micro-benchmark: the serve coalescer must beat uncoalesced serving.

:class:`repro.serve.ValidationService` merges concurrent validates of one
release package into single ``stacked_forward`` dispatches; eight clients
replaying the same parameter digest should cost roughly one replay, not
eight.  This gate drives :data:`CONCURRENT` concurrent same-digest validates
through two services — coalescing on and off — and asserts:

* **byte-identity**: every coalesced outcome matches the in-process
  :func:`repro.validation.validate_ip` reference exactly (same mismatch
  indices, bitwise-equal max deviation);
* **dedup**: each coalesced drive performs exactly one engine dispatch;
* **speedup**: the coalesced drive is at least :data:`SPEEDUP_FLOOR`×
  faster than the uncoalesced one.

Run with::

    PYTHONPATH=src python benchmarks/bench_serve.py

Set ``BENCH_SERVE_SKIP_SPEEDUP=1`` to enforce only the byte-identity and
dedup assertions (for shared CI runners whose wall-clock jitter swamps the
ratio).  A ``BENCH_serve.json`` report is written to the working directory.
"""

from __future__ import annotations

import asyncio
import os

import numpy as np

from repro.api import ReleaseRequest, RunConfig, Session, ValidateRequest
from repro.bench import measure, write_report
from repro.serve import SERVE_BATCH_SIZE, ServeConfig, ValidationService
from repro.validation.user import validate_ip

#: concurrent same-digest validates per drive (the acceptance fan-in)
CONCURRENT = 8
#: required coalesced-vs-uncoalesced wall-clock ratio
SPEEDUP_FLOOR = 2.0
REPEATS = 5

#: a release whose replay compute dominates the per-request bookkeeping: the
#: half-width Table-I MNIST model with a 1024-test package (the ``random``
#: strategy selects from the training set — ``train_size`` must cover the
#: test budget — and keeps the untimed vendor setup cheap)
RELEASE_SPEC = dict(
    dataset="mnist",
    num_tests=1024,
    strategy="random",
    criterion="default",
    train_size=1024,
    test_size=24,
    epochs=1,
    width_multiplier=0.5,
    candidate_pool=1024,
    seed=0,
)


def _service(coalesce: bool) -> ValidationService:
    return ValidationService(
        ServeConfig(
            coalesce=coalesce,
            coalesce_window_s=0.002,
            max_stacked_models=CONCURRENT,
            request_timeout_s=None,
        )
    )


def _drive(service: ValidationService, released) -> list:
    async def run():
        return await asyncio.gather(
            *(
                service.validate(
                    ValidateRequest(package=released.package), ip=released.model
                )
                for _ in range(CONCURRENT)
            )
        )

    return asyncio.run(run())


def main() -> None:
    with Session(RunConfig(batch_size=SERVE_BATCH_SIZE)) as vendor:
        released = vendor.release(ReleaseRequest(**RELEASE_SPEC))
    print(released.describe())
    print(f"workload: {CONCURRENT} concurrent same-digest validates per drive")

    reference = validate_ip(released.model, released.package)

    uncoalesced = _service(False)
    try:
        plain = measure(
            "serve_uncoalesced",
            lambda: _drive(uncoalesced, released),
            samples=CONCURRENT * len(released.package.tests),
            backend="numpy",
            repeats=REPEATS,
            value_of=lambda outcomes: sum(o.passed for o in outcomes) / len(outcomes),
        )
        assert uncoalesced.coalescer.stats.deduped == 0
    finally:
        uncoalesced.close()

    coalesced = _service(True)
    try:
        merged = measure(
            "serve_coalesced",
            lambda: _drive(coalesced, released),
            samples=CONCURRENT * len(released.package.tests),
            backend="numpy",
            repeats=REPEATS,
            value_of=lambda outcomes: sum(o.passed for o in outcomes) / len(outcomes),
        )
        outcomes = _drive(coalesced, released)
        stats = coalesced.coalescer.stats
    finally:
        coalesced.close()

    print(f"uncoalesced: {plain.wall_s * 1e3:9.2f} ms")
    print(f"coalesced:   {merged.wall_s * 1e3:9.2f} ms")
    drives = REPEATS + 2  # warm-up + timed repeats + the identity drive
    print(
        f"coalescer: {stats.requests} requests -> "
        f"{stats.dispatches} dispatches (hit rate {stats.hit_rate:.3f})"
    )

    # dedup: one engine dispatch per drive, everything else deduplicated
    assert stats.requests == drives * CONCURRENT
    assert stats.dispatches == drives, (
        f"expected {drives} dispatches ({drives} drives), got {stats.dispatches}"
    )

    # byte-identity: a coalesced answer is the in-process answer, bit for bit
    for outcome in outcomes:
        assert outcome.passed == reference.passed
        assert list(outcome.mismatched_indices) == list(reference.mismatched_indices)
        assert np.float64(outcome.max_output_deviation) == np.float64(
            reference.max_output_deviation
        ), "coalesced replay must be bitwise-identical to validate_ip"

    speedup = plain.wall_s / merged.wall_s if merged.wall_s > 0 else float("inf")
    print(f"coalesced speedup: {speedup:.2f}x (floor {SPEEDUP_FLOOR:.1f}x)")

    write_report(
        [plain, merged],
        "BENCH_serve.json",
        meta={
            "concurrent": CONCURRENT,
            "speedup": speedup,
            "floor": SPEEDUP_FLOOR,
            "coalesce_hit_rate": stats.hit_rate,
        },
    )

    if os.environ.get("BENCH_SERVE_SKIP_SPEEDUP"):
        print("BENCH_SERVE_SKIP_SPEEDUP set: speedup gate skipped")
        return
    assert speedup >= SPEEDUP_FLOOR, (
        f"coalesced serving is only {speedup:.2f}x faster than uncoalesced; "
        f"the floor is {SPEEDUP_FLOOR:.1f}x"
    )
    print("PASS")


if __name__ == "__main__":
    main()
