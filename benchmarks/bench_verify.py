"""Query-efficiency gate: sequential verification must beat full replay.

``repro.online`` replays a validation package in discriminative-power order
with SPRT early stopping instead of replaying every test.  This gate runs
the pinned CI-matrix scenarios — every (model, criterion, attack) cell of
``.github/campaign/ci_matrix.toml`` plus one clean cell per package — and
asserts:

* **identical verdicts**: the sequential verdict matches the full-replay
  verdict (detected / clean) on every scenario;
* **query savings**: across all scenarios, sequential verification issues
  at least :data:`QUERY_RATIO_FLOOR`× fewer queries than full replay;
* **remote byte-identity**: an un-budgeted full replay driven through
  :class:`repro.online.RemoteModel` against a loopback serve process
  produces the same mismatch set, bit for bit, as in-process
  :func:`repro.validation.validate_ip`.

Run with::

    PYTHONPATH=src python benchmarks/bench_verify.py

Set ``BENCH_VERIFY_SKIP_REMOTE=1`` to skip the loopback HTTP leg (for
sandboxes without sockets).  A ``BENCH_verify.json`` report is written to
the working directory.
"""

from __future__ import annotations

import asyncio
import os
import threading

import numpy as np

from repro.api import ReleaseRequest, RunConfig, Session
from repro.bench import measure, write_report
from repro.online import CallableTransport, RemoteModel, verify_online
from repro.validation import default_attack_factories, validate_ip

#: the pinned CI-matrix axes (.github/campaign/ci_matrix.toml)
MODELS = ("mnist", "cifar")
CRITERIA = ("default", "exact")
ATTACKS = ("sba", "gda", "random", "bitflip")
SEED = 2019
#: tampered copies per (model, criterion, attack) cell
TRIALS = 3
#: total full-replay queries must exceed sequential queries by this factor
QUERY_RATIO_FLOOR = 3.0

RELEASE_SPEC = dict(
    num_tests=24,
    strategy="combined",
    train_size=80,
    test_size=24,
    epochs=2,
    width_multiplier=0.125,
    candidate_pool=40,
    gradient_updates=8,
    measure_discrimination=True,
    discrimination_trials=4,
    seed=SEED,
)


def _scenarios(session):
    """Yield (label, ip_callable, package, expect_detected) per cell."""
    for model_name in MODELS:
        for criterion in CRITERIA:
            released = session.release(
                ReleaseRequest(
                    dataset=model_name, criterion=criterion, **RELEASE_SPEC
                )
            )
            package = released.package
            yield f"{model_name}/{criterion}/clean", released.model, package, False
            factories = default_attack_factories(package.tests)
            for attack in ATTACKS:
                rng = np.random.default_rng(SEED + ATTACKS.index(attack))
                for trial in range(TRIALS):
                    tampered = factories[attack](rng).apply(released.model).model
                    label = f"{model_name}/{criterion}/{attack}#{trial}"
                    yield label, tampered, package, None  # verdict from replay


def _remote_leg(session, released) -> None:
    """Loopback serve: RemoteModel full replay == in-process validate_ip."""
    import tempfile

    from repro.online import HttpTransport
    from repro.serve.config import ServeConfig
    from repro.serve.http import HttpServer
    from repro.serve.service import ValidationService

    tmp = tempfile.mkdtemp(prefix="bench_verify_")
    released.save(tmp)
    holder: dict = {}

    def run_server() -> None:
        async def main() -> None:
            config = ServeConfig(port=0, artifacts_root=tmp)
            service = ValidationService(config)
            server = HttpServer(service, config)
            _, port = await server.start()
            holder["port"] = port
            holder["loop"] = asyncio.get_running_loop()
            stop = asyncio.Event()
            holder["stop"] = stop
            await stop.wait()
            await server.stop()

        asyncio.run(main())

    thread = threading.Thread(target=run_server, daemon=True)
    thread.start()
    import time

    while "port" not in holder:
        time.sleep(0.01)
    url = f"http://127.0.0.1:{holder['port']}"
    try:
        remote = RemoteModel(
            HttpTransport(
                url,
                model_path="model.npz",
                arch=released.request.dataset,
                width_multiplier=released.request.width_multiplier,
            )
        )
        remote_report = validate_ip(remote, released.package)
        local_report = validate_ip(released.model, released.package)
        assert list(remote_report.mismatched_indices) == list(
            local_report.mismatched_indices
        )
        assert np.float64(remote_report.max_output_deviation) == np.float64(
            local_report.max_output_deviation
        ), "remote replay must be bitwise-identical to validate_ip"
        assert np.array_equal(
            remote(released.package.tests),
            released.model.predict(released.package.tests),
        )
        print(
            f"remote byte-identity: OK "
            f"({remote.ledger.queries_sent} queries over HTTP)"
        )
    finally:
        holder["loop"].call_soon_threadsafe(holder["stop"].set)
        thread.join(timeout=10)


def main() -> None:
    session = Session(RunConfig(seed=SEED))
    cells = list(_scenarios(session))
    print(f"workload: {len(cells)} pinned scenarios")

    full_queries = 0
    sequential_queries = 0
    mismatched_verdicts = []

    def sweep():
        nonlocal full_queries, sequential_queries, mismatched_verdicts
        full_queries = 0
        sequential_queries = 0
        mismatched_verdicts = []
        for label, ip, package, expect_detected in cells:
            full = validate_ip(ip, package)
            full_queries += package.num_tests
            remote = RemoteModel(CallableTransport(ip.predict), cache=False)
            report = verify_online(remote, package)
            sequential_queries += report.queries_used
            if report.detected != full.detected:
                mismatched_verdicts.append(label)
            if expect_detected is not None and full.detected != expect_detected:
                mismatched_verdicts.append(f"{label} (full replay surprise)")
        return sequential_queries

    result = measure(
        "verify_sequential_sweep",
        sweep,
        samples=len(cells),
        backend="numpy",
        repeats=1,
        warmup=0,
        value_of=lambda q: q,
    )

    ratio = full_queries / sequential_queries if sequential_queries else float("inf")
    print(f"full replay:  {full_queries} queries")
    print(f"sequential:   {sequential_queries} queries")
    print(f"query ratio:  {ratio:.2f}x (floor {QUERY_RATIO_FLOOR:.1f}x)")

    assert not mismatched_verdicts, (
        "sequential verdict diverged from full replay on: "
        + ", ".join(mismatched_verdicts)
    )
    assert ratio >= QUERY_RATIO_FLOOR, (
        f"sequential verification saved only {ratio:.2f}x queries; "
        f"the floor is {QUERY_RATIO_FLOOR:.1f}x"
    )

    if os.environ.get("BENCH_VERIFY_SKIP_REMOTE"):
        print("BENCH_VERIFY_SKIP_REMOTE set: loopback HTTP leg skipped")
    else:
        released = session.release(
            ReleaseRequest(dataset="mnist", criterion="default", **RELEASE_SPEC)
        )
        _remote_leg(session, released)

    write_report(
        [result],
        "BENCH_verify.json",
        meta={
            "scenarios": len(cells),
            "full_queries": full_queries,
            "sequential_queries": sequential_queries,
            "query_ratio": ratio,
            "floor": QUERY_RATIO_FLOOR,
        },
    )
    print("PASS")


if __name__ == "__main__":
    main()
