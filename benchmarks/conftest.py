"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper on scaled-down
models (same topology and activations as Table I, reduced widths) and
synthetic datasets, printing the same rows/series the paper reports.  Absolute
numbers are not expected to match the paper — the substrate differs — but the
qualitative shape (orderings, trends, who wins) should.

Training the two victim models is done once per session here; the individual
benchmarks then time only the experiment they reproduce.
"""

from __future__ import annotations

import pytest

from repro.analysis.sweep import PreparedExperiment, build_method_packages, prepare_experiment
from repro.utils.config import TrainingConfig


@pytest.fixture(scope="session")
def prepared_mnist() -> PreparedExperiment:
    """Scaled Table-I MNIST model (Tanh) trained on synthetic digits."""
    return prepare_experiment(
        "mnist",
        train_size=300,
        test_size=80,
        width_multiplier=0.125,
        training=TrainingConfig(epochs=10, batch_size=32, learning_rate=2e-3),
        rng=0,
    )


@pytest.fixture(scope="session")
def prepared_cifar() -> PreparedExperiment:
    """Scaled Table-I CIFAR model (ReLU) trained on synthetic colour objects."""
    return prepare_experiment(
        "cifar",
        train_size=400,
        test_size=100,
        width_multiplier=0.125,
        training=TrainingConfig(epochs=12, batch_size=32, learning_rate=3e-3),
        rng=0,
    )


#: the test budgets (rows of Tables II/III), scaled from the paper's 10..50
DETECTION_BUDGETS = (10, 20, 30)


@pytest.fixture(scope="session")
def mnist_packages(prepared_mnist):
    """Functional-test packages (neuron vs parameter coverage) for the MNIST model."""
    return build_method_packages(
        prepared_mnist,
        num_tests=max(DETECTION_BUDGETS),
        candidate_pool=100,
        rng=1,
        gradient_kwargs={"max_updates": 30},
    )


@pytest.fixture(scope="session")
def cifar_packages(prepared_cifar):
    """Functional-test packages (neuron vs parameter coverage) for the CIFAR model."""
    return build_method_packages(
        prepared_cifar,
        num_tests=max(DETECTION_BUDGETS),
        candidate_pool=100,
        rng=1,
        gradient_kwargs={"max_updates": 30},
    )
