"""Ablation A2 — activation threshold ε for saturating activations.

Section IV-A defines activation as ``|∇θ F(x)| > ε`` for Tanh/Sigmoid
networks.  This ablation sweeps ε on the Tanh MNIST-style model and reports
how the measured coverage of a fixed test set shrinks as ε grows, which is the
calibration evidence behind the library's default (ε = 1e-2 for saturating
networks).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import epsilon_sweep, format_markdown_table
from repro.testgen import TrainingSetSelector

EPSILONS = (0.0, 1e-6, 1e-4, 1e-2, 1e-1, 1.0)
NUM_TESTS = 10


def test_ablation_epsilon(benchmark, prepared_mnist):
    tests = TrainingSetSelector(
        prepared_mnist.model, prepared_mnist.train, candidate_pool=60, rng=7
    ).generate(NUM_TESTS).tests

    result = benchmark.pedantic(
        lambda: epsilon_sweep(prepared_mnist.model, tests, epsilons=EPSILONS),
        rounds=1,
        iterations=1,
    )

    print(f"\nAblation A2 (ε sweep, Tanh model, {NUM_TESTS} tests):")
    print(format_markdown_table(result.as_rows(), float_format="{:.4f}"))

    coverages = result.coverages
    # coverage is monotone non-increasing in ε
    assert all(a >= b - 1e-12 for a, b in zip(coverages, coverages[1:]))
    # ε = 0 counts every numerically non-zero gradient: close to full coverage,
    # which is why a meaningful threshold is needed for saturating activations
    assert coverages[0] > 0.95
    # an absurdly large ε wipes out most of the coverage signal
    assert coverages[-1] < coverages[0]
