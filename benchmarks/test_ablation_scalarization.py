"""Ablation A3 — scalarisation of F(x) before taking the parameter gradient.

The paper writes ``∇θ F(x)`` with F the vector-valued network output; an
implementation must pick a scalar to differentiate.  This ablation compares
the three supported choices (sum of logits, max logit, predicted-class logit)
on both models and shows the resulting coverage differences are modest — i.e.
the method is not sensitive to this implementation detail.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_markdown_table, scalarization_sweep
from repro.testgen import TrainingSetSelector

NUM_TESTS = 8


def _sweep(prepared, rng):
    tests = TrainingSetSelector(
        prepared.model, prepared.train, candidate_pool=60, rng=rng
    ).generate(NUM_TESTS).tests
    return scalarization_sweep(prepared.model, tests)


def test_ablation_scalarization_cifar(benchmark, prepared_cifar):
    result = benchmark.pedantic(lambda: _sweep(prepared_cifar, 8), rounds=1, iterations=1)
    print(f"\nAblation A3 (scalarisation, ReLU CIFAR-style model, {NUM_TESTS} tests):")
    print(format_markdown_table(result.as_rows(), float_format="{:.4f}"))

    coverages = dict(zip(result.values, result.coverages))
    assert set(coverages) == {"sum", "max", "predicted"}
    # "sum" is the most permissive scalarisation (any logit path counts), so it
    # upper-bounds the single-logit variants
    assert coverages["sum"] >= max(coverages["max"], coverages["predicted"]) - 1e-9
    # the spread between choices is modest — the metric is robust to this detail
    assert max(coverages.values()) - min(coverages.values()) < 0.2


def test_ablation_scalarization_mnist(benchmark, prepared_mnist):
    result = benchmark.pedantic(lambda: _sweep(prepared_mnist, 9), rounds=1, iterations=1)
    print(f"\nAblation A3 (scalarisation, Tanh MNIST-style model, {NUM_TESTS} tests):")
    print(format_markdown_table(result.as_rows(), float_format="{:.4f}"))
    assert len(result.coverages) == 3
    assert all(0.0 < c <= 1.0 for c in result.coverages)
