"""Ablation A1 — switch-point policy of the combined method.

The paper switches from training-set selection (Algorithm 1) to gradient-based
generation (Algorithm 2) adaptively, when the gradient method's per-test gain
overtakes the best remaining training sample.  This ablation compares that
adaptive rule against fixed switch points (never / early / late) at the same
total budget.
"""

from __future__ import annotations

from repro.analysis.reporting import format_markdown_table
from repro.testgen import CombinedGenerator

BUDGET = 15
POLICIES = ("adaptive", "fixed:0", "fixed:5", f"fixed:{BUDGET}")


def _run_policies(prepared):
    results = {}
    for policy in POLICIES:
        generator = CombinedGenerator(
            prepared.model,
            prepared.train,
            switch_policy=policy,
            candidate_pool=80,
            rng=4,
            max_updates=30,
        )
        result = generator.generate(BUDGET)
        results[policy] = result
    return results


def test_ablation_switch_point(benchmark, prepared_cifar):
    results = benchmark.pedantic(lambda: _run_policies(prepared_cifar), rounds=1, iterations=1)

    rows = []
    for policy, result in results.items():
        switch = result.switch_index()
        rows.append(
            {
                "policy": policy,
                "coverage_at_budget": result.final_coverage,
                "num_training_tests": result.sources.count("training"),
                "num_gradient_tests": result.sources.count("gradient"),
                "switch_index": "-" if switch is None else switch,
            }
        )
    print(f"\nAblation A1 (switch policy, budget {BUDGET}):")
    print(format_markdown_table(rows))

    adaptive = results["adaptive"].final_coverage
    # the adaptive rule should not lose badly to any fixed policy — that is
    # the point of comparing marginal gains instead of guessing a switch index
    best_fixed = max(results[p].final_coverage for p in POLICIES if p != "adaptive")
    assert adaptive >= best_fixed - 0.05
    # switching never (all training) is not better than mixing in synthesis
    assert adaptive >= results[f"fixed:{BUDGET}"].final_coverage - 0.02
