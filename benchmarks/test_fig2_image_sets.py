"""Fig. 2 — validation coverage of different image sets.

The paper reports (average per-sample coverage over 1000 images):

    =========  =====  ========  ============
    model      noise  ImageNet  training set
    =========  =====  ========  ============
    MNIST      13 %   22 %      46 %
    CIFAR-10   12 %   18 %      36 %
    =========  =====  ========  ============

Shape the paper reports: structured in-distribution images activate the most
parameters, unstructured noise the fewest.  On the synthetic substrate the
training-vs-noise ordering does NOT reproduce (the synthetic models' filters
respond to full-contrast static as strongly as to training images), so this
benchmark prints paper-vs-measured values and asserts only the properties
that are substrate-independent: every population activates a strict subset of
the parameters, and no population reaches full coverage with single samples.
See EXPERIMENTS.md (E2) for the discussion of this documented deviation.
"""

from __future__ import annotations

from repro.analysis import ascii_bar_chart, format_markdown_table, image_set_coverage

PAPER_VALUES = {
    "mnist": {"noise": 0.13, "imagenet-proxy": 0.22, "training-set": 0.46},
    "cifar": {"noise": 0.12, "imagenet-proxy": 0.18, "training-set": 0.36},
}

NUM_SAMPLES = 20


def _run(prepared, rng):
    return image_set_coverage(
        prepared.model, prepared.train, num_samples=NUM_SAMPLES, rng=rng
    )


def _report(result, dataset):
    rows = [
        {
            "image_set": name,
            "measured_coverage": value,
            "paper_coverage": PAPER_VALUES[dataset][name],
        }
        for name, value in result.coverage_by_set.items()
    ]
    print(f"\nFig. 2 ({dataset} model), {NUM_SAMPLES} samples per population:")
    print(format_markdown_table(rows))
    print(ascii_bar_chart(result.coverage_by_set))


def test_fig2_mnist(benchmark, prepared_mnist):
    result = benchmark.pedantic(lambda: _run(prepared_mnist, 1), rounds=1, iterations=1)
    _report(result, "mnist")
    coverage = result.coverage_by_set
    # substrate-independent properties: single samples never cover everything,
    # yet every population activates a substantial fraction of parameters
    assert all(0.0 < v < 1.0 for v in coverage.values())
    ordering_holds = coverage["training-set"] > coverage["noise"]
    print(f"paper ordering (training > noise) holds: {ordering_holds}")


def test_fig2_cifar(benchmark, prepared_cifar):
    result = benchmark.pedantic(lambda: _run(prepared_cifar, 1), rounds=1, iterations=1)
    _report(result, "cifar")
    coverage = result.coverage_by_set
    assert all(0.0 < v < 1.0 for v in coverage.values())
    # the ReLU model leaves a large fraction of parameters unactivated by any
    # single sample, which is what makes multi-test generation necessary
    assert max(coverage.values()) < 0.9
    ordering_holds = coverage["training-set"] > coverage["noise"]
    print(f"paper ordering (training > noise) holds: {ordering_holds}")
