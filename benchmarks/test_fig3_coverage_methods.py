"""Fig. 3 — validation coverage vs. number of functional tests (CIFAR model).

The paper's headline numbers on its CIFAR-10 model:

* 10 training-set tests activate ~78 %; 20 reach ~82 % and then saturate
  (only +4 % from 20 to 10 000 tests, with ~8 % never activated by the
  whole training set);
* 10 gradient-generated tests activate only ~66 %, but the curve keeps
  climbing towards ~100 %;
* the combined method is best at every budget (30 tests → 92 %, vs 84 %
  selection-only and 76 % gradient-only).

Shapes to reproduce: selection wins early and saturates; gradient generation
starts lower but keeps growing; the combined curve dominates both.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ascii_line_chart, coverage_vs_budget, format_markdown_table

MAX_TESTS = 20
CANDIDATE_POOL = 80


def test_fig3_coverage_curves(benchmark, prepared_cifar):
    curves = benchmark.pedantic(
        lambda: coverage_vs_budget(
            prepared_cifar.model,
            prepared_cifar.train,
            max_tests=MAX_TESTS,
            candidate_pool=CANDIDATE_POOL,
            rng=2,
            gradient_kwargs={"max_updates": 30},
        ),
        rounds=1,
        iterations=1,
    )

    rows = []
    for n in (1, 5, 10, MAX_TESTS):
        rows.append(
            {
                "num_tests": n,
                **{method: values[n - 1] for method, values in curves.curves.items()},
            }
        )
    print(f"\nFig. 3 (CIFAR-style model), coverage vs number of tests:")
    print(format_markdown_table(rows))
    print(ascii_line_chart(curves.curves))

    selection = curves.curves["training-selection"]
    gradient = curves.curves["gradient-generation"]
    combined = curves.curves["combined"]

    # selection is the stronger method for the very first tests
    assert selection[0] >= gradient[0]

    # selection saturates: its late-stage gains are small compared with its
    # early gains (the paper's "only +4 % from 20 to 10 000 tests")
    early_gain = selection[4] - selection[0]
    late_gain = selection[-1] - selection[9]
    assert late_gain <= early_gain + 1e-9

    # gradient generation keeps making progress through the budget
    assert gradient[-1] > gradient[4]

    # the combined method is at least as good as either pure method at the
    # full budget (small tolerance for the stochastic synthesis)
    assert combined[-1] >= max(selection[-1], gradient[-1]) - 0.02

    # every curve is monotone non-decreasing
    for values in curves.curves.values():
        assert np.all(np.diff(values) >= -1e-12)
