"""Fig. 4 — real vs. synthetic training samples (MNIST model).

The paper shows the gradient-generated samples visually share class features
with real training samples (the synthetic "0" contains a circle).  The
quantitative counterpart measured here:

* the model classifies each synthetic sample as the class it was generated
  for (that is the synthesis objective), and
* each synthetic sample is more similar (cosine similarity in pixel space) to
  the mean training image of its own class than to other classes' means.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_markdown_table, synthetic_sample_report
from repro.testgen import GradientTestGenerator


def test_fig4_synthetic_sample_quality(benchmark, prepared_mnist):
    generator = GradientTestGenerator(
        prepared_mnist.model, rng=3, max_updates=60, step_size=0.2, target="model"
    )
    report = benchmark.pedantic(
        lambda: synthetic_sample_report(
            prepared_mnist.model, prepared_mnist.train, generator=generator, rng=3
        ),
        rounds=1,
        iterations=1,
    )

    rows = [
        {
            "class": cls,
            "cosine_to_own_class_mean": sim,
        }
        for cls, sim in sorted(report.per_class_similarity.items())
    ]
    print("\nFig. 4 (MNIST-style model), synthetic-sample quality:")
    print(format_markdown_table(rows))
    print(f"synthesis accuracy (classified as intended): {report.synthesis_accuracy:.1%}")
    print(f"mean similarity to own class:   {report.mean_similarity:.3f}")
    print(f"mean similarity to other classes: {report.cross_class_similarity:.3f}")

    # most synthetic samples are classified as the class they were built for
    assert report.synthesis_accuracy >= 0.5
    # and they share more pixel-space structure with their own class than with
    # the other classes on average (the paper's "the generated 0 has a circle")
    assert report.mean_similarity > report.cross_class_similarity
