"""Table I — model architectures and their test accuracy.

The paper reports 98.9 % (MNIST, Tanh CNN) and 84.26 % (CIFAR-10, ReLU CNN).
On the synthetic stand-in datasets the scaled models should land in the same
regimes: near-perfect on the digit task, clearly-lower-but-useful on the
colour-object task.
"""

from __future__ import annotations

from repro.analysis.reporting import format_markdown_table
from repro.nn.layers import Conv2D, Dense


def _architecture_rows(prepared, paper_accuracy):
    model = prepared.model
    conv = [l.filters for l in model.layers if isinstance(l, Conv2D)]
    dense = [l.units for l in model.layers if isinstance(l, Dense)]
    return {
        "model": model.name,
        "dataset": prepared.dataset_name,
        "conv_filters": "/".join(map(str, conv)),
        "dense_units": "/".join(map(str, dense)),
        "parameters": model.num_parameters(),
        "measured_accuracy": prepared.test_accuracy,
        "paper_accuracy": paper_accuracy,
    }


def test_table1_mnist_model(benchmark, prepared_mnist):
    row = benchmark.pedantic(
        lambda: _architecture_rows(prepared_mnist, 0.989), rounds=1, iterations=1
    )
    print("\nTable I (MNIST-style model):")
    print(format_markdown_table([row]))
    # same regime as the paper: the digit task is learned almost perfectly
    assert row["measured_accuracy"] > 0.9


def test_table1_cifar_model(benchmark, prepared_cifar):
    row = benchmark.pedantic(
        lambda: _architecture_rows(prepared_cifar, 0.8426), rounds=1, iterations=1
    )
    print("\nTable I (CIFAR-style model):")
    print(format_markdown_table([row]))
    # good-but-not-perfect, as in the paper
    assert 0.45 < row["measured_accuracy"] <= 1.0


def test_table1_relative_difficulty(benchmark, prepared_mnist, prepared_cifar):
    """The CIFAR-style task is the harder one, as in the paper."""
    gap = benchmark.pedantic(
        lambda: prepared_mnist.test_accuracy - prepared_cifar.test_accuracy,
        rounds=1,
        iterations=1,
    )
    print(f"\naccuracy gap (mnist - cifar): {gap:.3f} (paper: 0.989 - 0.843 = 0.146)")
    assert gap > 0.0
