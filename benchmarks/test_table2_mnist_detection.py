"""Table II — detection rate under parameter perturbations (MNIST model).

The paper compares tests generated for *neuron* coverage against the proposed
*parameter*-coverage tests, under the single bias attack (SBA), gradient
descent attack (GDA) and random perturbations, with 10 000 perturbation
trials per cell and budgets N = 10..50.  Headline shapes:

* detection rate increases monotonically with the number of tests;
* the proposed parameter-coverage tests achieve a substantially higher
  detection rate than neuron-coverage tests in every column (e.g. 87 % vs
  59 % for SBA at N=10).

This scaled harness uses fewer trials and budgets N = 10/20/30; raise
``TRIALS`` for tighter estimates.
"""

from __future__ import annotations

from repro.analysis.reporting import detection_table_markdown
from repro.utils.config import DetectionConfig
from repro.validation import DetectionExperiment, default_attack_factories

from conftest import DETECTION_BUDGETS

TRIALS = 40

PAPER_N20 = {
    ("neuron", "sba"): 0.674,
    ("neuron", "gda"): 0.765,
    ("neuron", "random"): 0.659,
    ("parameter", "sba"): 0.911,
    ("parameter", "gda"): 0.925,
    ("parameter", "random"): 0.904,
}


def _run_detection(prepared, packages):
    config = DetectionConfig(
        trials=TRIALS,
        test_budgets=DETECTION_BUDGETS,
        attacks=("sba", "gda", "random"),
        seed=5,
    )
    factories = default_attack_factories(
        prepared.test.images[:20], gda_parameters=20, random_parameters=10
    )
    return DetectionExperiment(prepared.model, packages, factories, config).run()


def test_table2_mnist_detection(benchmark, prepared_mnist, mnist_packages):
    table = benchmark.pedantic(
        lambda: _run_detection(prepared_mnist, mnist_packages), rounds=1, iterations=1
    )

    print(f"\nTable II (MNIST-style model), {TRIALS} trials per attack:")
    print(
        detection_table_markdown(
            table.as_rows(),
            budgets=list(DETECTION_BUDGETS),
            methods=["neuron-coverage", "parameter-coverage"],
            attacks=["sba", "gda", "random"],
        )
    )
    print("paper (N=20): " + ", ".join(f"{k}: {v:.0%}" for k, v in PAPER_N20.items()))

    for attack in ("sba", "gda", "random"):
        rates = [
            table.rate("parameter-coverage", attack, n) for n in DETECTION_BUDGETS
        ]
        # detection improves (or at worst stays equal) with more tests
        assert rates == sorted(rates)
        # the proposed tests are competitive with or better than the
        # neuron-coverage baseline at the largest budget
        n_max = max(DETECTION_BUDGETS)
        assert table.rate("parameter-coverage", attack, n_max) >= table.rate(
            "neuron-coverage", attack, n_max
        ) - 0.10
        # and they detect a clear majority of perturbations at the top budget
        assert table.rate("parameter-coverage", attack, n_max) > 0.5
