"""Table III — detection rate under parameter perturbations (CIFAR model).

Same protocol as Table II on the ReLU CIFAR-style model.  Paper headline at
N=20: SBA 87.2 % / GDA 89.0 % / random 86.2 % for the proposed tests, versus
58.3 % / 67.2 % / 57.6 % for neuron-coverage tests.
"""

from __future__ import annotations

from repro.analysis.reporting import detection_table_markdown
from repro.utils.config import DetectionConfig
from repro.validation import DetectionExperiment, default_attack_factories

from conftest import DETECTION_BUDGETS

TRIALS = 40

PAPER_N20 = {
    ("neuron", "sba"): 0.583,
    ("neuron", "gda"): 0.672,
    ("neuron", "random"): 0.576,
    ("parameter", "sba"): 0.872,
    ("parameter", "gda"): 0.890,
    ("parameter", "random"): 0.862,
}


def _run_detection(prepared, packages):
    config = DetectionConfig(
        trials=TRIALS,
        test_budgets=DETECTION_BUDGETS,
        attacks=("sba", "gda", "random"),
        seed=6,
    )
    factories = default_attack_factories(
        prepared.test.images[:20], gda_parameters=20, random_parameters=10
    )
    return DetectionExperiment(prepared.model, packages, factories, config).run()


def test_table3_cifar_detection(benchmark, prepared_cifar, cifar_packages):
    table = benchmark.pedantic(
        lambda: _run_detection(prepared_cifar, cifar_packages), rounds=1, iterations=1
    )

    print(f"\nTable III (CIFAR-style model), {TRIALS} trials per attack:")
    print(
        detection_table_markdown(
            table.as_rows(),
            budgets=list(DETECTION_BUDGETS),
            methods=["neuron-coverage", "parameter-coverage"],
            attacks=["sba", "gda", "random"],
        )
    )
    print("paper (N=20): " + ", ".join(f"{k}: {v:.0%}" for k, v in PAPER_N20.items()))

    for attack in ("sba", "gda", "random"):
        rates = [
            table.rate("parameter-coverage", attack, n) for n in DETECTION_BUDGETS
        ]
        assert rates == sorted(rates)
        n_max = max(DETECTION_BUDGETS)
        assert table.rate("parameter-coverage", attack, n_max) >= table.rate(
            "neuron-coverage", attack, n_max
        ) - 0.10
        assert table.rate("parameter-coverage", attack, n_max) > 0.5
