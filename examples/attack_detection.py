"""Attack-detection study: a scaled-down version of Tables II and III.

Compares two test-generation strategies — the hardware-testing baseline that
maximises *neuron* coverage, and the paper's combined method that maximises
*parameter* (validation) coverage — by their detection rate against three
parameter-perturbation attacks (SBA, GDA, random noise) at several test
budgets.

Run with:  python examples/attack_detection.py
"""

from __future__ import annotations

from repro.analysis import (
    build_method_packages,
    detection_table_markdown,
    prepare_experiment,
)
from repro.utils.config import DetectionConfig, TrainingConfig, env_int
from repro.validation import default_attack_factories, DetectionExperiment


def main() -> None:
    print("training the scaled Table-I MNIST model (Tanh)...")
    prepared = prepare_experiment(
        "mnist",
        train_size=env_int("REPRO_EXAMPLE_TRAIN", 300),
        test_size=env_int("REPRO_EXAMPLE_TEST", 80),
        width_multiplier=0.125,
        training=TrainingConfig(
            epochs=env_int("REPRO_EXAMPLE_EPOCHS", 8),
            batch_size=32,
            learning_rate=2e-3,
        ),
        rng=0,
    )
    print(f"test accuracy: {prepared.test_accuracy:.3f}")

    max_budget = env_int("REPRO_EXAMPLE_TESTS", 15)
    budgets = tuple(b for b in (5, 10, 15) if b < max_budget) + (max_budget,)
    print("\ngenerating functional-test packages for both methods...")
    packages = build_method_packages(
        prepared,
        num_tests=max(budgets),
        candidate_pool=env_int("REPRO_EXAMPLE_POOL", 80),
        rng=1,
        gradient_kwargs={"max_updates": env_int("REPRO_EXAMPLE_UPDATES", 30)},
    )
    for name, pkg in packages.items():
        print(f"  {name:20s} parameter coverage: {pkg.metadata['validation_coverage']:.1%}")

    config = DetectionConfig(
        trials=env_int("REPRO_EXAMPLE_TRIALS", 40),
        test_budgets=budgets,
        attacks=("sba", "gda", "random"),
        seed=2,
    )
    factories = default_attack_factories(
        prepared.test.images[:20], gda_parameters=20, random_parameters=10
    )
    print(f"\nrunning {config.trials} perturbation trials per attack...")
    table = DetectionExperiment(prepared.model, packages, factories, config).run()

    print("\n=== Detection rates (rows: test budget N; columns: method:attack) ===")
    print(
        detection_table_markdown(
            table.as_rows(),
            budgets=list(budgets),
            methods=["neuron-coverage", "parameter-coverage"],
            attacks=["sba", "gda", "random"],
        )
    )
    print(
        "\nexpected shape: detection rate rises with N, and the proposed "
        "parameter-coverage tests beat the neuron-coverage tests in every column"
    )


if __name__ == "__main__":
    main()
