"""Attack-detection study: a scaled-down version of Tables II and III.

Compares two test-generation strategies — the hardware-testing baseline that
maximises *neuron* coverage, and the paper's combined method that maximises
*parameter* (validation) coverage — by their detection rate against three
parameter-perturbation attacks (SBA, GDA, random noise) at several test
budgets.

Both packages come from one :class:`repro.Session`: the two release requests
differ only in their ``strategy`` field, so the session trains the victim
once and serves both generations from the same cached model and memoizing
engine.

Run with:  python examples/attack_detection.py
"""

from __future__ import annotations

from repro import ReleaseRequest, Session
from repro.analysis import detection_table_markdown
from repro.utils.config import DetectionConfig, env_int
from repro.validation import DetectionExperiment, default_attack_factories


def main() -> None:
    max_budget = env_int("REPRO_EXAMPLE_TESTS", 15)
    budgets = tuple(b for b in (5, 10, 15) if b < max_budget) + (max_budget,)
    base = ReleaseRequest(
        dataset="mnist",
        train_size=env_int("REPRO_EXAMPLE_TRAIN", 300),
        test_size=env_int("REPRO_EXAMPLE_TEST", 80),
        epochs=env_int("REPRO_EXAMPLE_EPOCHS", 8),
        width_multiplier=0.125,
        num_tests=max(budgets),
        candidate_pool=env_int("REPRO_EXAMPLE_POOL", 80),
        gradient_updates=env_int("REPRO_EXAMPLE_UPDATES", 30),
    )

    with Session() as session:
        print("training the scaled Table-I MNIST model (Tanh)...")
        print("generating functional-test packages for both methods...")
        releases = {
            "parameter-coverage": session.release(base),  # the combined method
            "neuron-coverage": session.release(base.with_overrides(strategy="neuron")),
        }
        released = releases["parameter-coverage"]
        print(f"test accuracy: {released.test_accuracy:.3f}")
        packages = {name: r.package for name, r in releases.items()}
        for name, pkg in packages.items():
            print(
                f"  {name:20s} parameter coverage: "
                f"{pkg.metadata['validation_coverage']:.1%}"
            )

        prepared = session.prepare(
            base.dataset,
            train_size=base.train_size,
            test_size=base.test_size,
            epochs=base.epochs,
            width_multiplier=base.width_multiplier,
        )
        config = DetectionConfig(
            trials=env_int("REPRO_EXAMPLE_TRIALS", 40),
            test_budgets=budgets,
            attacks=("sba", "gda", "random"),
            seed=2,
        )
        factories = default_attack_factories(
            prepared.test.images[:20], gda_parameters=20, random_parameters=10
        )
        print(f"\nrunning {config.trials} perturbation trials per attack...")
        table = DetectionExperiment(released.model, packages, factories, config).run()

    print("\n=== Detection rates (rows: test budget N; columns: method:attack) ===")
    print(
        detection_table_markdown(
            table.as_rows(),
            budgets=list(budgets),
            methods=["neuron-coverage", "parameter-coverage"],
            attacks=["sba", "gda", "random"],
        )
    )
    print(
        "\nexpected shape: detection rate rises with N, and the proposed "
        "parameter-coverage tests beat the neuron-coverage tests in every column"
    )


if __name__ == "__main__":
    main()
