"""Campaign sweep: the paper's evaluation as one declarative, resumable run.

Builds a small :class:`~repro.campaign.CampaignSpec` covering all four attack
families on the scaled Table-I MNIST model, executes it through the
:class:`repro.Session` façade's ``sweep`` operation into a JSONL result
store, demonstrates resume semantics (a second invocation executes zero
scenarios), and renders the Tables II/III-style detection-rate report.

Run with:  python examples/campaign_sweep.py

The same sweep is available from the command line::

    python -m repro campaign run --spec spec.toml --store results.jsonl
    python -m repro campaign report --store results.jsonl
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import Session, SweepRequest
from repro.analysis import render_campaign_report
from repro.campaign import CampaignSpec, ResultStore
from repro.utils.config import env_int


def main() -> None:
    spec = CampaignSpec(
        name="example-sweep",
        attacks=("sba", "gda", "random", "bitflip"),
        models=("mnist",),
        criteria=("default",),
        strategies=("combined", "random"),
        budgets=(4, 8),
        trials=env_int("REPRO_EXAMPLE_TRIALS", 10),
        train_size=env_int("REPRO_EXAMPLE_TRAIN", 120),
        test_size=env_int("REPRO_EXAMPLE_TEST", 40),
        epochs=env_int("REPRO_EXAMPLE_EPOCHS", 3),
        width_multiplier=0.125,
        candidate_pool=env_int("REPRO_EXAMPLE_POOL", 40),
        gradient_updates=env_int("REPRO_EXAMPLE_UPDATES", 10),
        reference_inputs=12,
        seed=7,
    )
    scenarios = spec.expand()
    print(
        f"campaign {spec.name!r}: {len(scenarios)} scenarios "
        f"({len(spec.attacks)} attacks x {len(spec.strategies)} strategies x "
        f"{len(spec.budgets)} budgets)"
    )

    with tempfile.TemporaryDirectory() as tmp, Session() as session:
        store_path = Path(tmp) / "results.jsonl"
        request = SweepRequest(spec=spec, store=str(store_path))

        print("\n--- first invocation: executes everything ---")
        summary = session.sweep(request)
        print(summary.describe())

        print("\n--- second invocation: resumes, executes nothing ---")
        resumed = session.sweep(request)
        print(resumed.describe())
        assert resumed.executed == 0, "a completed campaign must fully resume"

        store = ResultStore(store_path)
        print("\n" + render_campaign_report(store.records(), title=spec.name))

    print(
        "expected shape: detection rate rises with the budget N, and the "
        "combined strategy beats random selection in every attack column"
    )


if __name__ == "__main__":
    main()
