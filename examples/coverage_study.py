"""Coverage study: reproduce the shapes of Fig. 2 and Fig. 3 on a small model.

* Fig. 2 — average per-sample validation coverage of three image populations
  (Gaussian noise, off-distribution natural images, the training set).
* Fig. 3 — validation coverage versus number of tests for the three
  generation methods (training-set selection, gradient-based generation and
  the combined method).

The trained model comes from ``session.prepare(...)`` — the façade's managed
(and cached) preparation step — while the figure builders consume it
directly.

Run with:  python examples/coverage_study.py
"""

from __future__ import annotations

from repro import Session
from repro.analysis import (
    ascii_bar_chart,
    ascii_line_chart,
    coverage_vs_budget,
    image_set_coverage,
)
from repro.utils.config import env_int


def main() -> None:
    print("training the scaled CIFAR-style ReLU model (the paper's Fig. 3 model)...")
    with Session() as session:
        prepared = session.prepare(
            "cifar",
            train_size=env_int("REPRO_EXAMPLE_TRAIN", 400),
            test_size=env_int("REPRO_EXAMPLE_TEST", 100),
            epochs=env_int("REPRO_EXAMPLE_EPOCHS", 10),
            width_multiplier=0.125,
        )
        print(f"test accuracy: {prepared.test_accuracy:.3f}")
        model, train = prepared.model, prepared.train

        print("\n=== Fig. 2: average validation coverage per image population ===")
        fig2 = image_set_coverage(
            model, train, num_samples=env_int("REPRO_EXAMPLE_SAMPLES", 20), rng=1
        )
        print(ascii_bar_chart(fig2.coverage_by_set))
        print(
            "expected shape: the training set activates the most parameters, "
            "pure noise the fewest"
        )

        print("\n=== Fig. 3: coverage vs. number of functional tests ===")
        curves = coverage_vs_budget(
            model,
            train,
            max_tests=env_int("REPRO_EXAMPLE_TESTS", 15),
            candidate_pool=env_int("REPRO_EXAMPLE_POOL", 80),
            rng=2,
            gradient_kwargs={"max_updates": env_int("REPRO_EXAMPLE_UPDATES", 30)},
        )
    print(ascii_line_chart(curves.curves))
    for method, values in curves.curves.items():
        print(
            f"{method:22s} first test: {values[0]:.1%}   "
            f"after {len(values)} tests: {values[-1]:.1%}"
        )
    crossover = curves.crossover_budget("training-selection", "gradient-generation")
    if crossover is None:
        print("gradient generation did not overtake selection within this budget")
    else:
        print(f"gradient generation overtakes selection at N = {crossover}")
    print(
        "expected shape: selection wins early, saturates; gradient keeps climbing; "
        "the combined method dominates at equal budget"
    )


if __name__ == "__main__":
    main()
