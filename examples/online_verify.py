"""Online verification: query-budgeted detection of a remote, billed IP.

Releases a validation package with per-fingerprint discrimination scores,
starts the stdlib-only serve endpoint (:mod:`repro.serve`) on an ephemeral
port, and verifies two deployed models over the wire with
:class:`repro.online.RemoteModel`:

* the intact model — the sequential verifier replays fingerprints in
  discriminative-power order and accepts SECURE as soon as the SPRT clean
  threshold is crossed (never before the curtailment floor), spending
  fewer queries than a full replay;
* a tampered copy — one mismatching probe crosses the tampered threshold,
  so TAMPERED is typically declared after a single billed query.

The transport's ledger and the server's ``/stats`` both confirm the
savings: the endpoint billed strictly fewer inputs per verdict than the
fingerprint-set size.

Run with:  python examples/online_verify.py

The same flow runs against any standalone endpoint::

    python -m repro serve --port 8420 --artifacts-root artifacts/
    python -m repro verify --package artifacts/package.npz \
        --remote http://127.0.0.1:8420 --model model.npz
"""

from __future__ import annotations

import asyncio
import tempfile
from pathlib import Path

from repro import ReleaseRequest, Session
from repro.attacks import SingleBiasAttack
from repro.nn.serialization import save_model
from repro.online import HttpTransport, RemoteModel, verify_online
from repro.serve import HttpClient, HttpServer, ServeConfig, ValidationService
from repro.utils.config import env_int

WIDTH = 0.125


def release_artifacts(directory: Path) -> dict:
    """Vendor side: train, generate, score discrimination, save + tamper."""
    request = ReleaseRequest(
        dataset="mnist",
        num_tests=env_int("REPRO_EXAMPLE_TESTS", 8),
        train_size=env_int("REPRO_EXAMPLE_TRAIN", 120),
        test_size=env_int("REPRO_EXAMPLE_TEST", 40),
        epochs=env_int("REPRO_EXAMPLE_EPOCHS", 2),
        candidate_pool=env_int("REPRO_EXAMPLE_POOL", 30),
        gradient_updates=env_int("REPRO_EXAMPLE_UPDATES", 10),
        width_multiplier=WIDTH,
        measure_discrimination=True,
        discrimination_trials=env_int("REPRO_EXAMPLE_TRIALS", 4),
    )
    with Session() as session:
        released = session.release(request)
    print(released.describe())
    paths = released.save(directory)
    tampered = SingleBiasAttack(rng=3).apply(released.model).model
    paths["tampered"] = save_model(tampered, directory / "tampered.npz")
    paths["package_obj"] = released.package
    return paths


def verify_over_the_wire(url: str, paths: dict, model_file: str):
    """User side: sequential verification of one deployed model."""
    remote = RemoteModel(
        HttpTransport(
            url,
            model_path=model_file,
            arch="mnist",
            width_multiplier=WIDTH,
        )
    )
    report = verify_online(remote, paths["package_obj"])
    print(f"  {model_file}: {report.summary()}")
    ledger = report.ledger
    print(
        f"    ledger: {ledger['queries_sent']} queries in "
        f"{ledger['requests']} request(s), {ledger['cache_hits']} cache hit(s)"
    )
    return report


async def drive(paths: dict) -> None:
    root = str(Path(paths["package"]).parent)
    service = ValidationService(ServeConfig(port=0, artifacts_root=root))
    server = HttpServer(service)
    host, port = await server.start()
    url = f"http://{host}:{port}"
    print(f"serving on {url}")
    num_tests = paths["package_obj"].num_tests
    try:
        loop = asyncio.get_running_loop()
        clean = await loop.run_in_executor(
            None, verify_over_the_wire, url, paths, "model.npz"
        )
        assert not clean.detected and clean.verdict == "clean"
        assert clean.queries_used < num_tests, "clean verdict must save queries"

        tampered = await loop.run_in_executor(
            None, verify_over_the_wire, url, paths, "tampered.npz"
        )
        assert tampered.detected and tampered.decided
        assert tampered.queries_used <= clean.queries_used

        stats = await HttpClient(host, port).stats()
        billed = stats["queries"]["inputs"]
        print(
            f"endpoint billed {billed} inputs across both verdicts "
            f"(full replay would bill {2 * num_tests})"
        )
        assert billed < 2 * num_tests, "sequential mode must under-bill full replay"
    finally:
        await server.stop()
    print("server drained cleanly")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        paths = release_artifacts(Path(tmp))
        asyncio.run(drive(paths))
    print(
        "expected shape: the intact model is declared SECURE at the clean "
        "curtailment floor, the tampered copy TAMPERED after one probe, and "
        "the endpoint bills fewer inputs than two full replays"
    )


if __name__ == "__main__":
    main()
