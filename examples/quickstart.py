"""Quickstart: train a DNN IP, generate functional tests, detect tampering.

This walks the full story of the paper in a few minutes on a laptop CPU,
through the :class:`repro.Session` façade:

1. the *vendor* trains a small CNN (a scaled-down Table-I MNIST model) and
   generates a handful of functional tests with the combined method
   (Algorithm 1 + Algorithm 2), packaged with the model's reference outputs
   — one ``session.release(...)`` call;
2. an *attacker* perturbs the model parameters (single bias attack);
3. the *user*, with black-box access only, replays the functional tests and
   detects the tampering — one ``session.validate(...)`` call.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import ReleaseRequest, Session, ValidateRequest
from repro.attacks import SingleBiasAttack
from repro.utils.config import env_int


def main() -> None:
    # every expensive knob is env-cappable so the CI smoke job can shrink it
    request = ReleaseRequest(
        dataset="mnist",
        train_size=env_int("REPRO_EXAMPLE_TRAIN", 300),
        test_size=env_int("REPRO_EXAMPLE_TEST", 80),
        epochs=env_int("REPRO_EXAMPLE_EPOCHS", 8),
        width_multiplier=0.125,
        num_tests=env_int("REPRO_EXAMPLE_TESTS", 15),
        candidate_pool=env_int("REPRO_EXAMPLE_POOL", 100),
        gradient_updates=env_int("REPRO_EXAMPLE_UPDATES", 30),
    )

    with Session() as session:
        print("=== 1. Vendor trains the IP and releases a package ===")
        released = session.release(request)
        print(f"model: {released.model.name}")
        print(f"parameters: {released.model.num_parameters()}")
        print(f"test accuracy: {released.test_accuracy:.3f}")
        print(f"functional tests: {released.num_tests}")
        print(f"validation coverage: {released.coverage:.1%}")

        print("\n=== 2. Attacker perturbs one bias parameter in the shipped IP ===")
        prepared = session.prepare(
            request.dataset,
            train_size=request.train_size,
            test_size=request.test_size,
            epochs=request.epochs,
            width_multiplier=request.width_multiplier,
        )
        attack = SingleBiasAttack(
            magnitude=10.0, reference_inputs=prepared.test.images[:20], rng=2
        )
        outcome = attack.apply(released.model)
        record = outcome.record
        print(
            f"attack touched {record.num_modified} parameter(s) "
            f"({record.parameter_names[0]}), |delta| = {record.max_abs_delta:.3f}"
        )
        accuracy_after = np.mean(
            outcome.model.predict_classes(prepared.test.images) == prepared.test.labels
        )
        print(f"victim accuracy after attack: {accuracy_after:.3f}")

        print("\n=== 3. User validates the black-box IP with the package ===")
        clean = session.validate(
            ValidateRequest(package=released.package), ip=released.model
        )
        tampered = session.validate(
            ValidateRequest(package=released.package), ip=outcome.model
        )
        print(f"clean IP     -> {clean.summary()}")
        print(f"tampered IP  -> {tampered.summary()}")

        assert clean.passed
        assert tampered.detected
    print("\nTampering detected from outputs alone — no access to parameters needed.")


if __name__ == "__main__":
    main()
