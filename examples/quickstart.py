"""Quickstart: train a DNN IP, generate functional tests, detect tampering.

This walks the full story of the paper in a few minutes on a laptop CPU:

1. the *vendor* trains a small CNN (a scaled-down Table-I MNIST model) on the
   synthetic digit dataset;
2. the vendor generates a handful of functional tests with the combined
   method (Algorithm 1 + Algorithm 2) and packages them with the model's
   reference outputs;
3. an *attacker* perturbs the model parameters (single bias attack);
4. the *user*, with black-box access only, replays the functional tests and
   detects the tampering.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import prepare_experiment
from repro.attacks import SingleBiasAttack
from repro.utils.config import TrainingConfig, env_int
from repro.validation import IPVendor, validate_ip


def main() -> None:
    print("=== 1. Vendor trains the DNN IP (scaled Table-I MNIST model) ===")
    # every expensive knob is env-cappable so the CI smoke job can shrink it
    prepared = prepare_experiment(
        "mnist",
        train_size=env_int("REPRO_EXAMPLE_TRAIN", 300),
        test_size=env_int("REPRO_EXAMPLE_TEST", 80),
        width_multiplier=0.125,
        training=TrainingConfig(
            epochs=env_int("REPRO_EXAMPLE_EPOCHS", 8),
            batch_size=32,
            learning_rate=2e-3,
        ),
        rng=0,
    )
    print(f"model: {prepared.model.name}")
    print(f"parameters: {prepared.model.num_parameters()}")
    print(f"test accuracy: {prepared.test_accuracy:.3f}")

    print("\n=== 2. Vendor generates functional tests and builds a package ===")
    vendor = IPVendor(prepared.model, prepared.train)
    package = vendor.release(
        num_tests=env_int("REPRO_EXAMPLE_TESTS", 15),
        candidate_pool=env_int("REPRO_EXAMPLE_POOL", 100),
        rng=1,
        max_updates=env_int("REPRO_EXAMPLE_UPDATES", 30),
    )
    print(f"functional tests: {package.num_tests}")
    print(f"validation coverage: {package.metadata['validation_coverage']:.1%}")

    print("\n=== 3. Attacker perturbs one bias parameter in the shipped IP ===")
    attack = SingleBiasAttack(
        magnitude=10.0, reference_inputs=prepared.test.images[:20], rng=2
    )
    outcome = attack.apply(prepared.model)
    record = outcome.record
    print(
        f"attack touched {record.num_modified} parameter(s) "
        f"({record.parameter_names[0]}), |delta| = {record.max_abs_delta:.3f}"
    )
    accuracy_after = np.mean(
        outcome.model.predict_classes(prepared.test.images) == prepared.test.labels
    )
    print(f"victim accuracy after attack: {accuracy_after:.3f}")

    print("\n=== 4. User validates the black-box IP with the package ===")
    clean_report = validate_ip(prepared.model, package)
    tampered_report = validate_ip(outcome.model, package)
    print(f"clean IP     -> {clean_report.summary()}")
    print(f"tampered IP  -> {tampered_report.summary()}")

    assert clean_report.passed
    assert tampered_report.detected
    print("\nTampering detected from outputs alone — no access to parameters needed.")


if __name__ == "__main__":
    main()
