"""Validation as a service: concurrent clients, one coalesced dispatch.

Releases a package to disk, starts the stdlib-only HTTP endpoint
(:mod:`repro.serve`) on an ephemeral port, and fires eight concurrent
``POST /v1/validate`` requests at the *same* released model.  The server's
cross-request batching coalescer merges them into a single stacked engine
dispatch — ``/stats`` shows one dispatch and seven deduplicated requests —
and every response is byte-identical to a serial in-process validate.  A
tampered copy of the model is then validated over the same wire and
detected.

Run with:  python examples/serve_client.py

The same server runs standalone::

    python -m repro serve --port 8420
"""

from __future__ import annotations

import asyncio
import tempfile
from pathlib import Path

from repro import ReleaseRequest, Session
from repro.attacks import SingleBiasAttack
from repro.nn.serialization import save_model
from repro.serve import HttpClient, HttpServer, ServeConfig, ValidationService
from repro.utils.config import env_int

CONCURRENT = 8
WIDTH = 0.125


def release_artifacts(directory: Path) -> dict:
    """Vendor side: train, generate tests, package, save — plus a tampered copy."""
    request = ReleaseRequest(
        dataset="mnist",
        num_tests=env_int("REPRO_EXAMPLE_TESTS", 8),
        train_size=env_int("REPRO_EXAMPLE_TRAIN", 120),
        test_size=env_int("REPRO_EXAMPLE_TEST", 40),
        epochs=env_int("REPRO_EXAMPLE_EPOCHS", 2),
        candidate_pool=env_int("REPRO_EXAMPLE_POOL", 30),
        gradient_updates=env_int("REPRO_EXAMPLE_UPDATES", 10),
        width_multiplier=WIDTH,
    )
    with Session() as session:
        released = session.release(request)
    print(released.describe())
    paths = released.save(directory)
    tampered = SingleBiasAttack(rng=3).apply(released.model).model
    paths["tampered"] = save_model(tampered, directory / "tampered.npz")
    return paths


async def drive(paths: dict) -> None:
    # the HTTP surface only touches paths inside artifacts_root; without it
    # the server refuses path-taking request fields outright
    service = ValidationService(
        ServeConfig(
            port=0,
            coalesce_window_s=0.02,
            artifacts_root=str(Path(paths["package"]).parent),
        )
    )
    server = HttpServer(service)
    host, port = await server.start()
    print(f"serving on http://{host}:{port}")
    try:
        client = HttpClient(host, port, tenant="example")
        print(f"healthz: {await client.healthz()}")

        def envelope(model_key: str) -> dict:
            return {
                "schema_version": 1,
                "kind": "validate",
                "body": {
                    "package": str(paths["package"]),
                    "model_path": str(paths[model_key]),
                    "arch": "mnist",
                    "width_multiplier": WIDTH,
                },
            }

        # eight concurrent validates of one digest -> one stacked dispatch
        responses = await asyncio.gather(
            *(client.validate(envelope("model")) for _ in range(CONCURRENT))
        )
        assert all(status == 200 for status, _ in responses)
        assert all(body["body"]["passed"] for _, body in responses)
        print(f"{CONCURRENT} concurrent validates of the intact model: all SECURE")

        status, body = await client.validate(envelope("tampered"))
        assert status == 200 and body["body"]["detected"]
        print("tampered model over the same wire: TAMPERED (detected)")

        stats = await client.stats()
        coalescer = stats["coalescer"]
        print(
            f"coalescer: {coalescer['requests']} requests -> "
            f"{coalescer['dispatches']} dispatches "
            f"({coalescer['deduped']} deduplicated, "
            f"hit rate {coalescer['hit_rate']:.3f})"
        )
        assert coalescer["deduped"] >= CONCURRENT - 1, (
            "concurrent same-digest validates must coalesce"
        )
        assert stats["admission"]["tenants"]["example"]["admitted"] == CONCURRENT + 1
    finally:
        await server.stop()  # graceful: drains in-flight work, closes the session
    print("server drained cleanly")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        paths = release_artifacts(Path(tmp))
        asyncio.run(drive(paths))
    print(
        "expected shape: the eight concurrent requests share one stacked "
        "dispatch (seven deduplicated), and each response is byte-identical "
        "to a serial in-process validate"
    )


if __name__ == "__main__":
    main()
