"""Vendor/user workflow with on-disk artefacts (Fig. 1 of the paper).

Unlike the quickstart, this example exercises the full release pipeline as two
separate roles communicating only through files:

* the vendor trains the IP, generates functional tests, and writes both the
  model file and the validation package to disk;
* the user loads the package, treats the received model strictly as a black
  box (a callable), and validates it — once for an intact copy and once for a
  copy whose parameters were swapped by an attacker in transit (the
  "unsecure IP distribution" arrow of Fig. 1).

Run with:  python examples/vendor_user_workflow.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.analysis import prepare_experiment
from repro.attacks import GradientDescentAttack
from repro.models.zoo import mnist_cnn
from repro.nn.serialization import load_model_into, save_model
from repro.utils.config import TrainingConfig, env_int
from repro.validation import IPVendor, ValidationPackage, validate_ip


def vendor_side(workdir: Path) -> dict:
    """Train, generate tests, and write the release artefacts."""
    print("--- vendor: training the IP ---")
    prepared = prepare_experiment(
        "mnist",
        train_size=env_int("REPRO_EXAMPLE_TRAIN", 300),
        test_size=env_int("REPRO_EXAMPLE_TEST", 80),
        width_multiplier=0.125,
        training=TrainingConfig(
            epochs=env_int("REPRO_EXAMPLE_EPOCHS", 8),
            batch_size=32,
            learning_rate=2e-3,
        ),
        rng=0,
    )
    print(f"vendor model accuracy: {prepared.test_accuracy:.3f}")

    vendor = IPVendor(prepared.model, prepared.train)
    package = vendor.release(
        num_tests=env_int("REPRO_EXAMPLE_TESTS", 12),
        candidate_pool=env_int("REPRO_EXAMPLE_POOL", 80),
        rng=1,
        max_updates=env_int("REPRO_EXAMPLE_UPDATES", 30),
    )

    model_path = save_model(prepared.model, workdir / "dnn_ip.npz")
    package_path = package.save(workdir / "validation_package.npz")
    print(f"vendor wrote {model_path.name} and {package_path.name}")
    return {
        "model_path": model_path,
        "package_path": package_path,
        "reference_inputs": prepared.test.images[:10],
    }


def attacker_in_transit(model_path: Path, reference_inputs: np.ndarray) -> Path:
    """Tamper with the shipped parameters (reverse-engineer-and-replace threat)."""
    print("--- attacker: replacing parameters in the shipped model ---")
    victim = mnist_cnn(width_multiplier=0.125, rng=0)
    load_model_into(victim, model_path)
    outcome = GradientDescentAttack(reference_inputs, num_parameters=25, rng=7).apply(victim)
    tampered_path = model_path.with_name("dnn_ip_tampered.npz")
    save_model(outcome.model, tampered_path)
    print(
        f"attacker modified {outcome.record.num_modified} parameters "
        f"(max |delta| = {outcome.record.max_abs_delta:.4f})"
    )
    return tampered_path


def user_side(model_path: Path, package_path: Path, label: str) -> None:
    """Load the received artefacts and validate the black-box IP."""
    received = mnist_cnn(width_multiplier=0.125, rng=0)
    load_model_into(received, model_path, verify_digest=False)
    package = ValidationPackage.load(package_path)

    # the user only ever calls the IP, never inspects it
    black_box = lambda inputs: received.predict(inputs)  # noqa: E731
    report = validate_ip(black_box, package)
    print(f"user validating {label}: {report.summary()}")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        artefacts = vendor_side(workdir)
        tampered_path = attacker_in_transit(
            artefacts["model_path"], artefacts["reference_inputs"]
        )

        print("--- user: validating the received IPs ---")
        user_side(artefacts["model_path"], artefacts["package_path"], "intact IP")
        user_side(tampered_path, artefacts["package_path"], "tampered IP")


if __name__ == "__main__":
    main()
