"""Vendor/user workflow with on-disk artefacts (Fig. 1 of the paper).

Unlike the quickstart, this example exercises the full release pipeline as two
separate roles communicating only through files:

* the vendor runs ``session.release(...)`` and saves both artefacts —
  ``model.npz`` and ``package.npz`` — with one ``ReleasePackage.save`` call;
* the user loads the package, treats the received model strictly as a black
  box, and validates it with ``session.validate(...)`` — once for an intact
  copy and once for a copy whose parameters were swapped by an attacker in
  transit (the "unsecure IP distribution" arrow of Fig. 1).

The same two roles are scriptable from the command line::

    python -m repro release  --dataset mnist --tests 12 --out release/
    python -m repro validate --package release/package.npz \\
        --model release/model.npz --arch mnist

Run with:  python examples/vendor_user_workflow.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import ReleaseRequest, Session, ValidateRequest
from repro.attacks import GradientDescentAttack
from repro.models.zoo import mnist_cnn
from repro.nn.serialization import load_model_into, save_model
from repro.utils.config import env_int

WIDTH = 0.125


def vendor_side(session: Session, workdir: Path) -> dict:
    """Train, generate tests, and write the release artefacts."""
    print("--- vendor: training the IP and building the package ---")
    released = session.release(
        ReleaseRequest(
            dataset="mnist",
            train_size=env_int("REPRO_EXAMPLE_TRAIN", 300),
            test_size=env_int("REPRO_EXAMPLE_TEST", 80),
            epochs=env_int("REPRO_EXAMPLE_EPOCHS", 8),
            width_multiplier=WIDTH,
            num_tests=env_int("REPRO_EXAMPLE_TESTS", 12),
            candidate_pool=env_int("REPRO_EXAMPLE_POOL", 80),
            gradient_updates=env_int("REPRO_EXAMPLE_UPDATES", 30),
        )
    )
    print(f"vendor model accuracy: {released.test_accuracy:.3f}")

    paths = released.save(workdir)
    print(f"vendor wrote {paths['model'].name} and {paths['package'].name}")
    prepared = session.prepare(
        "mnist",
        train_size=env_int("REPRO_EXAMPLE_TRAIN", 300),
        test_size=env_int("REPRO_EXAMPLE_TEST", 80),
        epochs=env_int("REPRO_EXAMPLE_EPOCHS", 8),
        width_multiplier=WIDTH,
    )
    return {
        "model_path": paths["model"],
        "package_path": paths["package"],
        "reference_inputs": prepared.test.images[:10],
    }


def attacker_in_transit(model_path: Path, reference_inputs) -> Path:
    """Tamper with the shipped parameters (reverse-engineer-and-replace threat)."""
    print("--- attacker: replacing parameters in the shipped model ---")
    victim = mnist_cnn(width_multiplier=WIDTH, rng=0)
    load_model_into(victim, model_path)
    outcome = GradientDescentAttack(reference_inputs, num_parameters=25, rng=7).apply(victim)
    tampered_path = model_path.with_name("dnn_ip_tampered.npz")
    save_model(outcome.model, tampered_path)
    print(
        f"attacker modified {outcome.record.num_modified} parameters "
        f"(max |delta| = {outcome.record.max_abs_delta:.4f})"
    )
    return tampered_path


def user_side(session: Session, model_path: Path, package_path: Path, label: str) -> None:
    """Validate the received IP purely from its files — black box only."""
    outcome = session.validate(
        ValidateRequest(
            package=str(package_path),
            model_path=str(model_path),
            arch="mnist",
            width_multiplier=WIDTH,
        )
    )
    print(f"user validating {label}: {outcome.summary()}")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp, Session() as session:
        workdir = Path(tmp)
        artefacts = vendor_side(session, workdir)
        tampered_path = attacker_in_transit(
            artefacts["model_path"], artefacts["reference_inputs"]
        )

        print("--- user: validating the received IPs ---")
        user_side(session, artefacts["model_path"], artefacts["package_path"], "intact IP")
        user_side(session, tampered_path, artefacts["package_path"], "tampered IP")


if __name__ == "__main__":
    main()
