"""Calibration helper: explore Fig. 2 orderings under different noise models.

Not part of the library API — used during development to pick the defaults
documented in DESIGN.md / EXPERIMENTS.md.  Run with ``python
scripts/calibrate_fig2.py``.
"""

import time

import numpy as np

from repro.coverage import ActivationCriterion, average_sample_coverage
from repro.data import (
    generate_imagenet_proxy,
    generate_noise_images,
    load_synth_cifar,
    load_synth_mnist,
)
from repro.models.training import Trainer
from repro.models.zoo import cifar_cnn, mnist_cnn
from repro.utils.config import TrainingConfig


def report(model, train, label, epsilons, scals):
    stats_mean = float(train.images.mean())
    stats_std = float(train.images.std())
    pops = {
        "noise-0.5": generate_noise_images(15, train.sample_shape, rng=1),
        "noise-matched": generate_noise_images(
            15, train.sample_shape, rng=1, mean=stats_mean, std=stats_std
        ),
        "proxy": generate_imagenet_proxy(15, train.sample_shape, rng=2),
        "train": train.take(15, rng=3),
    }
    for scal in scals:
        for eps in epsilons:
            crit = ActivationCriterion(epsilon=eps, scalarization=scal)
            vals = {
                k: average_sample_coverage(model, d.images, crit)
                for k, d in pops.items()
            }
            print(
                f"{label} scal={scal} eps={eps:g}: "
                + " ".join(f"{k}={v:.2f}" for k, v in vals.items()),
                flush=True,
            )


def main():
    t0 = time.time()
    train, test = load_synth_mnist(600, 120, rng=0)
    m = mnist_cnn(width_multiplier=0.125, rng=0)
    h = Trainer(TrainingConfig(epochs=15, batch_size=32, learning_rate=2e-3)).fit(
        m, train, test
    )
    print("mnist acc", h.final_test_accuracy, "t=%.0fs" % (time.time() - t0), flush=True)
    report(m, train, "MNIST-tanh", [1e-2, 3e-2, 1e-1], ["sum", "predicted"])

    t0 = time.time()
    ctrain, ctest = load_synth_cifar(800, 150, rng=0)
    c = cifar_cnn(width_multiplier=0.125, rng=0)
    h = Trainer(TrainingConfig(epochs=15, batch_size=32, learning_rate=2e-3)).fit(
        c, ctrain, ctest
    )
    print("cifar acc", h.final_test_accuracy, "t=%.0fs" % (time.time() - t0), flush=True)
    report(c, ctrain, "CIFAR-relu", [0.0], ["sum"])


if __name__ == "__main__":
    main()
