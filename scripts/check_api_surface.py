#!/usr/bin/env python
"""CI check: the public façade surface matches the committed snapshot.

Usage::

    PYTHONPATH=src python scripts/check_api_surface.py            # verify
    PYTHONPATH=src python scripts/check_api_surface.py --update   # re-pin

Walks the ``__all__`` exports and signatures of ``repro``, ``repro.api`` and
``repro.registry`` (see :func:`repro.api.surface.api_surface`) and compares
them to ``tests/data/api_surface.json``.  A mismatch means the public API
changed: if intentional, re-run with ``--update`` and commit the new
snapshot; if not, you just caught an accidental breaking change.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SNAPSHOT = Path(__file__).resolve().parent.parent / "tests" / "data" / "api_surface.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true", help="rewrite the snapshot from the live surface"
    )
    args = parser.parse_args(argv)

    from repro.api.surface import api_surface

    live = api_surface()
    if args.update:
        SNAPSHOT.parent.mkdir(parents=True, exist_ok=True)
        SNAPSHOT.write_text(json.dumps(live, indent=2, sort_keys=True) + "\n")
        print(f"pinned API surface to {SNAPSHOT}")
        return 0

    if not SNAPSHOT.exists():
        print(f"missing snapshot {SNAPSHOT}; run with --update to create it", file=sys.stderr)
        return 1
    pinned = json.loads(SNAPSHOT.read_text())
    if live == pinned:
        total = sum(len(v) for v in live.values())
        print(f"API surface OK ({total} exports across {len(live)} modules)")
        return 0

    for module in sorted(set(live) | set(pinned)):
        live_mod = live.get(module, {})
        pinned_mod = pinned.get(module, {})
        for name in sorted(set(live_mod) | set(pinned_mod)):
            if name not in live_mod:
                print(f"REMOVED: {module}.{name}", file=sys.stderr)
            elif name not in pinned_mod:
                print(f"ADDED:   {module}.{name}", file=sys.stderr)
            elif live_mod[name] != pinned_mod[name]:
                print(
                    f"CHANGED: {module}.{name}\n"
                    f"  pinned: {pinned_mod[name]}\n"
                    f"  live:   {live_mod[name]}",
                    file=sys.stderr,
                )
    print(
        "API surface drifted from tests/data/api_surface.json; if intentional, "
        "re-pin with: PYTHONPATH=src python scripts/check_api_surface.py --update",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    sys.exit(main())
