"""repro — reproduction of "On Functional Test Generation for Deep Neural
Network IPs" (Luo, Li, Wei, Xu — DATE 2019).

The public entry surface is the :mod:`repro.api` façade, lazily exported
here (PEP 562), so ``import repro`` stays instant and numpy-heavy
subsystems load only when touched::

    from repro import ReleaseRequest, Session, ValidateRequest

    with Session() as session:
        # vendor: train the IP, generate functional tests, package them
        released = session.release(
            ReleaseRequest(dataset="mnist", num_tests=20, candidate_pool=100)
        )

        # attacker: perturb parameters in transit
        from repro.attacks import SingleBiasAttack

        tampered = SingleBiasAttack(rng=1).apply(released.model).model

        # user: validate the black-box IP from outputs alone
        outcome = session.validate(package=released.package, ip=tampered)
        assert outcome.detected

The same operations run from the command line (``python -m repro release``,
``validate``, ``campaign``, ``bench``, ``registry``), and every pluggable
component — test-generation strategies, attacks, coverage criteria,
backends, datasets, models — resolves by name through the cross-subsystem
:mod:`repro.registry`.

Subsystem map:

* :mod:`repro.api` — the façade: :class:`Session`, :class:`RunConfig`, and
  the typed request/result objects of the three paper-level operations.
* :mod:`repro.registry` — the namespaced plugin registry behind every
  by-name lookup (``register``/``names``/``create``; optional entry-point
  discovery for third-party packages).
* :mod:`repro.nn` — from-scratch NumPy deep-learning substrate (layers,
  losses, optimisers, batched per-sample gradient extraction).
* :mod:`repro.engine` — the batched execution engine: memoizing
  forward/gradient/mask queries, pluggable ``numpy``/``parallel`` backends,
  compute-dtype policies.
* :mod:`repro.bench` — the benchmark harness and CI regression gate.
* :mod:`repro.data` — synthetic stand-ins for MNIST, CIFAR-10, ImageNet and
  noise populations.
* :mod:`repro.models` — the Table-I architectures and a trainer.
* :mod:`repro.coverage` — validation (parameter) coverage and the
  neuron-coverage baseline, packed-bitset backed.
* :mod:`repro.testgen` — Algorithms 1 and 2, the combined method, and
  baselines, registered as named strategies.
* :mod:`repro.attacks` — SBA, GDA, random and bit-flip parameter
  perturbations, registered as named attack families.
* :mod:`repro.validation` — the vendor/user scheme and the detection-rate
  experiment harness.
* :mod:`repro.analysis` — figure/table builders, campaign aggregation and
  reporting.
* :mod:`repro.campaign` — declarative, resumable attack × model × criterion
  × strategy × budget sweeps.
* :mod:`repro.serve` — validation as a service: the async multi-tenant
  HTTP endpoint with the cross-request batching coalescer
  (``python -m repro serve``).
* :mod:`repro.online` — query-budgeted online verification: the
  fault-tolerant :class:`~repro.online.RemoteModel` transport and the
  SPRT sequential verifier (``python -m repro verify``).
"""

from typing import TYPE_CHECKING

__version__ = "1.0.0"

#: lazily-exported façade names → the module that defines them
_LAZY_EXPORTS = {
    "Session": "repro.api",
    "RunConfig": "repro.api",
    "ReleaseRequest": "repro.api",
    "ReleasePackage": "repro.api",
    "ValidateRequest": "repro.api",
    "ValidationOutcome": "repro.api",
    "SweepRequest": "repro.api",
    "release": "repro.api",
    "validate": "repro.api",
    "sweep": "repro.api",
    "api_surface": "repro.api",
    "register": "repro.registry",
    "FaultPolicy": "repro.faults",
    "ServeConfig": "repro.serve",
    "ValidationService": "repro.serve",
    "RemoteModel": "repro.online",
    "verify_online": "repro.online",
}

__all__ = ["__version__", "get_registry", *sorted(_LAZY_EXPORTS)]

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from repro.api import (  # noqa: F401
        ReleasePackage,
        ReleaseRequest,
        RunConfig,
        Session,
        SweepRequest,
        ValidateRequest,
        ValidationOutcome,
        api_surface,
        release,
        sweep,
        validate,
    )
    from repro.faults import FaultPolicy  # noqa: F401
    from repro.online import RemoteModel, verify_online  # noqa: F401
    from repro.registry import register  # noqa: F401
    from repro.serve import ServeConfig, ValidationService  # noqa: F401


def get_registry():
    """The process-wide :class:`repro.registry.Registry` singleton."""
    from repro.registry import registry

    return registry


def __getattr__(name: str):
    """PEP 562 lazy export: import the façade only when first touched."""
    target = _LAZY_EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(target)
    value = getattr(module, name)
    globals()[name] = value  # cache: subsequent lookups skip __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
