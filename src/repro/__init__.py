"""repro — reproduction of "On Functional Test Generation for Deep Neural
Network IPs" (Luo, Li, Wei, Xu — DATE 2019).

The package is organised as:

* :mod:`repro.nn` — from-scratch NumPy deep-learning substrate (layers,
  losses, optimisers, gradient queries, batched per-sample gradient
  extraction).
* :mod:`repro.engine` — the batched execution engine: one
  :class:`~repro.engine.Engine` per model vectorizes forward/backward
  queries (logits, per-sample parameter gradients, activation and neuron
  masks) across whole candidate pools, memoizes immutable results keyed by
  parameter digest + array fingerprint, and routes execution through a
  pluggable backend — the in-process ``NumpyBackend`` or the multi-core
  sharded ``ParallelBackend`` — under a compute-dtype policy (float64
  default, opt-in float32).  Every coverage/testgen/attack/validation hot
  path runs through it; prefer it over raw ``Model.forward`` whenever the
  same model is queried for more than a handful of samples.
* :mod:`repro.bench` — the benchmark harness: workload matrix per backend ×
  dtype, ``BENCH_engine.json`` reports, and the CI regression gate.
* :mod:`repro.data` — synthetic stand-ins for MNIST, CIFAR-10, ImageNet and
  noise image populations.
* :mod:`repro.models` — the Table-I architectures and a trainer.
* :mod:`repro.coverage` — validation (parameter) coverage and the
  neuron-coverage baseline, batched through the engine with per-sample
  reference implementations retained for equivalence testing.
* :mod:`repro.testgen` — Algorithms 1 and 2, the combined method, and
  baselines.
* :mod:`repro.attacks` — SBA, GDA, random and bit-flip parameter
  perturbations.
* :mod:`repro.validation` — the vendor/user scheme and the detection-rate
  experiment harness.
* :mod:`repro.analysis` — figure/table builders and reporting, including
  the campaign-store aggregation behind ``python -m repro.campaign report``.
* :mod:`repro.campaign` — declarative attack × model × criterion × strategy
  × budget sweeps: a TOML/JSON-loadable :class:`~repro.campaign.CampaignSpec`
  expands into digest-keyed scenarios executed by a resumable runner into an
  append-only JSONL store (``python -m repro.campaign run/report/diff``).

Typical quickstart::

    from repro.analysis import prepare_experiment
    from repro.validation import IPVendor, validate_ip
    from repro.attacks import SingleBiasAttack

    prepared = prepare_experiment("mnist", rng=0)
    vendor = IPVendor(prepared.model, prepared.train)
    package = vendor.release(num_tests=20, candidate_pool=100)

    tampered = SingleBiasAttack(rng=1).apply(prepared.model).model
    report = validate_ip(tampered, package)
    assert report.detected
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
