"""Experiment drivers, figure series builders and result reporting."""

from repro.analysis.campaign import (
    campaign_csv,
    campaign_rows,
    coverage_summary_rows,
    detection_rate_tables,
    render_campaign_report,
    write_campaign_report,
)
from repro.analysis.figures import (
    CoverageCurves,
    ImageSetCoverage,
    SyntheticSampleReport,
    coverage_vs_budget,
    image_set_coverage,
    synthetic_sample_report,
)
from repro.analysis.reporting import (
    ascii_bar_chart,
    ascii_line_chart,
    coverage_memory_rows,
    detection_table_markdown,
    format_bytes,
    format_csv,
    format_markdown_table,
    format_percentage,
    write_csv,
)
from repro.analysis.sweep import (
    PreparedExperiment,
    SweepResult,
    build_method_packages,
    epsilon_sweep,
    prepare_experiment,
    scalarization_sweep,
)

__all__ = [
    "campaign_csv",
    "campaign_rows",
    "coverage_summary_rows",
    "detection_rate_tables",
    "render_campaign_report",
    "write_campaign_report",
    "CoverageCurves",
    "ImageSetCoverage",
    "SyntheticSampleReport",
    "coverage_vs_budget",
    "image_set_coverage",
    "synthetic_sample_report",
    "ascii_bar_chart",
    "ascii_line_chart",
    "coverage_memory_rows",
    "detection_table_markdown",
    "format_bytes",
    "format_csv",
    "format_markdown_table",
    "format_percentage",
    "write_csv",
    "PreparedExperiment",
    "SweepResult",
    "build_method_packages",
    "epsilon_sweep",
    "prepare_experiment",
    "scalarization_sweep",
]
