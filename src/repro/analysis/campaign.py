"""Folding a campaign result store into the paper's evaluation tables.

The campaign runner records one JSONL line per scenario; this module
aggregates those records into the Tables II/III-style detection-rate grids
(one per model × criterion, rows = budgets, columns = strategy × attack) and
a coverage summary, and renders the whole thing as a markdown report or CSV.
The aggregation is pure — it reads :class:`~repro.campaign.store
.ScenarioRecord` objects and never touches models or engines — so reports
can be regenerated from a store at any time (``python -m repro.campaign
report``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.reporting import (
    detection_table_markdown,
    format_csv,
    format_markdown_table,
)
from repro.campaign.store import ScenarioRecord

PathLike = Union[str, Path]


def campaign_rows(records: Sequence[ScenarioRecord]) -> List[Dict[str, object]]:
    """Flat dict rows (one per scenario) for CSV / markdown rendering."""
    rows: List[Dict[str, object]] = []
    for record in records:
        s = record.scenario
        rows.append(
            {
                "model": s.get("model"),
                "attack": s.get("attack"),
                "criterion": s.get("criterion"),
                "strategy": s.get("strategy"),
                "budget": s.get("budget"),
                "trials": record.trials,
                "detections": record.detections,
                "detection_rate": record.detection_rate,
                "coverage": record.coverage,
                "queries_to_decision": record.extra.get("mean_queries_to_decision", ""),
                "digest": record.digest,
            }
        )
    return rows


def _ordered(values: Sequence[object]) -> List[object]:
    """First-seen order, deduplicated (keeps spec axis order in reports)."""
    seen: List[object] = []
    for v in values:
        if v not in seen:
            seen.append(v)
    return seen


def detection_rate_tables(
    records: Sequence[ScenarioRecord],
) -> Dict[Tuple[str, str], str]:
    """One Tables II/III-style markdown grid per (model, criterion).

    Rows are test budgets N; columns are strategy:attack pairs — the same
    layout :func:`~repro.analysis.reporting.detection_table_markdown` uses
    for the single-model experiment, now keyed across the campaign axes.
    """
    groups: Dict[Tuple[str, str], List[ScenarioRecord]] = {}
    for record in records:
        key = (str(record.scenario.get("model")), str(record.scenario.get("criterion")))
        groups.setdefault(key, []).append(record)

    tables: Dict[Tuple[str, str], str] = {}
    for key, group in groups.items():
        budgets = sorted({int(r.scenario["budget"]) for r in group})  # type: ignore[arg-type]
        strategies = _ordered([str(r.scenario.get("strategy")) for r in group])
        attacks = _ordered([str(r.scenario.get("attack")) for r in group])
        rows = [
            {
                "method": str(r.scenario.get("strategy")),
                "attack": str(r.scenario.get("attack")),
                "num_tests": int(r.scenario["budget"]),  # type: ignore[arg-type]
                "detection_rate": r.detection_rate,
            }
            for r in group
        ]
        tables[key] = detection_table_markdown(
            rows, budgets=budgets, methods=strategies, attacks=attacks
        )
    return tables


def coverage_summary_rows(
    records: Sequence[ScenarioRecord],
) -> List[Dict[str, object]]:
    """Validation coverage per (model, criterion, strategy, budget).

    Coverage does not depend on the attack axis, so attack-duplicated
    scenarios collapse to one row each.
    """
    seen: Dict[Tuple[str, str, str, int], Dict[str, object]] = {}
    for record in records:
        s = record.scenario
        key = (
            str(s.get("model")),
            str(s.get("criterion")),
            str(s.get("strategy")),
            int(s["budget"]),  # type: ignore[arg-type]
        )
        if key not in seen:
            seen[key] = {
                "model": key[0],
                "criterion": key[1],
                "strategy": key[2],
                "budget": key[3],
                "coverage": record.coverage,
            }
    return [seen[k] for k in sorted(seen)]


def render_campaign_report(
    records: Sequence[ScenarioRecord],
    title: Optional[str] = None,
) -> str:
    """Full markdown report: detection grids per (model, criterion) plus a
    coverage summary and the flat per-scenario table."""
    if not records:
        raise ValueError("no records to report — run the campaign first")
    campaign = records[0].campaign
    lines: List[str] = [f"# Campaign report: {title or campaign}", ""]
    lines.append(
        f"{len(records)} scenarios | models: "
        f"{', '.join(str(m) for m in _ordered([r.scenario.get('model') for r in records]))} | "
        f"attacks: "
        f"{', '.join(str(a) for a in _ordered([r.scenario.get('attack') for r in records]))}"
    )
    lines.append("")
    for (model, criterion), table in detection_rate_tables(records).items():
        lines.append(f"## Detection rates — model `{model}`, criterion `{criterion}`")
        lines.append("")
        lines.append(table)
        lines.append("")
    lines.append("## Validation coverage by budget")
    lines.append("")
    lines.append(format_markdown_table(coverage_summary_rows(records)))
    lines.append("")
    lines.append("## All scenarios")
    lines.append("")
    rows = campaign_rows(records)
    lines.append(
        format_markdown_table(
            rows,
            columns=[
                "model",
                "attack",
                "criterion",
                "strategy",
                "budget",
                "trials",
                "detections",
                "detection_rate",
                "coverage",
                "queries_to_decision",
            ],
        )
    )
    lines.append("")
    return "\n".join(lines)


def write_campaign_report(
    records: Sequence[ScenarioRecord],
    path: PathLike,
    title: Optional[str] = None,
) -> Path:
    """Render and write the markdown report, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_campaign_report(records, title=title), encoding="utf-8")
    return path


def campaign_csv(records: Sequence[ScenarioRecord]) -> str:
    """The flat per-scenario table as CSV text."""
    return format_csv(campaign_rows(records))


__all__ = [
    "campaign_csv",
    "campaign_rows",
    "coverage_summary_rows",
    "detection_rate_tables",
    "render_campaign_report",
    "write_campaign_report",
]
