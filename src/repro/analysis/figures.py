"""Series builders for the paper's figures.

* :func:`image_set_coverage` — the three bars of Fig. 2 (noise / off-
  distribution natural images / training set) for one model.
* :func:`coverage_vs_budget` — the curves of Fig. 3 (training-set selection,
  gradient-based generation, combined) on one model.
* :func:`synthetic_sample_report` — the quantitative counterpart of Fig. 4:
  are the synthetic samples classified as intended, and how similar are they
  to real training samples of the same class?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.coverage.activation import ActivationCriterion, default_criterion_for
from repro.coverage.parameter_coverage import average_sample_coverage
from repro.data.datasets import Dataset
from repro.data.imagenet_proxy import generate_imagenet_proxy
from repro.data.noise import generate_noise_images
from repro.nn.model import Sequential
from repro.testgen.base import GenerationResult
from repro.testgen.combined import CombinedGenerator
from repro.testgen.gradient_gen import GradientTestGenerator
from repro.testgen.selection import TrainingSetSelector
from repro.utils.rng import RngLike, as_generator


@dataclass
class ImageSetCoverage:
    """Fig. 2 data point set for one model."""

    model_name: str
    coverage_by_set: Dict[str, float] = field(default_factory=dict)

    def as_rows(self) -> List[Dict[str, object]]:
        return [
            {"model": self.model_name, "image_set": name, "avg_coverage": value}
            for name, value in self.coverage_by_set.items()
        ]


def image_set_coverage(
    model: Sequential,
    training_set: Dataset,
    num_samples: int = 50,
    criterion: Optional[ActivationCriterion] = None,
    noise_mean: float = 0.5,
    noise_std: float = 0.25,
    rng: RngLike = None,
) -> ImageSetCoverage:
    """Average per-sample validation coverage of the three Fig. 2 populations.

    The paper samples 1000 images per population; ``num_samples`` scales that
    down for CPU runs (the comparison is between means, so the ordering is
    stable with far fewer samples).

    The "noisy images of Gaussian distribution" population is modelled as
    pixels drawn i.i.d. from ``N(noise_mean, noise_std)`` clipped to [0, 1]
    (full-contrast static by default).  Note that on the synthetic substrate
    this population does *not* reproduce the paper's low coverage for noise —
    see EXPERIMENTS.md (E2) for the measured values and the explanation.
    """
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    gen = as_generator(rng)
    crit = criterion or default_criterion_for(model)
    shape = training_set.sample_shape

    noise = generate_noise_images(
        num_samples, shape, rng=gen, mean=noise_mean, std=noise_std
    )
    natural = generate_imagenet_proxy(num_samples, shape, rng=gen)
    train_subset = training_set.take(min(num_samples, len(training_set)), rng=gen)

    return ImageSetCoverage(
        model_name=model.name,
        coverage_by_set={
            "noise": average_sample_coverage(model, noise.images, crit),
            "imagenet-proxy": average_sample_coverage(model, natural.images, crit),
            "training-set": average_sample_coverage(model, train_subset.images, crit),
        },
    )


@dataclass
class CoverageCurves:
    """Fig. 3 data: coverage-vs-budget curves per generation method."""

    model_name: str
    budgets: List[int]
    curves: Dict[str, List[float]] = field(default_factory=dict)

    def as_rows(self) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for method, values in self.curves.items():
            for n, value in zip(self.budgets, values):
                rows.append(
                    {
                        "model": self.model_name,
                        "method": method,
                        "num_tests": n,
                        "coverage": value,
                    }
                )
        return rows

    def crossover_budget(self, method_a: str, method_b: str) -> Optional[int]:
        """Smallest budget at which ``method_b`` overtakes ``method_a``.

        Returns ``None`` when no crossover happens within the evaluated
        budgets.  Used to check the paper's claim that selection wins early
        and gradient generation wins late.
        """
        a, b = self.curves[method_a], self.curves[method_b]
        for n, (va, vb) in zip(self.budgets, zip(a, b)):
            if vb > va:
                return n
        return None


def coverage_vs_budget(
    model: Sequential,
    training_set: Dataset,
    max_tests: int = 30,
    candidate_pool: Optional[int] = 200,
    criterion: Optional[ActivationCriterion] = None,
    rng: RngLike = None,
    gradient_kwargs: Optional[Dict[str, object]] = None,
    include_combined: bool = True,
) -> CoverageCurves:
    """Coverage-vs-number-of-tests curves for the three methods of Fig. 3."""
    if max_tests <= 0:
        raise ValueError("max_tests must be positive")
    gen = as_generator(rng)
    crit = criterion or default_criterion_for(model)
    gkwargs = dict(gradient_kwargs or {})

    selector = TrainingSetSelector(
        model, training_set, criterion=crit, candidate_pool=candidate_pool, rng=gen
    )
    selection_result = selector.generate(max_tests)

    gradient = GradientTestGenerator(model, criterion=crit, rng=gen, **gkwargs)  # type: ignore[arg-type]
    gradient_result = gradient.generate(max_tests)

    curves = {
        "training-selection": list(selection_result.coverage_history),
        "gradient-generation": list(gradient_result.coverage_history),
    }
    if include_combined:
        combined = CombinedGenerator(
            model,
            training_set,
            criterion=crit,
            candidate_pool=candidate_pool,
            rng=gen,
            **gkwargs,  # type: ignore[arg-type]
        )
        combined_result = combined.generate(max_tests)
        curves["combined"] = list(combined_result.coverage_history)

    budgets = list(range(1, max_tests + 1))
    # selection may stop early if the candidate pool is smaller than the budget
    for name, values in curves.items():
        if len(values) < max_tests:
            values.extend([values[-1]] * (max_tests - len(values)))
    return CoverageCurves(model_name=model.name, budgets=budgets, curves=curves)


@dataclass
class SyntheticSampleReport:
    """Fig. 4 counterpart: quality metrics of gradient-synthesised samples."""

    model_name: str
    #: fraction of synthetic samples classified as their intended class
    synthesis_accuracy: float
    #: per-class cosine similarity between the mean training image and the
    #: synthetic image of the same class
    per_class_similarity: Dict[int, float] = field(default_factory=dict)
    #: baseline similarity between mean training images and *mismatched*
    #: synthetic classes, for contrast
    cross_class_similarity: float = 0.0

    @property
    def mean_similarity(self) -> float:
        if not self.per_class_similarity:
            raise ValueError("no per-class similarities recorded")
        return float(np.mean(list(self.per_class_similarity.values())))


def _cosine(a: np.ndarray, b: np.ndarray) -> float:
    a = a.ravel()
    b = b.ravel()
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom == 0:
        return 0.0
    return float(np.dot(a, b) / denom)


def synthetic_sample_report(
    model: Sequential,
    training_set: Dataset,
    generator: Optional[GradientTestGenerator] = None,
    rng: RngLike = None,
) -> SyntheticSampleReport:
    """Quantify how much synthetic samples resemble real samples of their class.

    Fig. 4 of the paper shows this visually (the synthetic "0" has a circle);
    here the resemblance is measured as the cosine similarity between each
    synthetic sample and the mean training image of its intended class,
    contrasted with the similarity to other classes' means.
    """
    gen_rng = as_generator(rng)
    generator = generator or GradientTestGenerator(model, rng=gen_rng)
    batch = generator.synthesize_batch()
    k = model.num_classes
    predicted = model.predict_classes(batch)
    synthesis_accuracy = float(np.mean(predicted == np.arange(k)))

    class_means = {}
    for c in range(k):
        members = training_set.images[training_set.labels == c]
        if members.shape[0] == 0:
            continue
        class_means[c] = members.mean(axis=0)

    per_class = {}
    cross_values = []
    for c, mean_image in class_means.items():
        per_class[c] = _cosine(batch[c], mean_image)
        for other, other_mean in class_means.items():
            if other != c:
                cross_values.append(_cosine(batch[c], other_mean))

    return SyntheticSampleReport(
        model_name=model.name,
        synthesis_accuracy=synthesis_accuracy,
        per_class_similarity=per_class,
        cross_class_similarity=float(np.mean(cross_values)) if cross_values else 0.0,
    )


__all__ = [
    "ImageSetCoverage",
    "image_set_coverage",
    "CoverageCurves",
    "coverage_vs_budget",
    "SyntheticSampleReport",
    "synthetic_sample_report",
]
