"""Rendering of experiment results as markdown tables, CSV and ASCII charts.

The benchmarks print the same rows/series the paper reports; these helpers
keep that formatting in one place so table output is consistent across the
benchmark harness, the examples and EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

PathLike = Union[str, Path]
Row = Mapping[str, object]


def format_markdown_table(
    rows: Sequence[Row],
    columns: Optional[Sequence[str]] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render dict rows as a GitHub-flavoured markdown table."""
    if not rows:
        raise ValueError("no rows to format")
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value: object) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    header = "| " + " | ".join(columns) + " |"
    separator = "| " + " | ".join("---" for _ in columns) + " |"
    body = [
        "| " + " | ".join(fmt(row.get(col, "")) for col in columns) + " |"
        for row in rows
    ]
    return "\n".join([header, separator, *body])


def format_csv(rows: Sequence[Row], columns: Optional[Sequence[str]] = None) -> str:
    """Render dict rows as CSV text."""
    if not rows:
        raise ValueError("no rows to format")
    if columns is None:
        columns = list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns), extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow({k: row.get(k, "") for k in columns})
    return buffer.getvalue()


def write_csv(rows: Sequence[Row], path: PathLike, columns: Optional[Sequence[str]] = None) -> Path:
    """Write dict rows to a CSV file, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(format_csv(rows, columns), encoding="utf-8")
    return path


def format_percentage(value: float, decimals: int = 1) -> str:
    """Format a fraction in ``[0, 1]`` as a percentage string ("87.2%")."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"value must be a fraction in [0, 1], got {value}")
    return f"{value * 100:.{decimals}f}%"


def ascii_bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    value_format: str = "{:.1%}",
) -> str:
    """Simple horizontal bar chart for terminal output (used for Fig. 2)."""
    if not values:
        raise ValueError("no values to chart")
    max_value = max(values.values())
    if max_value <= 0:
        max_value = 1.0
    label_width = max(len(k) for k in values)
    lines = []
    for label, value in values.items():
        bar = "#" * max(1, int(round(width * value / max_value))) if value > 0 else ""
        lines.append(
            f"{label.ljust(label_width)} | {bar.ljust(width)} {value_format.format(value)}"
        )
    return "\n".join(lines)


def ascii_line_chart(
    series: Mapping[str, Sequence[float]],
    xs: Optional[Sequence[float]] = None,
    height: int = 12,
    width: int = 60,
) -> str:
    """Very small ASCII multi-series line chart (used for Fig. 3).

    Each series is resampled onto ``width`` columns and plotted with its own
    marker character; the y-axis spans [0, max value].
    """
    if not series:
        raise ValueError("no series to chart")
    markers = "ox+*#@%&"
    all_values = [v for vs in series.values() for v in vs]
    if not all_values:
        raise ValueError("series contain no points")
    y_max = max(max(all_values), 1e-9)

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for si, (name, values) in enumerate(series.items()):
        marker = markers[si % len(markers)]
        legend.append(f"{marker} = {name}")
        n = len(values)
        if n == 0:
            continue
        for col in range(width):
            src = min(n - 1, int(round(col * (n - 1) / max(width - 1, 1))))
            value = values[src]
            row = height - 1 - int(round((value / y_max) * (height - 1)))
            row = min(max(row, 0), height - 1)
            grid[row][col] = marker
    lines = ["".join(row) for row in grid]
    axis = "-" * width
    return "\n".join(lines + [axis, "   ".join(legend), f"(y max = {y_max:.3f})"])


def detection_table_markdown(
    rows: Iterable[Dict[str, object]],
    budgets: Sequence[int],
    methods: Sequence[str],
    attacks: Sequence[str],
) -> str:
    """Render detection-rate rows in the layout of Tables II/III.

    One row per budget N; one column per (method, attack) pair, matching the
    paper's "Tests with neuron coverage | Proposed with parameter coverage"
    grouping.
    """
    indexed: Dict[tuple, float] = {}
    for row in rows:
        key = (str(row["method"]), str(row["attack"]), int(row["num_tests"]))
        indexed[key] = float(row["detection_rate"])

    columns = ["N"] + [f"{m}:{a}" for m in methods for a in attacks]
    table_rows: List[Dict[str, object]] = []
    for n in budgets:
        out: Dict[str, object] = {"N": n}
        for m in methods:
            for a in attacks:
                key = (m, a, n)
                out[f"{m}:{a}"] = (
                    format_percentage(indexed[key]) if key in indexed else "-"
                )
        table_rows.append(out)
    return format_markdown_table(table_rows, columns=columns)


def format_bytes(num_bytes: float) -> str:
    """Human-readable byte count (``"1.2 GB"``), for memory-sizing tables."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            return f"{value:.0f} {unit}" if unit == "B" else f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")  # pragma: no cover


def coverage_memory_rows(
    num_parameters: int, pool_sizes: Sequence[int]
) -> List[Dict[str, object]]:
    """Dense-vs-packed mask-matrix sizing for a pool-size sweep.

    One row per candidate-pool size: the resident bytes of the dense boolean
    ``(N, P)`` mask matrix, of the packed uint64 representation, and their
    ratio.  Feed the rows to :func:`format_markdown_table` for the README's
    memory-sizing table, or read the numbers directly when choosing a
    ``candidate_pool`` / ``memory_budget_bytes`` for a machine.
    """
    from repro.coverage.bitmap import packed_nbytes

    if num_parameters <= 0:
        raise ValueError("num_parameters must be positive")
    rows: List[Dict[str, object]] = []
    for n in pool_sizes:
        if n <= 0:
            raise ValueError("pool sizes must be positive")
        dense = n * num_parameters
        packed = packed_nbytes(num_parameters, rows=n)
        rows.append(
            {
                "pool_size": int(n),
                "parameters": int(num_parameters),
                "dense_bytes": int(dense),
                "packed_bytes": int(packed),
                "dense": format_bytes(dense),
                "packed": format_bytes(packed),
                "ratio": packed / dense,
            }
        )
    return rows


__all__ = [
    "format_markdown_table",
    "format_csv",
    "write_csv",
    "format_percentage",
    "format_bytes",
    "coverage_memory_rows",
    "ascii_bar_chart",
    "ascii_line_chart",
    "detection_table_markdown",
]
