"""Parameter sweeps and end-to-end experiment drivers.

These helpers stitch the library's pieces together into the exact experiment
protocols of Section V, so benchmarks, examples and EXPERIMENTS.md all run the
same code paths:

* :func:`prepare_experiment` — train a model on one of the synthetic datasets
  (the "IP vendor trains the model" step).
* :func:`build_method_packages` — generate functional-test packages for the
  methods compared in Tables II/III (neuron-coverage baseline vs. the
  proposed parameter-coverage combined method).
* :func:`epsilon_sweep` / :func:`scalarization_sweep` — the ablation studies
  listed in DESIGN.md (A2, A3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.coverage.activation import ActivationCriterion, default_criterion_for
from repro.data.datasets import Dataset
from repro.engine import Engine
from repro.data.synth_digits import load_synth_mnist
from repro.data.synth_objects import load_synth_cifar
from repro.models.training import Trainer, TrainingHistory
from repro.models.zoo import MODEL_LEARNING_RATES, cifar_cnn, mnist_cnn
from repro.nn.model import Sequential
from repro.testgen.combined import CombinedGenerator
from repro.testgen.neuron_testgen import NeuronCoverageSelector
from repro.utils.config import TrainingConfig
from repro.utils.logging import get_logger
from repro.utils.rng import RngLike, as_generator
from repro.validation.package import ValidationPackage
from repro.validation.vendor import IPVendor

logger = get_logger("analysis.sweep")


@dataclass
class PreparedExperiment:
    """A trained model plus the data it was trained on."""

    model: Sequential
    train: Dataset
    test: Dataset
    history: TrainingHistory
    dataset_name: str

    @property
    def test_accuracy(self) -> float:
        return self.history.final_test_accuracy


def prepare_experiment(
    dataset: str = "mnist",
    train_size: int = 400,
    test_size: int = 120,
    width_multiplier: float = 0.125,
    training: Optional[TrainingConfig] = None,
    rng: RngLike = None,
) -> PreparedExperiment:
    """Train a Table-I style model on one of the synthetic datasets.

    ``dataset`` is ``"mnist"`` (Tanh CNN on synthetic digits) or ``"cifar"``
    (ReLU CNN on synthetic colour objects), mirroring the paper's two setups.
    """
    gen = as_generator(rng)
    if dataset == "mnist":
        train, test = load_synth_mnist(train_size, test_size, rng=gen)
        model = mnist_cnn(width_multiplier=width_multiplier, rng=gen)
        default_training = TrainingConfig(
            epochs=8, batch_size=32, learning_rate=MODEL_LEARNING_RATES["mnist"]
        )
    elif dataset == "cifar":
        train, test = load_synth_cifar(train_size, test_size, rng=gen)
        model = cifar_cnn(width_multiplier=width_multiplier / 2, rng=gen)
        default_training = TrainingConfig(
            epochs=12, batch_size=32, learning_rate=MODEL_LEARNING_RATES["cifar"]
        )
    else:
        raise ValueError(f"unknown dataset {dataset!r}; choose 'mnist' or 'cifar'")

    config = training or default_training
    history = Trainer(config).fit(model, train, test)
    logger.info(
        "%s model trained: accuracy %.3f with %d parameters",
        dataset,
        history.final_test_accuracy,
        model.num_parameters(),
    )
    return PreparedExperiment(
        model=model, train=train, test=test, history=history, dataset_name=dataset
    )


def build_method_packages(
    prepared: PreparedExperiment,
    num_tests: int,
    candidate_pool: Optional[int] = 150,
    rng: RngLike = None,
    gradient_kwargs: Optional[Dict[str, object]] = None,
) -> Dict[str, ValidationPackage]:
    """Packages for the two methods compared in Tables II/III.

    ``"neuron-coverage"`` — tests greedily selected for neuron coverage (the
    hardware-testing baseline); ``"parameter-coverage"`` — the paper's
    combined method.
    """
    gen = as_generator(rng)
    vendor = IPVendor(prepared.model, prepared.train)
    gkwargs = dict(gradient_kwargs or {})

    combined = CombinedGenerator(
        prepared.model,
        prepared.train,
        candidate_pool=candidate_pool,
        rng=gen,
        **gkwargs,  # type: ignore[arg-type]
    )
    neuron = NeuronCoverageSelector(
        prepared.model, prepared.train, candidate_pool=candidate_pool, rng=gen
    )

    packages = {
        "parameter-coverage": vendor.build_package(combined.generate(num_tests)),
        "neuron-coverage": vendor.build_package(neuron.generate(num_tests)),
    }
    for name, pkg in packages.items():
        logger.info(
            "%s package: %d tests, parameter coverage %.3f",
            name,
            pkg.num_tests,
            float(pkg.metadata.get("validation_coverage", float("nan"))),
        )
    return packages


@dataclass
class SweepResult:
    """Outcome of a one-dimensional ablation sweep."""

    parameter: str
    values: List[object] = field(default_factory=list)
    coverages: List[float] = field(default_factory=list)

    def as_rows(self) -> List[Dict[str, object]]:
        return [
            {self.parameter: v, "coverage": c}
            for v, c in zip(self.values, self.coverages)
        ]


def epsilon_sweep(
    model: Sequential,
    tests: np.ndarray,
    epsilons: Sequence[float] = (0.0, 1e-8, 1e-6, 1e-4, 1e-2),
    scalarization: str = "sum",
    engine: Optional[Engine] = None,
) -> SweepResult:
    """Ablation A2: how the activation threshold ε changes measured coverage.

    Larger ε counts fewer gradients as "activated", so coverage is
    monotonically non-increasing in ε; the sweep quantifies how sensitive the
    metric is for saturating-activation networks.

    The per-sample gradient matrix is computed once (batched); each ε is
    then a pure thresholding pass over it.
    """
    tests = np.asarray(tests)
    if tests.shape[0] == 0:  # an empty test set covers nothing at any ε
        return SweepResult(
            parameter="epsilon", values=list(epsilons), coverages=[0.0] * len(epsilons)
        )
    # single-query fallback engine: memoization would never be hit again
    eng = engine or Engine(model, cache=False)
    grads = eng.output_gradients(tests, scalarization)
    result = SweepResult(parameter="epsilon")
    for eps in epsilons:
        criterion = ActivationCriterion(epsilon=eps, scalarization=scalarization)
        coverage = float(criterion.activated(grads).any(axis=0).mean())
        result.values.append(eps)
        result.coverages.append(coverage)
    return result


def scalarization_sweep(
    model: Sequential,
    tests: np.ndarray,
    scalarizations: Sequence[str] = ("sum", "max", "predicted"),
    epsilon: Optional[float] = None,
    engine: Optional[Engine] = None,
) -> SweepResult:
    """Ablation A3: effect of how F(x) is scalarised before taking ∇θ.

    One batched backward pass per distinct scalarization — ``max`` and
    ``predicted`` seed the backward identically, so the engine serves them
    from one memoized gradient matrix.
    """
    eng = engine or Engine(model)
    result = SweepResult(parameter="scalarization")
    base = default_criterion_for(model)
    eps = base.epsilon if epsilon is None else epsilon
    for name in scalarizations:
        criterion = ActivationCriterion(epsilon=eps, scalarization=name)
        coverage = eng.set_validation_coverage(tests, criterion)
        result.values.append(name)
        result.coverages.append(coverage)
    return result


__all__ = [
    "PreparedExperiment",
    "prepare_experiment",
    "build_method_packages",
    "SweepResult",
    "epsilon_sweep",
    "scalarization_sweep",
]
