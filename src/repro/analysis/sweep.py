"""Parameter sweeps and end-to-end experiment drivers.

These helpers stitch the library's pieces together into the exact experiment
protocols of Section V, so benchmarks, examples and EXPERIMENTS.md all run the
same code paths:

* :func:`prepare_experiment` — train a model on one of the synthetic datasets
  (the "IP vendor trains the model" step).
* :func:`build_method_packages` — generate functional-test packages for the
  methods compared in Tables II/III (neuron-coverage baseline vs. the
  proposed parameter-coverage combined method).
* :func:`epsilon_sweep` / :func:`scalarization_sweep` — the ablation studies
  listed in DESIGN.md (A2, A3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.coverage.activation import ActivationCriterion, default_criterion_for
from repro.data.datasets import Dataset
from repro.engine import Engine
from repro.models.training import Trainer, TrainingHistory
from repro.models.zoo import MODEL_LEARNING_RATES
from repro.nn.model import Sequential
from repro.registry import registry
from repro.testgen.combined import CombinedGenerator
from repro.testgen.neuron_testgen import NeuronCoverageSelector
from repro.utils.config import TrainingConfig
from repro.utils.logging import get_logger
from repro.utils.rng import RngLike, as_generator
from repro.validation.package import ValidationPackage
from repro.validation.vendor import IPVendor

logger = get_logger("analysis.sweep")


@dataclass
class PreparedExperiment:
    """A trained model plus the data it was trained on."""

    model: Sequential
    train: Dataset
    test: Dataset
    history: TrainingHistory
    dataset_name: str

    @property
    def test_accuracy(self) -> float:
        return self.history.final_test_accuracy


def preparable_datasets() -> List[str]:
    """Registry dataset names carrying an experiment recipe in their metadata."""
    return [
        name
        for name in registry.names("datasets")
        if "model" in registry.metadata("datasets", name)
    ]


def dataset_recipe(dataset: str) -> Dict[str, object]:
    """The dataset entry's experiment recipe (raises for recipe-less entries).

    Recipe keys: ``model`` (zoo/registry model name, required), ``epochs``
    (default training length), ``width_scale`` (factor applied to the
    caller's ``width_multiplier``) and optionally ``learning_rate``
    (defaults to the model's :data:`~repro.models.zoo.MODEL_LEARNING_RATES`
    entry).
    """
    recipe = registry.metadata("datasets", dataset)
    if "model" not in recipe:
        raise ValueError(
            f"dataset {dataset!r} has no experiment recipe; "
            f"preparable datasets: {preparable_datasets()}"
        )
    return recipe


def prepare_experiment(
    dataset: str = "mnist",
    train_size: int = 400,
    test_size: int = 120,
    width_multiplier: float = 0.125,
    training: Optional[TrainingConfig] = None,
    epochs: Optional[int] = None,
    rng: RngLike = None,
) -> PreparedExperiment:
    """Train a Table-I style model on one of the synthetic datasets.

    ``dataset`` is ``"mnist"`` (Tanh CNN on synthetic digits) or ``"cifar"``
    (ReLU CNN on synthetic colour objects), mirroring the paper's two setups.
    Resolution goes through the ``datasets``/``models`` namespaces of
    :mod:`repro.registry`: the dataset entry's loader yields the train/test
    pair and its metadata is the *experiment recipe* (see
    :func:`dataset_recipe`), so registered third-party datasets with a
    recipe are trainable by name.

    ``epochs`` overrides just the recipe's training length; passing a full
    ``training`` config supersedes the recipe entirely (and is mutually
    exclusive with ``epochs``).
    """
    gen = as_generator(rng)
    entry = registry.entry("datasets", dataset)
    recipe = dataset_recipe(dataset)
    if training is not None and epochs is not None:
        raise ValueError("pass either training= or epochs=, not both")
    model_name = str(recipe["model"])
    train, test = entry.factory(train_size, test_size, rng=gen)  # type: ignore[misc]
    model = registry.create(
        "models",
        model_name,
        width_multiplier=width_multiplier * float(recipe.get("width_scale", 1.0)),
        rng=gen,
    )
    learning_rate = float(
        recipe.get("learning_rate", MODEL_LEARNING_RATES.get(model_name, 1e-3))
    )
    default_training = TrainingConfig(
        epochs=int(epochs if epochs is not None else recipe.get("epochs", 8)),
        batch_size=32,
        learning_rate=learning_rate,
    )

    config = training or default_training
    history = Trainer(config).fit(model, train, test)
    logger.info(
        "%s model trained: accuracy %.3f with %d parameters",
        dataset,
        history.final_test_accuracy,
        model.num_parameters(),
    )
    return PreparedExperiment(
        model=model, train=train, test=test, history=history, dataset_name=dataset
    )


def build_method_packages(
    prepared: PreparedExperiment,
    num_tests: int,
    candidate_pool: Optional[int] = 150,
    rng: RngLike = None,
    gradient_kwargs: Optional[Dict[str, object]] = None,
) -> Dict[str, ValidationPackage]:
    """Packages for the two methods compared in Tables II/III.

    ``"neuron-coverage"`` — tests greedily selected for neuron coverage (the
    hardware-testing baseline); ``"parameter-coverage"`` — the paper's
    combined method.
    """
    gen = as_generator(rng)
    vendor = IPVendor(prepared.model, prepared.train)
    gkwargs = dict(gradient_kwargs or {})

    combined = CombinedGenerator(
        prepared.model,
        prepared.train,
        candidate_pool=candidate_pool,
        rng=gen,
        **gkwargs,  # type: ignore[arg-type]
    )
    neuron = NeuronCoverageSelector(
        prepared.model, prepared.train, candidate_pool=candidate_pool, rng=gen
    )

    packages = {
        "parameter-coverage": vendor.build_package(combined.generate(num_tests)),
        "neuron-coverage": vendor.build_package(neuron.generate(num_tests)),
    }
    for name, pkg in packages.items():
        logger.info(
            "%s package: %d tests, parameter coverage %.3f",
            name,
            pkg.num_tests,
            float(pkg.metadata.get("validation_coverage", float("nan"))),
        )
    return packages


@dataclass
class SweepResult:
    """Outcome of a one-dimensional ablation sweep."""

    parameter: str
    values: List[object] = field(default_factory=list)
    coverages: List[float] = field(default_factory=list)

    def as_rows(self) -> List[Dict[str, object]]:
        return [
            {self.parameter: v, "coverage": c}
            for v, c in zip(self.values, self.coverages)
        ]


def epsilon_sweep(
    model: Sequential,
    tests: np.ndarray,
    epsilons: Sequence[float] = (0.0, 1e-8, 1e-6, 1e-4, 1e-2),
    scalarization: str = "sum",
    engine: Optional[Engine] = None,
) -> SweepResult:
    """Ablation A2: how the activation threshold ε changes measured coverage.

    Larger ε counts fewer gradients as "activated", so coverage is
    monotonically non-increasing in ε; the sweep quantifies how sensitive the
    metric is for saturating-activation networks.

    The per-sample gradient matrix is computed once (batched); each ε is
    then a pure thresholding pass over it.
    """
    tests = np.asarray(tests)
    if tests.shape[0] == 0:  # an empty test set covers nothing at any ε
        return SweepResult(
            parameter="epsilon", values=list(epsilons), coverages=[0.0] * len(epsilons)
        )
    # single-query fallback engine: memoization would never be hit again
    eng = engine or Engine(model, cache=False)
    grads = eng.output_gradients(tests, scalarization)
    result = SweepResult(parameter="epsilon")
    for eps in epsilons:
        criterion = ActivationCriterion(epsilon=eps, scalarization=scalarization)
        coverage = float(criterion.activated(grads).any(axis=0).mean())
        result.values.append(eps)
        result.coverages.append(coverage)
    return result


def scalarization_sweep(
    model: Sequential,
    tests: np.ndarray,
    scalarizations: Sequence[str] = ("sum", "max", "predicted"),
    epsilon: Optional[float] = None,
    engine: Optional[Engine] = None,
) -> SweepResult:
    """Ablation A3: effect of how F(x) is scalarised before taking ∇θ.

    One batched backward pass per distinct scalarization — ``max`` and
    ``predicted`` seed the backward identically, so the engine serves them
    from one memoized gradient matrix.
    """
    eng = engine or Engine(model)
    result = SweepResult(parameter="scalarization")
    base = default_criterion_for(model)
    eps = base.epsilon if epsilon is None else epsilon
    for name in scalarizations:
        criterion = ActivationCriterion(epsilon=eps, scalarization=name)
        coverage = eng.set_validation_coverage(tests, criterion)
        result.values.append(name)
        result.coverages.append(coverage)
    return result


__all__ = [
    "PreparedExperiment",
    "dataset_recipe",
    "preparable_datasets",
    "prepare_experiment",
    "build_method_packages",
    "SweepResult",
    "epsilon_sweep",
    "scalarization_sweep",
]
