"""``repro.api`` — the unified façade for the paper's workflow.

One stable, typed entry surface over the five subsystems that implement
Fig. 1: a :class:`Session` owns execution configuration
(:class:`RunConfig`) and managed, memoizing engines, and exposes the three
paper-level operations as typed request → result calls:

=====================  =======================  ============================
operation              request                  result
=====================  =======================  ============================
:meth:`Session.release`   :class:`ReleaseRequest`   :class:`ReleasePackage`
:meth:`Session.validate`  :class:`ValidateRequest`  :class:`ValidationOutcome`
:meth:`Session.sweep`     :class:`SweepRequest`     :class:`~repro.campaign.CampaignSummary`
=====================  =======================  ============================

Requests and the run config are resolvable from plain dicts and TOML/JSON
files (the :class:`~repro.campaign.CampaignSpec` convention), and every
pluggable component resolves through :mod:`repro.registry`.  Module-level
:func:`release` / :func:`validate` / :func:`sweep` wrap a throwaway session
for one-shot use; the same operations are scriptable via ``python -m repro``.
"""

from repro.api.config import RunConfig
from repro.api.requests import (
    ReleasePackage,
    ReleaseRequest,
    SweepRequest,
    ValidateRequest,
    ValidationOutcome,
)
from repro.api.session import BlackBox, Session, release, sweep, validate
from repro.api.surface import api_surface
from repro.api.wire import WIRE_SCHEMA_VERSION, WireSerde, open_envelope

__all__ = [
    "BlackBox",
    "ReleasePackage",
    "ReleaseRequest",
    "RunConfig",
    "Session",
    "SweepRequest",
    "ValidateRequest",
    "ValidationOutcome",
    "WIRE_SCHEMA_VERSION",
    "WireSerde",
    "api_surface",
    "open_envelope",
    "release",
    "sweep",
    "validate",
]
