"""Session-level run configuration, plus the shared dataclass (de)serialiser.

A :class:`RunConfig` gathers every knob that describes *how* work executes —
backend, compute dtype, parallelism, chunking, cache and memory budgets, rng
seeding — as opposed to the request objects (:mod:`repro.api.requests`),
which describe *what* to compute.  One config serves a whole
:class:`~repro.api.session.Session`; every engine the session builds
inherits it.

Like :class:`~repro.campaign.CampaignSpec`, a config is resolvable from a
plain dict or a TOML/JSON file (optionally nested under a ``[run]``
table)::

    config = RunConfig(backend="parallel", workers=4, dtype="float32")
    config = RunConfig.from_dict({"backend": "numpy", "batch_size": 128})
    config = RunConfig.load("run.toml")

The dict/file plumbing lives in :class:`TableSerde` (over
:func:`repro.utils.config.load_table_data`, which the campaign spec loader
shares), so the config, every request dataclass and :class:`CampaignSpec`
all load identically.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace
from pathlib import Path
from typing import Dict, Optional, Union

from repro.utils.config import load_table_data

PathLike = Union[str, Path]


class TableSerde:
    """from_dict / to_dict / load / with_overrides / coerce for the façade
    dataclasses.

    Subclasses set ``_TABLE`` to their TOML table name and define
    ``validate()``; every façade object then resolves from an instance, a
    plain dict, keyword arguments, or a ``.toml``/``.json`` file the same
    way.
    """

    _TABLE = "config"

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)  # type: ignore[call-overload]

    @classmethod
    def from_dict(cls, data: Dict[str, object]):
        known = {f.name for f in fields(cls)}  # type: ignore[arg-type]
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown {cls.__name__} fields {sorted(unknown)}; "
                f"known fields: {sorted(known)}"
            )
        return cls(**data)  # type: ignore[arg-type]

    @classmethod
    def load(cls, path: PathLike):
        """Load from a ``.toml`` or ``.json`` file (optional [_TABLE] table)."""
        instance = cls.from_dict(load_table_data(path, cls._TABLE, kind=cls._TABLE))
        instance.validate()  # type: ignore[attr-defined]
        return instance

    def with_overrides(self, **overrides: object):
        """A copy with some fields replaced."""
        return replace(self, **overrides)  # type: ignore[type-var]

    @classmethod
    def coerce(cls, value, **overrides: object):
        """Resolve from an instance, a dict, a wire envelope, or keyword
        arguments — validated.

        A dict carrying ``schema_version`` is treated as a wire envelope
        (see :mod:`repro.api.wire`) when the class mixes in
        :class:`~repro.api.wire.WireSerde`; the HTTP layer and the
        in-process path therefore share one deserialization contract.
        """
        if value is None:
            instance = cls(**overrides)  # type: ignore[arg-type]
        elif isinstance(value, cls):
            instance = value.with_overrides(**overrides) if overrides else value
        elif isinstance(value, dict):
            if "schema_version" in value and hasattr(cls, "from_wire"):
                instance = cls.from_wire(value)  # type: ignore[attr-defined]
                if overrides:
                    instance = instance.with_overrides(**overrides)
                instance.validate()  # type: ignore[attr-defined]
                return instance
            merged = dict(value)
            merged.update(overrides)
            instance = cls.from_dict(merged)
        else:
            raise TypeError(
                f"cannot build a {cls.__name__} from {type(value).__name__}"
            )
        instance.validate()  # type: ignore[attr-defined]
        return instance


@dataclass(frozen=True)
class RunConfig(TableSerde):
    """How a :class:`~repro.api.session.Session` executes its requests.

    Attributes
    ----------
    backend:
        Engine backend name (``"numpy"``, ``"parallel"`` or
        ``"model_axis"``; any registered ``backends`` entry of
        :mod:`repro.registry` resolves).
    workers:
        Worker count when ``backend="parallel"`` (``None`` = auto).
    shards:
        Default worker-process shard count for campaign sweeps (``None`` =
        follow the spec; above 1 routes :meth:`Session.sweep` through the
        distributed runner, one ``<store>.shard<k>.jsonl`` per shard).
    model_axis_size:
        Perturbed copies fused per dispatch when ``backend="model_axis"``
        (``None`` = the backend's default capacity).
    dtype:
        Compute-dtype policy for every engine (``None``/``"float64"``
        default, ``"float32"`` for halved memory traffic at documented
        tolerances — see :mod:`repro.nn.dtypes`).
    batch_size:
        Engine chunk size for large pools.
    memory_budget_bytes:
        Optional cap on the transient dense buffers of streaming packed-mask
        queries (the engine-level default of
        :attr:`repro.engine.Engine.memory_budget_bytes`).  With
        ``spill_dir`` set it also caps the in-RAM window of memory-mapped
        mask iteration.
    spill_dir:
        Optional directory where packed-mask matrices are spilled to disk as
        memory-mapped stores (:class:`repro.coverage.MmapMaskMatrix`)
        instead of being materialised in RAM; greedy selection then
        iterates mmap windows under ``memory_budget_bytes``.
    engine_cache_size:
        LRU capacity of the session's per-parameter-digest engine pool.
    prepared_cache_size:
        LRU capacity of the session's trained-experiment cache.
    seed:
        Base seed mixed into every request-level seed derivation.
    discover_plugins:
        Run :func:`repro.registry.discover_entry_points` when the session is
        created, loading third-party registrations from installed packages.
    faults:
        Optional fault-tolerance policy as a plain table of
        :class:`repro.faults.FaultPolicy` fields (e.g. ``{"max_retries": 3,
        "dispatch_timeout_s": 30.0}``); ``None`` disables retries entirely
        (failures propagate on first occurrence).  Resolved via
        :meth:`fault_policy`.
    """

    _TABLE = "run"

    backend: str = "numpy"
    workers: Optional[int] = None
    shards: Optional[int] = None
    model_axis_size: Optional[int] = None
    dtype: Optional[str] = None
    batch_size: int = 64
    memory_budget_bytes: Optional[int] = None
    spill_dir: Optional[str] = None
    engine_cache_size: int = 8
    prepared_cache_size: int = 4
    seed: int = 0
    discover_plugins: bool = False
    faults: Optional[Dict[str, object]] = None

    def fault_policy(self):
        """The resolved :class:`repro.faults.FaultPolicy`, or ``None``."""
        if self.faults is None:
            return None
        # imported lazily: repro.faults is dependency-free, but keeping the
        # config module import-light preserves the façade's startup cost
        from repro.faults import FaultPolicy

        return FaultPolicy.from_dict(dict(self.faults))

    def validate(self) -> None:
        if self.faults is not None:
            self.fault_policy()  # raises on unknown fields / bad values
        if self.workers is not None and self.backend != "parallel":
            raise ValueError(
                "workers is only meaningful with backend='parallel'"
            )
        if self.workers is not None and self.workers <= 0:
            raise ValueError("workers must be positive when given")
        if self.shards is not None and self.shards < 1:
            raise ValueError("shards must be at least 1 when given")
        if self.model_axis_size is not None and self.backend != "model_axis":
            raise ValueError(
                "model_axis_size is only meaningful with backend='model_axis'"
            )
        if self.model_axis_size is not None and self.model_axis_size <= 0:
            raise ValueError("model_axis_size must be positive when given")
        if self.dtype is not None and self.dtype not in ("float64", "float32"):
            raise ValueError(
                f"unknown dtype {self.dtype!r}; choose 'float64' or 'float32'"
            )
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.memory_budget_bytes is not None and self.memory_budget_bytes <= 0:
            raise ValueError("memory_budget_bytes must be positive when given")
        if self.engine_cache_size <= 0:
            raise ValueError("engine_cache_size must be positive")
        if self.prepared_cache_size <= 0:
            raise ValueError("prepared_cache_size must be positive")


__all__ = ["RunConfig", "TableSerde", "load_table_data"]
