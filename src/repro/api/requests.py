"""Typed request and result objects for the three paper-level operations.

The façade models the paper's Fig. 1 workflow as three operations, each with
one request dataclass in and one result object out:

* :class:`ReleaseRequest` → :class:`ReleasePackage` — the *vendor* side:
  train (or reuse) a model, generate functional tests, package them;
* :class:`ValidateRequest` → :class:`ValidationOutcome` — the *user* side:
  replay a package against a black-box IP;
* :class:`SweepRequest` → :class:`~repro.campaign.CampaignSummary` — the
  evaluation sweep, delegated to the campaign runner.

Every request is resolvable from a plain dict or a TOML/JSON file (the same
convention as :class:`~repro.campaign.CampaignSpec`), so CLI drivers and
service layers construct them without touching constructor signatures.
Every request also carries a **versioned wire schema**
(:meth:`~repro.api.wire.WireSerde.to_wire` /
:meth:`~repro.api.wire.WireSerde.from_wire`, explicit ``schema_version``):
the :mod:`repro.serve` HTTP endpoint and the in-process
:meth:`~repro.api.Session.validate` path deserialize the exact same
envelope.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.api.config import TableSerde
from repro.api.wire import WireSerde, envelope, open_envelope
from repro.nn.model import Sequential
from repro.testgen.base import GenerationResult
from repro.validation.package import DEFAULT_OUTPUT_ATOL, ValidationPackage
from repro.validation.user import ValidationReport

PathLike = Union[str, Path]


# ---------------------------------------------------------------------------
# release
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReleaseRequest(WireSerde, TableSerde):
    """Vendor-side request: train a model and release a validation package.

    The preparation fields (``dataset`` … ``width_multiplier``) resolve
    through the ``datasets``/``models`` registry namespaces exactly like the
    campaign runner's per-model step; the generation fields (``strategy``,
    ``criterion``, ``num_tests``, …) mirror one campaign scenario.  Two
    requests differing only in generation fields share the session's cached
    trained model.
    """

    _TABLE = "release"

    # -- preparation --------------------------------------------------------
    dataset: str = "mnist"
    train_size: int = 300
    test_size: int = 80
    #: ``None`` uses the dataset recipe's default epoch count
    epochs: Optional[int] = None
    width_multiplier: float = 0.125
    # -- generation ---------------------------------------------------------
    strategy: str = "combined"
    criterion: str = "default"
    num_tests: int = 20
    candidate_pool: Optional[int] = 100
    gradient_updates: int = 30
    # -- packaging ----------------------------------------------------------
    output_atol: float = DEFAULT_OUTPUT_ATOL
    include_coverage_masks: bool = True
    #: measure per-test discrimination scores against the surrogate attack
    #: suite and ship them as the package's v3 field (drives the sequential
    #: verifier's query order; costs ``discrimination_trials`` perturbed
    #: forward passes per attack family at release time)
    measure_discrimination: bool = False
    discrimination_trials: int = 8
    seed: int = 0

    def validate(self) -> None:
        from repro.registry import registry

        registry.entry("strategies", self.strategy)  # raises on unknown
        if self.train_size <= 0 or self.test_size <= 0:
            raise ValueError("train_size and test_size must be positive")
        if self.epochs is not None and self.epochs <= 0:
            raise ValueError("epochs must be positive when given")
        if self.width_multiplier <= 0:
            raise ValueError("width_multiplier must be positive")
        if self.num_tests <= 0:
            raise ValueError("num_tests must be positive")
        if self.candidate_pool is not None and self.candidate_pool <= 0:
            raise ValueError("candidate_pool must be positive when given")
        if self.gradient_updates <= 0:
            raise ValueError("gradient_updates must be positive")
        if self.output_atol < 0:
            raise ValueError("output_atol must be non-negative")
        if self.discrimination_trials <= 0:
            raise ValueError("discrimination_trials must be positive")


@dataclass
class ReleasePackage:
    """Result of :meth:`repro.api.Session.release`: the shippable artefacts.

    Wraps the :class:`~repro.validation.ValidationPackage` together with the
    trained model it validates and the generation provenance.
    """

    request: ReleaseRequest
    package: ValidationPackage
    model: Sequential
    generation: GenerationResult
    test_accuracy: float

    @property
    def num_tests(self) -> int:
        return self.package.num_tests

    @property
    def coverage(self) -> float:
        """Validation coverage of the released tests (union fraction)."""
        return float(
            self.package.metadata.get("validation_coverage", float("nan"))
        )

    def save(self, directory: PathLike) -> Dict[str, Path]:
        """Write ``model.npz`` and ``package.npz`` into ``directory``.

        Returns the written paths keyed by artefact name — exactly the two
        files of the paper's release channel (Fig. 1).
        """
        from repro.nn.serialization import save_model

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        return {
            "model": save_model(self.model, directory / "model.npz"),
            "package": self.package.save(directory / "package.npz"),
        }

    def describe(self) -> str:
        return (
            f"release[{self.request.dataset}/{self.request.strategy}]: "
            f"{self.num_tests} tests, coverage {self.coverage:.3f}, "
            f"model accuracy {self.test_accuracy:.3f}"
        )


# ---------------------------------------------------------------------------
# validate
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ValidateRequest(WireSerde, TableSerde):
    """User-side request: replay a validation package against a black-box IP.

    ``package`` may be an in-memory :class:`ValidationPackage` or a path to
    one on disk.  The IP under test is either passed directly to
    :meth:`repro.api.Session.validate` (a model or any callable) or loaded
    from ``model_path`` by rebuilding the named ``arch`` from the ``models``
    registry namespace and loading the shipped parameters into it.
    """

    _TABLE = "validate"

    package: Union[str, ValidationPackage] = ""
    model_path: Optional[str] = None
    #: architecture name used to rebuild the received IP: same value as the
    #: release request's ``dataset`` (dataset recipes apply their
    #: ``width_scale``), or a raw registry model name
    arch: str = "mnist"
    #: same value as the release request's ``width_multiplier``
    width_multiplier: float = 0.125
    #: ``None`` reads the input size from the model file's metadata
    input_size: Optional[int] = None
    #: verify the saved parameter digest while loading (off by default: the
    #: paper's user cannot rely on digests — that is the point of the tests)
    verify_digest: bool = False
    #: ``"full"`` replays every test (the paper's rule); ``"sequential"``
    #: replays in discriminative-power order with SPRT early stopping
    mode: str = "full"
    #: sequential mode: hard cap on queries before an undecided verdict
    query_budget: Optional[int] = None
    #: sequential mode: target decision confidence (alpha = beta = 1 - this)
    confidence: float = 0.99
    #: verify a *remote* IP: base URL of a live ``python -m repro serve``
    #: process; ``model_path`` is then resolved server-side
    remote_url: Optional[str] = None
    #: registry ``transports`` name when a remote target needs a transport
    #: other than the default (``http`` for ``remote_url``)
    transport: Optional[str] = None
    #: inputs per remote round trip (RemoteModel micro-batching)
    micro_batch: Optional[int] = None

    def validate(self) -> None:
        if isinstance(self.package, str) and not self.package:
            raise ValueError("package is required (a path or a ValidationPackage)")
        if self.width_multiplier <= 0:
            raise ValueError("width_multiplier must be positive")
        if self.input_size is not None and self.input_size <= 0:
            raise ValueError("input_size must be positive when given")
        if self.mode not in ("full", "sequential"):
            raise ValueError(f"mode must be 'full' or 'sequential', got {self.mode!r}")
        if self.query_budget is not None and self.query_budget <= 0:
            raise ValueError("query_budget must be positive when given")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {self.confidence}")
        if self.micro_batch is not None and self.micro_batch <= 0:
            raise ValueError("micro_batch must be positive when given")
        if self.transport is not None:
            from repro.registry import registry

            registry.entry("transports", self.transport)  # raises on unknown
        if self.remote_url is not None and self.model_path is None:
            raise ValueError(
                "remote validation needs model_path (the server-side model "
                "file under the serve process's --artifacts-root)"
            )

    def to_dict(self) -> Dict[str, object]:
        if not isinstance(self.package, str):
            raise ValueError(
                "a ValidateRequest holding an in-memory package is not "
                "serialisable; pass a package path instead"
            )
        return super().to_dict()

    def resolve_package(self) -> ValidationPackage:
        if isinstance(self.package, ValidationPackage):
            return self.package
        return ValidationPackage.load(self.package)


@dataclass(frozen=True)
class ValidationOutcome:
    """Result of :meth:`repro.api.Session.validate`.

    A flattened, serialisable view of the user-side
    :class:`~repro.validation.ValidationReport` plus the package metadata
    that produced it.
    """

    passed: bool
    detected: bool
    num_tests: int
    num_mismatched: int
    mismatched_indices: List[int]
    max_output_deviation: float
    label_mismatches: int
    package_metadata: Dict[str, object] = field(default_factory=dict)
    #: which replay rule produced this outcome (``"full"`` or ``"sequential"``)
    mode: str = "full"
    #: sequential mode only: the :class:`~repro.validation.SequentialReport`
    #: dict (verdict, queries-to-decision, thresholds, query ledger)
    sequential: Optional[Dict[str, object]] = None
    #: remote targets only: the transport's :class:`~repro.online.QueryLedger`
    #: stats (queries sent, cache hits, retries, wall time)
    ledger: Optional[Dict[str, object]] = None

    @classmethod
    def from_report(
        cls, report: ValidationReport, package: ValidationPackage
    ) -> "ValidationOutcome":
        return cls(
            passed=report.passed,
            detected=report.detected,
            num_tests=report.num_tests,
            num_mismatched=report.num_mismatched,
            mismatched_indices=list(report.mismatched_indices),
            max_output_deviation=float(report.max_output_deviation),
            label_mismatches=report.label_mismatches,
            package_metadata=dict(package.metadata),
        )

    @classmethod
    def from_sequential_report(
        cls, report: "object", package: ValidationPackage
    ) -> "ValidationOutcome":
        """Flatten a :class:`~repro.validation.SequentialReport`.

        ``num_tests`` stays the package's full fingerprint count (the
        denominator of ``queries_used``); per-test mismatch bookkeeping
        covers only the probed prefix, which is the point of the mode.
        """
        return cls(
            passed=not report.detected,
            detected=report.detected,
            num_tests=report.num_tests,
            num_mismatched=len(report.mismatched_indices),
            mismatched_indices=list(report.mismatched_indices),
            max_output_deviation=float(report.max_output_deviation),
            label_mismatches=0,
            package_metadata=dict(package.metadata),
            mode="sequential",
            sequential=report.to_dict(),
        )

    def summary(self) -> str:
        verdict = "SECURE" if self.passed else "TAMPERED"
        if self.mode == "sequential" and self.sequential is not None:
            return (
                f"{verdict}: sequential verdict after "
                f"{self.sequential['queries_used']}/{self.num_tests} queries "
                f"(confidence {self.sequential['confidence']:g}, "
                f"order={self.sequential['order']}), "
                f"{self.num_mismatched} mismatches, max output deviation "
                f"{self.max_output_deviation:.3e}"
            )
        return (
            f"{verdict}: {self.num_mismatched}/{self.num_tests} tests mismatched, "
            f"max output deviation {self.max_output_deviation:.3e}, "
            f"{self.label_mismatches} predicted labels changed"
        )

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    def to_wire(self) -> Dict[str, object]:
        """This outcome as a versioned wire envelope (the HTTP response body)."""
        return envelope("outcome", self.to_dict())

    @classmethod
    def from_wire(cls, data: Dict[str, object]) -> "ValidationOutcome":
        """Rebuild an outcome from its wire envelope (the client side)."""
        _version, _kind, body = open_envelope(data, expected_kind="outcome")
        return cls(**body)  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# sweep
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepRequest(WireSerde, TableSerde):
    """Campaign-sweep request: delegate a spec to the resumable runner.

    ``spec`` may be a :class:`~repro.campaign.CampaignSpec`, a plain dict of
    spec fields, or a path to a ``.toml``/``.json`` spec file.  The session's
    shared backend executes the campaign unless ``backend`` overrides it.
    """

    _TABLE = "sweep"

    spec: "object" = None  # CampaignSpec | dict | path
    store: str = "campaign-results.jsonl"
    #: ``None`` runs on the session's configured backend instance
    backend: Optional[str] = None
    workers: Optional[int] = None
    #: worker-process shards of the distributed campaign runner (``None``
    #: follows the session config, then the spec; above 1 each shard
    #: appends to its own ``<store>.shard<k>.jsonl``)
    shards: Optional[int] = None
    #: also render the markdown report here after the run
    report: Optional[str] = None

    def validate(self) -> None:
        if self.spec is None:
            raise ValueError("spec is required (a CampaignSpec, dict or path)")
        if not self.store:
            raise ValueError("store is required")
        if self.workers is not None and self.backend != "parallel":
            raise ValueError("workers is only meaningful with backend='parallel'")
        if self.shards is not None and self.shards < 1:
            raise ValueError("shards must be at least 1 when given")

    def resolve_spec(self):
        from repro.campaign.spec import CampaignSpec

        if isinstance(self.spec, CampaignSpec):
            self.spec.validate()
            return self.spec
        if isinstance(self.spec, dict):
            spec = CampaignSpec.from_dict(self.spec)
            spec.validate()
            return spec
        if isinstance(self.spec, (str, Path)):
            return CampaignSpec.load(self.spec)
        raise TypeError(
            f"cannot resolve a CampaignSpec from {type(self.spec).__name__}"
        )

    def to_dict(self) -> Dict[str, object]:
        from repro.campaign.spec import CampaignSpec

        data = super().to_dict()
        if isinstance(self.spec, CampaignSpec):
            data["spec"] = self.spec.to_dict()
        elif isinstance(self.spec, Path):
            data["spec"] = str(self.spec)
        return data


__all__ = [
    "ReleasePackage",
    "ReleaseRequest",
    "SweepRequest",
    "ValidateRequest",
    "ValidationOutcome",
]
