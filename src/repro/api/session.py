"""The :class:`Session` façade: managed engines + the three paper operations.

A session owns one :class:`~repro.api.config.RunConfig` and everything the
config governs: a shared execution backend, an LRU pool of memoizing
:class:`~repro.engine.Engine` instances keyed by model parameter digest, and
an LRU cache of trained experiments.  The paper-level operations —
:meth:`release`, :meth:`validate` and :meth:`sweep` — accept the typed
request objects of :mod:`repro.api.requests` (or plain dicts / keyword
arguments) and route all compute through the managed engines, so callers
never hand-wire Engine/backend/dtype plumbing per call site::

    from repro.api import ReleaseRequest, Session, ValidateRequest

    with Session(backend="numpy") as session:
        released = session.release(ReleaseRequest(dataset="mnist", num_tests=12))
        outcome = session.validate(
            ValidateRequest(package=released.package), ip=released.model
        )
        assert outcome.passed

Seeding: every stochastic step derives its seed from the request seed, the
session seed and the step's coordinates through SHA-256 (the campaign
convention, :func:`repro.campaign.spec.derive_scenario_seed`), so a request
re-run in a fresh session reproduces its artefacts exactly.
"""

from __future__ import annotations

import threading
import warnings
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from repro.api.config import RunConfig
from repro.api.requests import (
    ReleasePackage,
    ReleaseRequest,
    SweepRequest,
    ValidateRequest,
    ValidationOutcome,
)
from repro.engine import Engine, ExecutionBackend, ParallelBackend, get_backend
from repro.nn.model import Sequential
from repro.nn.serialization import parameter_digest
from repro.utils.logging import get_logger

logger = get_logger("api.session")

#: black-box IP shapes accepted by validate(): a model or a batch callable
BlackBox = Union[Sequential, Callable[[np.ndarray], np.ndarray]]


class Session:
    """Configured entry point for the vendor/user/sweep workflow.

    Parameters
    ----------
    config:
        A :class:`RunConfig`, a plain dict of its fields, or ``None`` for
        defaults; keyword arguments override individual fields either way
        (``Session(backend="parallel", workers=2)``).

    Engines built by the session share its backend, dtype policy, batch size
    and memory budget; they are memoizing and pooled per parameter digest,
    so repeated requests against the same trained model reuse cached
    gradient/mask matrices.  Sessions are context managers — leaving the
    ``with`` block releases the backend's worker pools.

    **Concurrency contract.**  A session's *bookkeeping* is thread-safe: the
    lazy backend build, the engine pool, the prepared-experiment cache and
    :meth:`close` all run under one re-entrant lock, so concurrent callers
    (the :mod:`repro.serve` worker tier) can share a session without
    corrupting its LRUs.  The *compute* they hand back is not serialised
    here — engines memoize through the thread-safe
    :class:`~repro.engine.cache.BatchResultCache`, but the numerical kernels
    reuse per-engine workspace buffers, so callers that need bit-stable
    results under concurrency must serialise dispatches *per engine* (the
    serving layer does exactly that around its coalesced dispatches).
    """

    def __init__(
        self,
        config: Union[RunConfig, Dict[str, object], None] = None,
        **overrides: object,
    ) -> None:
        self.config = RunConfig.coerce(config, **overrides)
        config = self.config
        if config.discover_plugins:
            from repro.registry import discover_entry_points

            discover_entry_points()
        self._backend: Optional[ExecutionBackend] = None
        self._engines: "OrderedDict[Tuple[str, object], Engine]" = OrderedDict()
        self._prepared: "OrderedDict[Tuple[object, ...], object]" = OrderedDict()
        # resolved once: every engine/backend the session builds shares it
        self._fault_policy = self.config.fault_policy()
        self._closed = False
        # guards the lazy backend build and both LRUs (see the class
        # docstring's concurrency contract); re-entrant because release()
        # calls prepare() and engine_for() while conceptually one operation
        self._lock = threading.RLock()

    # -- lifecycle -----------------------------------------------------------
    @property
    def backend(self) -> ExecutionBackend:
        """The session's shared backend, built lazily on first use."""
        with self._lock:
            if self._closed:
                raise RuntimeError("session is closed")
            if self._backend is None:
                cfg = self.config
                if cfg.backend == "parallel" and (
                    cfg.workers is not None or self._fault_policy is not None
                ):
                    kwargs: Dict[str, object] = {}
                    if cfg.workers is not None:
                        kwargs["workers"] = cfg.workers
                    if self._fault_policy is not None:
                        kwargs["fault_policy"] = self._fault_policy
                    self._backend = ParallelBackend(**kwargs)
                elif cfg.backend == "model_axis" and cfg.model_axis_size is not None:
                    from repro.engine import ModelAxisBackend

                    self._backend = ModelAxisBackend(max_models=cfg.model_axis_size)
                else:
                    self._backend = get_backend(cfg.backend)
            return self._backend

    def close(self) -> None:
        """Release the backend's worker pools and drop cached engines.

        The session always owns its backend (it is built from the config in
        :attr:`backend`), so closing it here cannot strand another owner.
        Closing is idempotent and safe to call concurrently with other
        session methods: late callers observe the closed flag and raise.
        """
        with self._lock:
            if self._backend is not None:
                self._backend.close()
            self._backend = None
            self._engines.clear()
            self._prepared.clear()
            self._closed = True

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- managed engines -----------------------------------------------------
    def engine_for(
        self, model: Sequential, criterion: Optional[object] = None
    ) -> Engine:
        """A memoizing engine for ``model`` under the session's config.

        Engines are pooled in an LRU keyed by the model's *parameter digest*
        (plus the criterion): re-requesting an engine for the same trained
        parameters returns the same instance — with its memo cache warm —
        while perturbed copies (different digest) get their own.  At most
        ``config.engine_cache_size`` engines are retained.
        """
        criterion_key = (
            (type(criterion).__name__, repr(criterion)) if criterion is not None else None
        )
        key = (parameter_digest(model), criterion_key)
        with self._lock:
            if self._closed:
                raise RuntimeError("session is closed")
            engine = self._engines.get(key)
            if engine is not None and engine.model is model:
                self._engines.move_to_end(key)
                return engine
            cfg = self.config
            engine = Engine(
                model,
                criterion=criterion,
                backend=self.backend,
                dtype=cfg.dtype,
                batch_size=cfg.batch_size,
                memory_budget_bytes=cfg.memory_budget_bytes,
                spill_dir=cfg.spill_dir,
                fault_policy=self._fault_policy,
            )
            self._engines[key] = engine
            self._engines.move_to_end(key)
            while len(self._engines) > cfg.engine_cache_size:
                self._engines.popitem(last=False)
            return engine

    def engine_stats(self):
        """Merged :class:`~repro.engine.cache.CacheStats` across the pooled
        engines — the serving layer's ``/stats`` fault/cache counters."""
        from repro.engine.cache import CacheStats

        with self._lock:
            engines = list(self._engines.values())
        merged = CacheStats()
        for engine in engines:
            merged = merged.merge(engine.stats)
        return merged

    def fault_events(self):
        """Fault-tolerance events recorded by every pooled engine, merged."""
        with self._lock:
            engines = list(self._engines.values())
        events = []
        for engine in engines:
            events.extend(engine.fault_events)
        return events

    # -- preparation ---------------------------------------------------------
    def prepare(
        self,
        dataset: str = "mnist",
        train_size: int = 300,
        test_size: int = 80,
        epochs: Optional[int] = None,
        width_multiplier: float = 0.125,
        seed: int = 0,
    ):
        """Train (or fetch the cached) experiment model for ``dataset``.

        Resolution goes through the registry's dataset recipe, exactly like
        :func:`repro.analysis.prepare_experiment`; results are cached in an
        LRU keyed by every preparation-relevant argument plus the session
        seed, so two release requests differing only in generation knobs
        train once.  Returns a
        :class:`~repro.analysis.sweep.PreparedExperiment`.
        """
        from repro.analysis.sweep import prepare_experiment
        from repro.campaign.spec import derive_scenario_seed

        key = (dataset, train_size, test_size, epochs, width_multiplier, seed)
        # training runs under the lock: concurrent requests for the same
        # preparation must train once and share the result, and training is
        # rare enough (LRU-cached) that the serialisation is the point
        with self._lock:
            if self._closed:
                raise RuntimeError("session is closed")
            prepared = self._prepared.get(key)
            if prepared is not None:
                self._prepared.move_to_end(key)
                return prepared

            rng = derive_scenario_seed(self.config.seed, "prepare", dataset, seed)
            logger.info(
                "preparing %s (train=%d, test=%d)", dataset, train_size, test_size
            )
            prepared = prepare_experiment(
                dataset,
                train_size=train_size,
                test_size=test_size,
                width_multiplier=width_multiplier,
                epochs=epochs,
                rng=rng,
            )
            self._prepared[key] = prepared
            self._prepared.move_to_end(key)
            while len(self._prepared) > self.config.prepared_cache_size:
                self._prepared.popitem(last=False)
            return prepared

    # -- the three paper operations ------------------------------------------
    def release(
        self,
        request: Union[ReleaseRequest, Dict[str, object], None] = None,
        **overrides: object,
    ) -> ReleasePackage:
        """Vendor side of Fig. 1: train, generate tests, build the package."""
        req = ReleaseRequest.coerce(request, **overrides)
        from repro.campaign.spec import derive_scenario_seed
        from repro.coverage.activation import resolve_criterion
        from repro.registry import registry
        from repro.testgen.strategies import build_generator
        from repro.validation.vendor import IPVendor

        prepared = self.prepare(
            req.dataset,
            train_size=req.train_size,
            test_size=req.test_size,
            epochs=req.epochs,
            width_multiplier=req.width_multiplier,
            seed=req.seed,
        )
        criterion = resolve_criterion(req.criterion, prepared.model)
        engine = self.engine_for(prepared.model, criterion)

        # the strategy's registry-declared knobs, drawn from request fields
        # (the campaign-runner convention)
        kwargs: Dict[str, object] = {}
        for kwarg, request_field in registry.knobs("strategies", req.strategy).items():
            try:
                kwargs[kwarg] = getattr(req, str(request_field))
            except AttributeError as exc:
                raise ValueError(
                    f"strategy {req.strategy!r} declares knob {kwarg!r} from "
                    f"field {request_field!r}, which ReleaseRequest does not define"
                ) from exc

        generation_seed = derive_scenario_seed(
            self.config.seed, "release", req.dataset, req.criterion, req.strategy, req.seed
        )
        generator = build_generator(
            req.strategy,
            prepared.model,
            prepared.train,
            criterion=criterion,
            rng=generation_seed,
            engine=engine,
            **kwargs,
        )
        result = generator.generate(req.num_tests)
        vendor = IPVendor(prepared.model, prepared.train, criterion=criterion)
        discrimination_seed = derive_scenario_seed(
            self.config.seed, "discrimination", req.dataset, req.seed
        )
        package = vendor.build_package(
            result,
            output_atol=req.output_atol,
            include_coverage_masks=req.include_coverage_masks,
            engine=engine,
            measure_discrimination=req.measure_discrimination,
            discrimination_trials=req.discrimination_trials,
            discrimination_seed=discrimination_seed,
        )
        released = ReleasePackage(
            request=req,
            package=package,
            model=prepared.model,
            generation=result,
            test_accuracy=prepared.test_accuracy,
        )
        logger.info("%s", released.describe())
        return released

    def validate(
        self,
        request: Union[ValidateRequest, Dict[str, object], None] = None,
        ip: Optional[BlackBox] = None,
        **overrides: object,
    ) -> ValidationOutcome:
        """User side of Fig. 1: replay the package against a black-box IP.

        The IP is ``ip`` when given (a model or any batch callable); else it
        is loaded from the request's ``model_path`` by rebuilding ``arch``
        from the registry and loading the shipped parameters into it — or,
        when ``remote_url`` is set, queried over the wire through a
        :class:`~repro.online.RemoteModel` without ever loading it locally.

        ``mode="sequential"`` replaces full replay with the early-stopping
        verifier of :mod:`repro.online`: fingerprints go out in
        discriminative-power order and the SPRT walk stops at the request's
        ``confidence`` (or ``query_budget``), reporting queries-to-decision.
        """
        req = ValidateRequest.coerce(request, **overrides)
        from dataclasses import replace

        from repro.online import OnlineVerifier, RemoteModel
        from repro.validation.user import validate_ip

        package = req.resolve_package()
        if req.remote_url is not None or req.transport is not None:
            ip = self._build_remote(req, ip)
        if ip is None:
            if req.model_path is None:
                raise ValueError(
                    "no IP to validate: pass ip=... or set model_path on the request"
                )
            ip = self._load_black_box(req)
        if req.mode == "sequential":
            sequential_report = OnlineVerifier(
                ip,
                package,
                confidence=req.confidence,
                query_budget=req.query_budget,
            ).verify()
            outcome = ValidationOutcome.from_sequential_report(
                sequential_report, package
            )
        else:
            report = validate_ip(ip, package)
            outcome = ValidationOutcome.from_report(report, package)
        if isinstance(ip, RemoteModel):
            outcome = replace(outcome, ledger=ip.stats())
        logger.info("%s", outcome.summary())
        return outcome

    def _build_remote(
        self, req: ValidateRequest, ip: Optional[BlackBox]
    ) -> "object":
        """Wrap the request's remote target in a :class:`~repro.online.RemoteModel`.

        ``remote_url`` selects the ``http`` transport against a live serve
        process (``model_path`` is the *server-side* path under its
        ``--artifacts-root``); ``transport`` overrides the transport name,
        and the ``callable`` transport wraps the locally supplied ``ip``.
        """
        from repro.online import RemoteModel
        from repro.registry import registry

        name = req.transport or ("http" if req.remote_url is not None else "callable")
        kwargs: Dict[str, object] = {}
        if name == "callable":
            if ip is None:
                raise ValueError(
                    "transport='callable' wraps a locally supplied ip; pass ip=..."
                )
            target = ip if not isinstance(ip, Sequential) else ip.predict
            kwargs["fn"] = target
        else:
            if req.remote_url is None:
                raise ValueError(f"transport {name!r} needs remote_url on the request")
            kwargs.update(
                url=req.remote_url,
                model_path=req.model_path,
                arch=req.arch,
                width_multiplier=req.width_multiplier,
                input_size=req.input_size,
            )
        transport = registry.create("transports", name, **kwargs)
        remote_kwargs: Dict[str, object] = {}
        if self._fault_policy is not None:
            remote_kwargs["policy"] = self._fault_policy
        if req.micro_batch is not None:
            remote_kwargs["micro_batch"] = req.micro_batch
        return RemoteModel(transport, **remote_kwargs)

    def load_ip(
        self,
        request: Union[ValidateRequest, Dict[str, object], None] = None,
        **overrides: object,
    ) -> Sequential:
        """Load the black-box IP a validate request points at, without
        validating it — the serving layer resolves models once, replays the
        package through a managed engine, then scores with the shared
        comparison rule (:func:`repro.validation.report_from_outputs`)."""
        req = ValidateRequest.coerce(request, **overrides)
        if req.model_path is None:
            raise ValueError("load_ip requires model_path on the request")
        return self._load_black_box(req)

    def _load_black_box(self, req: ValidateRequest) -> Sequential:
        """Rebuild the received model file as a queryable black box.

        ``req.width_multiplier`` means the same thing it meant at release
        time: when ``arch`` also names a dataset with an experiment recipe,
        the recipe's ``width_scale`` is applied exactly as
        :func:`~repro.analysis.prepare_experiment` applied it (cifar trains
        at half the requested width), so a symmetric release/validate pair
        always rebuilds matching parameter shapes.
        """
        from repro.nn.serialization import load_metadata, load_model_into
        from repro.registry import registry

        path = Path(str(req.model_path))
        input_size = req.input_size
        if input_size is None:
            shape = load_metadata(path).get("input_shape") or ()
            if shape:
                input_size = int(shape[-1])
        try:
            recipe = registry.metadata("datasets", req.arch)
        except ValueError:
            recipe = {}
        width = req.width_multiplier
        model_name = req.arch
        if "model" in recipe:
            model_name = str(recipe["model"])
            width = width * float(recipe.get("width_scale", 1.0))
        build_kwargs: Dict[str, object] = {
            "width_multiplier": width,
            "rng": 0,
        }
        if input_size is not None:
            build_kwargs["input_size"] = input_size
        model = registry.create("models", model_name, **build_kwargs)
        load_model_into(model, path, verify_digest=req.verify_digest)
        return model  # type: ignore[return-value]

    def sweep(
        self,
        request: Union[SweepRequest, Dict[str, object], None] = None,
        **overrides: object,
    ):
        """Run (or resume) a campaign sweep; returns its
        :class:`~repro.campaign.CampaignSummary`.

        Delegates to :func:`repro.campaign.run_campaign` on the session's
        shared backend (or the request's override), so scenario results —
        digests, seeds, detection outcomes — are identical to the
        ``python -m repro campaign`` path.
        """
        req = SweepRequest.coerce(request, **overrides)
        from repro.campaign.runner import run_campaign
        from repro.campaign.store import ResultStore

        spec = req.resolve_spec()
        shards = (
            req.shards
            if req.shards is not None
            else (
                self.config.shards
                if self.config.shards is not None
                else spec.shards
            )
        )
        backend: Union[str, ExecutionBackend]
        workers = None
        if shards > 1:
            # shard workers build their own backends, so ship the *name*
            # (the request's override, else the session's configured one)
            backend = req.backend if req.backend is not None else self.config.backend
            summary = run_campaign(
                spec,
                req.store,
                backend=backend,
                progress=logger.info,
                fault_policy=self._fault_policy,
                spill_dir=self.config.spill_dir,
                shards=shards,
            )
            if req.report is not None:
                from repro.analysis.campaign import write_campaign_report
                from repro.campaign.distributed import find_shard_stores

                merged: Dict[str, object] = {}
                for path in find_shard_stores(req.store):
                    for record in ResultStore(path).records():
                        merged.setdefault(record.digest, record)
                write_campaign_report(
                    list(merged.values()), req.report, title=spec.name
                )
            return summary
        store = ResultStore(req.store)
        if req.backend is not None:
            backend = req.backend
            workers = req.workers
        else:
            backend = self.backend
        summary = run_campaign(
            spec,
            store,
            backend=backend,
            workers=workers,
            progress=logger.info,
            fault_policy=self._fault_policy,
            spill_dir=self.config.spill_dir,
            shards=1,
        )
        if req.report is not None:
            from repro.analysis.campaign import write_campaign_report

            write_campaign_report(store.records(), req.report, title=spec.name)
        return summary


# ---------------------------------------------------------------------------
# module-level one-shot conveniences
# ---------------------------------------------------------------------------


def _warn_adhoc_kwargs(func: str, overrides: Dict[str, object]) -> None:
    """Deprecation shim: the one-shot helpers used to accept request fields
    as ad-hoc keyword arguments; typed request objects (or plain dicts /
    wire envelopes) are the supported spelling now that the same payloads
    travel over the serving wire."""
    warnings.warn(
        f"passing request fields as keyword arguments to repro.api.{func}() "
        f"({', '.join(sorted(overrides))}) is deprecated; build a "
        f"{func.capitalize()}Request (or pass a dict / wire envelope) instead",
        DeprecationWarning,
        stacklevel=3,
    )


def release(
    request: Union[ReleaseRequest, Dict[str, object], None] = None,
    config: Union[RunConfig, Dict[str, object], None] = None,
    **overrides: object,
) -> ReleasePackage:
    """One-shot :meth:`Session.release` in a throwaway session."""
    if overrides:
        _warn_adhoc_kwargs("release", overrides)
    with Session(config) as session:
        return session.release(request, **overrides)


def validate(
    request: Union[ValidateRequest, Dict[str, object], None] = None,
    ip: Optional[BlackBox] = None,
    config: Union[RunConfig, Dict[str, object], None] = None,
    **overrides: object,
) -> ValidationOutcome:
    """One-shot :meth:`Session.validate` in a throwaway session."""
    if overrides:
        _warn_adhoc_kwargs("validate", overrides)
    with Session(config) as session:
        return session.validate(request, ip=ip, **overrides)


def sweep(
    request: Union[SweepRequest, Dict[str, object], None] = None,
    config: Union[RunConfig, Dict[str, object], None] = None,
    **overrides: object,
):
    """One-shot :meth:`Session.sweep` in a throwaway session."""
    if overrides:
        _warn_adhoc_kwargs("sweep", overrides)
    with Session(config) as session:
        return session.sweep(request, **overrides)


__all__ = ["BlackBox", "Session", "release", "sweep", "validate"]
