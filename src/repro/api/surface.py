"""Machine-readable snapshot of the public façade surface.

:func:`api_surface` walks the ``__all__`` exports of the façade modules
(``repro``, ``repro.api``, ``repro.registry``) and records each name's kind
and signature as plain strings.  The committed snapshot
(``tests/data/api_surface.json``) pins that surface: the
``tests/test_api_surface.py`` test and the ``scripts/check_api_surface.py``
CI check both fail on any accidental breaking change — removed exports,
changed signatures, renamed dataclass fields — while intentional changes are
a one-line ``--update`` away.
"""

from __future__ import annotations

import dataclasses
import inspect
from typing import Dict

#: modules whose public surface is pinned
SURFACE_MODULES = ("repro", "repro.api", "repro.registry")


def _describe(obj: object) -> Dict[str, str]:
    """Kind + signature description of one exported object."""
    if inspect.isclass(obj):
        description = {"kind": "class"}
        if dataclasses.is_dataclass(obj):
            description["kind"] = "dataclass"
            description["fields"] = ", ".join(
                f.name for f in dataclasses.fields(obj)
            )
        try:
            description["signature"] = str(inspect.signature(obj))
        except (TypeError, ValueError):  # pragma: no cover - builtins only
            description["signature"] = "(...)"
        methods = sorted(
            name
            for name, member in inspect.getmembers(obj)
            if not name.startswith("_")
            and (inspect.isroutine(member) or isinstance(member, property))
        )
        description["members"] = ", ".join(methods)
        return description
    if inspect.isroutine(obj):
        try:
            signature = str(inspect.signature(obj))
        except (TypeError, ValueError):  # pragma: no cover - builtins only
            signature = "(...)"
        return {"kind": "function", "signature": signature}
    if isinstance(obj, (str, int, float, tuple)):
        return {"kind": "constant", "signature": repr(obj)}
    return {"kind": type(obj).__name__}


def api_surface() -> Dict[str, Dict[str, Dict[str, str]]]:
    """The full pinned surface: module → export name → description."""
    import importlib

    surface: Dict[str, Dict[str, Dict[str, str]]] = {}
    for module_name in SURFACE_MODULES:
        module = importlib.import_module(module_name)
        exports: Dict[str, Dict[str, str]] = {}
        for name in sorted(getattr(module, "__all__", ())):
            exports[name] = _describe(getattr(module, name))
        surface[module_name] = exports
    return surface


__all__ = ["SURFACE_MODULES", "api_surface"]
