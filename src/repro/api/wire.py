"""The versioned wire envelope shared by the HTTP and in-process paths.

Every request the façade accepts — :class:`~repro.api.requests.ReleaseRequest`,
:class:`~repro.api.requests.ValidateRequest`,
:class:`~repro.api.requests.SweepRequest` — has exactly one serialization
contract, used identically by :mod:`repro.serve`'s HTTP endpoint, the
in-process :class:`~repro.serve.client.AsyncClient`, and plain
:meth:`repro.api.Session.validate` calls handed a wire dict::

    {"schema_version": 1, "kind": "validate", "body": {"package": "...", ...}}

``schema_version`` is explicit so old clients keep working across additive
schema growth: a server reads every version up to its own
:data:`WIRE_SCHEMA_VERSION` and rejects newer ones with a clear error
instead of mis-parsing.  ``kind`` names the request table (the same
``_TABLE`` token the TOML loaders use), so an envelope can never be replayed
against the wrong operation.  ``body`` holds exactly the request's
dataclass fields — the :class:`~repro.api.config.TableSerde` dict form —
which keeps the wire schema pinned by the committed API-surface snapshot.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

#: current wire schema version written by every ``to_wire()``
WIRE_SCHEMA_VERSION = 1


def envelope(kind: str, body: Dict[str, object]) -> Dict[str, object]:
    """Wrap a request/result body dict in a versioned wire envelope."""
    return {"schema_version": WIRE_SCHEMA_VERSION, "kind": kind, "body": dict(body)}


def is_wire(data: object) -> bool:
    """Whether ``data`` looks like a wire envelope (vs a bare field dict)."""
    return isinstance(data, dict) and "schema_version" in data


def open_envelope(
    data: Dict[str, object], expected_kind: Optional[str] = None
) -> Tuple[int, str, Dict[str, object]]:
    """Validate an envelope and return ``(schema_version, kind, body)``.

    Raises :class:`ValueError` on a missing/unsupported ``schema_version``,
    a missing ``kind``, a ``kind`` different from ``expected_kind`` (when
    given), or a non-dict ``body`` — the error messages are stable enough to
    surface verbatim as HTTP 400 bodies.
    """
    if not isinstance(data, dict):
        raise ValueError(f"wire envelope must be a dict, got {type(data).__name__}")
    try:
        version = int(data["schema_version"])  # type: ignore[arg-type]
    except KeyError:
        raise ValueError("wire envelope is missing 'schema_version'") from None
    except (TypeError, ValueError):
        raise ValueError(
            f"wire envelope 'schema_version' must be an integer, got "
            f"{data['schema_version']!r}"
        ) from None
    if not 1 <= version <= WIRE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported wire schema_version {version}; this build reads "
            f"versions 1..{WIRE_SCHEMA_VERSION}"
        )
    kind = data.get("kind")
    if not isinstance(kind, str) or not kind:
        raise ValueError("wire envelope is missing 'kind'")
    if expected_kind is not None and kind != expected_kind:
        raise ValueError(
            f"wire envelope kind {kind!r} does not match the expected "
            f"{expected_kind!r}"
        )
    body = data.get("body", {})
    if not isinstance(body, dict):
        raise ValueError(f"wire envelope 'body' must be a dict, got {type(body).__name__}")
    return version, kind, body


class WireSerde:
    """``to_wire()`` / ``from_wire()`` for the façade request dataclasses.

    Mixed into :class:`~repro.api.config.TableSerde` subclasses: the
    envelope ``kind`` is the class's ``_TABLE`` token and the ``body`` is
    its ``to_dict()`` form, so the wire contract and the TOML contract can
    never diverge.  ``coerce`` (via :meth:`TableSerde.coerce`) recognises
    envelopes transparently, which is how :meth:`repro.api.Session.validate`
    and the HTTP layer share one deserialization path.
    """

    _TABLE = "config"

    def to_wire(self) -> Dict[str, object]:
        """This request as a versioned wire envelope."""
        return envelope(self._TABLE, self.to_dict())  # type: ignore[attr-defined]

    @classmethod
    def from_wire(cls, data: Dict[str, object]):
        """Rebuild (and validate) a request from its wire envelope."""
        _version, _kind, body = open_envelope(data, expected_kind=cls._TABLE)
        instance = cls.from_dict(body)  # type: ignore[attr-defined]
        instance.validate()
        return instance


__all__ = ["WIRE_SCHEMA_VERSION", "WireSerde", "envelope", "is_wire", "open_envelope"]
