"""Parameter-perturbation attacks used to evaluate the validation scheme."""

from repro.attacks.base import (
    AttackOutcome,
    ParameterAttack,
    PerturbationRecord,
    apply_record,
    bias_flat_indices,
    parameter_name_of,
    revert_record,
    weight_flat_indices,
)
from repro.attacks.bitflip import BitFlipAttack, flip_bit
from repro.attacks.gda import GradientDescentAttack
from repro.attacks.random_noise import RandomPerturbation
from repro.attacks.sba import SingleBiasAttack

__all__ = [
    "AttackOutcome",
    "ParameterAttack",
    "PerturbationRecord",
    "apply_record",
    "bias_flat_indices",
    "parameter_name_of",
    "revert_record",
    "weight_flat_indices",
    "BitFlipAttack",
    "flip_bit",
    "GradientDescentAttack",
    "RandomPerturbation",
    "SingleBiasAttack",
]
