"""Parameter-perturbation attacks used to evaluate the validation scheme.

Attack families register in the ``attacks`` namespace of the
cross-subsystem :mod:`repro.registry`.  Each registered factory is called as
``factory(reference_inputs, rng=..., **knobs)`` — input-independent attacks
simply ignore ``reference_inputs`` — and its knob declaration maps the
factory's keyword arguments onto the :class:`~repro.campaign.CampaignSpec`
fields that feed them, so a registered third-party attack is immediately
sweepable by campaigns without touching the runner.
"""

from typing import Optional

import numpy as np

from repro.registry import register
from repro.utils.rng import RngLike

from repro.attacks.base import (
    AttackOutcome,
    ParameterAttack,
    PerturbationRecord,
    apply_record,
    bias_flat_indices,
    parameter_name_of,
    revert_record,
    weight_flat_indices,
)
from repro.attacks.bitflip import BitFlipAttack, flip_bit
from repro.attacks.gda import GradientDescentAttack
from repro.attacks.random_noise import RandomPerturbation
from repro.attacks.sba import SingleBiasAttack


@register(
    "attacks",
    "sba",
    knobs={"magnitude": "sba_magnitude"},
    summary="single bias attack: one bias shifted by a fixed magnitude",
)
def _sba(
    reference_inputs: Optional[np.ndarray],
    rng: RngLike = None,
    magnitude: float = 10.0,
) -> ParameterAttack:
    return SingleBiasAttack(
        magnitude=magnitude, reference_inputs=reference_inputs, rng=rng
    )


@register(
    "attacks",
    "gda",
    knobs={"num_parameters": "gda_parameters"},
    summary="gradient-descent attack: loss-guided shifts of a few parameters",
)
def _gda(
    reference_inputs: Optional[np.ndarray],
    rng: RngLike = None,
    num_parameters: int = 20,
) -> ParameterAttack:
    if reference_inputs is None:
        raise ValueError("the gda attack requires reference inputs")
    return GradientDescentAttack(
        target_inputs=reference_inputs, num_parameters=num_parameters, rng=rng
    )


@register(
    "attacks",
    "random",
    knobs={
        "num_parameters": "random_parameters",
        "relative_std": "random_relative_std",
    },
    summary="gaussian noise on a few randomly chosen parameters",
)
def _random(
    reference_inputs: Optional[np.ndarray],
    rng: RngLike = None,
    num_parameters: int = 10,
    relative_std: float = 2.0,
) -> ParameterAttack:
    return RandomPerturbation(
        num_parameters=num_parameters, relative_std=relative_std, rng=rng
    )


@register(
    "attacks",
    "bitflip",
    summary="single IEEE-754 mantissa/exponent bit flip in one parameter",
)
def _bitflip(
    reference_inputs: Optional[np.ndarray],
    rng: RngLike = None,
) -> ParameterAttack:
    return BitFlipAttack(num_parameters=1, rng=rng)


__all__ = [
    "AttackOutcome",
    "ParameterAttack",
    "PerturbationRecord",
    "apply_record",
    "bias_flat_indices",
    "parameter_name_of",
    "revert_record",
    "weight_flat_indices",
    "BitFlipAttack",
    "flip_bit",
    "GradientDescentAttack",
    "RandomPerturbation",
    "SingleBiasAttack",
]
