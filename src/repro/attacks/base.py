"""Parameter-perturbation threat models.

The paper's validation scheme is evaluated against attacks that modify model
parameters in the deployed IP (Section V-C): the single bias attack and the
gradient descent attack of Liu et al. (ICCAD 2017), plus random Gaussian
perturbations.  Each attack here produces a *perturbed copy* of the victim
model together with a record of what was changed, so detection experiments
can measure whether a given set of functional tests exposes the change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.model import Sequential
from repro.utils.rng import RngLike, as_generator


@dataclass
class PerturbationRecord:
    """What an attack changed.

    Attributes
    ----------
    attack: name of the attack ("sba", "gda", "random", "bitflip").
    flat_indices: flat parameter indices that were modified.
    deltas: value added to each modified parameter (new − old).
    parameter_names: the owning parameter-tensor name per modified index.
    metadata: attack-specific extras (e.g. the SBA target magnitude).
    """

    attack: str
    flat_indices: np.ndarray
    deltas: np.ndarray
    parameter_names: List[str] = field(default_factory=list)
    metadata: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.flat_indices = np.asarray(self.flat_indices, dtype=np.int64)
        self.deltas = np.asarray(self.deltas, dtype=np.float64)
        if self.flat_indices.shape != self.deltas.shape:
            raise ValueError(
                "flat_indices and deltas must have the same shape, got "
                f"{self.flat_indices.shape} and {self.deltas.shape}"
            )

    @property
    def num_modified(self) -> int:
        """Number of scalar parameters the attack touched."""
        return int(self.flat_indices.size)

    @property
    def max_abs_delta(self) -> float:
        """Largest absolute change applied to any parameter."""
        if self.deltas.size == 0:
            return 0.0
        return float(np.max(np.abs(self.deltas)))

    @property
    def l2_norm(self) -> float:
        """Euclidean norm of the full perturbation vector."""
        return float(np.linalg.norm(self.deltas))

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form, for audit logs and out-of-band replay
        (round-trip through :meth:`from_dict` + :func:`apply_record`)."""
        return {
            "attack": self.attack,
            "flat_indices": [int(i) for i in self.flat_indices],
            "deltas": [float(d) for d in self.deltas],
            "parameter_names": list(self.parameter_names),
            "metadata": {k: float(v) for k, v in self.metadata.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PerturbationRecord":
        """Rebuild a record serialised with :meth:`to_dict`."""
        return cls(
            attack=str(data["attack"]),
            flat_indices=np.asarray(data["flat_indices"], dtype=np.int64),
            deltas=np.asarray(data["deltas"], dtype=np.float64),
            parameter_names=list(data.get("parameter_names", [])),  # type: ignore[arg-type]
            metadata=dict(data.get("metadata", {})),  # type: ignore[arg-type]
        )


@dataclass
class AttackOutcome:
    """A perturbed model plus the record of its perturbation."""

    model: Sequential
    record: PerturbationRecord


class ParameterAttack:
    """Base class: an attack perturbs the parameters of a model copy."""

    #: short name used in detection-rate tables
    attack_name: str = "base"

    def __init__(self, rng: RngLike = None) -> None:
        self._rng = as_generator(rng)

    def apply(self, model: Sequential) -> AttackOutcome:
        """Return a perturbed copy of ``model`` and the perturbation record.

        The input model is never modified.
        """
        victim = model.copy()
        record = self._perturb(victim)
        return AttackOutcome(model=victim, record=record)

    def _perturb(self, model: Sequential) -> PerturbationRecord:
        """Modify ``model`` in place and describe the modification."""
        raise NotImplementedError


def apply_record(model: Sequential, record: PerturbationRecord) -> Sequential:
    """Apply a previously captured perturbation record to a copy of ``model``.

    Useful for replaying the exact same fault against several defence
    configurations.
    """
    victim = model.copy()
    view = victim.parameter_view()
    for idx, delta in zip(record.flat_indices, record.deltas):
        view.add_scalar(int(idx), float(delta))
    return victim


def revert_record(model: Sequential, record: PerturbationRecord) -> Sequential:
    """Undo a perturbation record on a copy of ``model``."""
    victim = model.copy()
    view = victim.parameter_view()
    for idx, delta in zip(record.flat_indices, record.deltas):
        view.add_scalar(int(idx), -float(delta))
    return victim


def bias_flat_indices(model: Sequential) -> np.ndarray:
    """Flat indices of every bias parameter (used by the single bias attack)."""
    view = model.parameter_view()
    indices: List[int] = []
    for name, start, stop in view.tensor_slices():
        if name.endswith("/bias"):
            indices.extend(range(start, stop))
    return np.asarray(indices, dtype=np.int64)


def weight_flat_indices(model: Sequential) -> np.ndarray:
    """Flat indices of every weight (non-bias) parameter."""
    view = model.parameter_view()
    indices: List[int] = []
    for name, start, stop in view.tensor_slices():
        if not name.endswith("/bias"):
            indices.extend(range(start, stop))
    return np.asarray(indices, dtype=np.int64)


def parameter_name_of(model: Sequential, flat_index: int) -> str:
    """Name of the parameter tensor owning a flat index."""
    view = model.parameter_view()
    tensor_idx, _ = view.locate(flat_index)
    return view.parameters[tensor_idx].name


__all__ = [
    "PerturbationRecord",
    "AttackOutcome",
    "ParameterAttack",
    "apply_record",
    "revert_record",
    "bias_flat_indices",
    "weight_flat_indices",
    "parameter_name_of",
]
