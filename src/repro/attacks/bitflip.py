"""Bit-flip fault model (extension beyond the paper's evaluation).

Hardware fault-injection work (and the laser-fault-injection attack the paper
cites, Breier et al. 2018) often models faults as single bit flips in the
stored parameter words rather than additive noise.  This attack flips a chosen
bit of the IEEE-754 representation of randomly selected parameters, giving the
detection experiments a harsher, more hardware-realistic fault model:

* flipping a high exponent bit produces an enormous change (easy to detect if
  the parameter is covered at all);
* flipping a low mantissa bit produces a minuscule change (hard to detect even
  with full coverage — useful for studying the detection-threshold tradeoff).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.attacks.base import ParameterAttack, PerturbationRecord, parameter_name_of
from repro.nn.model import Sequential
from repro.utils.rng import RngLike


def flip_bit(value: float, bit: int) -> float:
    """Flip one bit (0 = LSB of the mantissa, 63 = sign) of a float64 value."""
    if not 0 <= bit <= 63:
        raise ValueError("bit must be in [0, 63]")
    as_int = np.float64(value).view(np.uint64)
    flipped = as_int ^ np.uint64(1 << bit)
    result = flipped.view(np.float64)
    return float(result)


class BitFlipAttack(ParameterAttack):
    """Flip a bit in the binary representation of randomly chosen parameters.

    Parameters
    ----------
    num_parameters: how many parameters receive a bit flip.
    bits: candidate bit positions (float64 layout: 0-51 mantissa, 52-62
        exponent, 63 sign).  Defaults to the upper mantissa / lower exponent
        region, which produces large-but-finite changes.
    avoid_nonfinite: redraw the bit if the flip produces NaN/Inf (keeps the
        perturbed model evaluable, which the detection harness requires).
    """

    attack_name = "bitflip"

    def __init__(
        self,
        num_parameters: int = 1,
        bits: Optional[Sequence[int]] = None,
        avoid_nonfinite: bool = True,
        rng: RngLike = None,
    ) -> None:
        super().__init__(rng)
        if num_parameters <= 0:
            raise ValueError("num_parameters must be positive")
        self.num_parameters = int(num_parameters)
        self.bits = tuple(bits) if bits is not None else tuple(range(48, 60))
        if not self.bits or any(not 0 <= b <= 63 for b in self.bits):
            raise ValueError("bits must be a non-empty sequence of positions in [0, 63]")
        self.avoid_nonfinite = bool(avoid_nonfinite)

    def _perturb(self, model: Sequential) -> PerturbationRecord:
        view = model.parameter_view()
        total = view.total_size
        k = min(self.num_parameters, total)
        chosen = self._rng.choice(total, size=k, replace=False)

        deltas = np.zeros(k, dtype=np.float64)
        flipped_bits = []
        for j, idx in enumerate(chosen):
            original = view.get_scalar(int(idx))
            for _ in range(16):
                bit = int(self._rng.choice(self.bits))
                new_value = flip_bit(original, bit)
                if not self.avoid_nonfinite or np.isfinite(new_value):
                    break
            else:
                # fall back to a sign flip, which is always finite
                bit = 63
                new_value = flip_bit(original, bit)
            view.set_scalar(int(idx), new_value)
            deltas[j] = new_value - original
            flipped_bits.append(bit)

        return PerturbationRecord(
            attack=self.attack_name,
            flat_indices=chosen,
            deltas=deltas,
            parameter_names=[parameter_name_of(model, int(i)) for i in chosen],
            metadata={"bits": float(flipped_bits[0]) if flipped_bits else -1.0},
        )


__all__ = ["BitFlipAttack", "flip_bit"]
