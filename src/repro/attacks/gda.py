"""Gradient Descent Attack (GDA) — Liu et al., ICCAD 2017.

Where SBA makes one large, easily spotted change, GDA aims for *stealth*: it
spreads small perturbations over a limited set of parameters, chosen and
scaled by gradient information, so that a chosen input is misclassified while
the overall parameter statistics barely move.

Implementation: given a target input ``x`` with (current) label ``y``, perform
a few steps of gradient *ascent* on the classification loss with respect to
the parameters, restricted to the ``num_parameters`` entries with the largest
gradient magnitude, and clip the total per-parameter change to
``max_relative_change`` times the parameter scale.  The attack succeeds when
the perturbed model assigns ``x`` a different class.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.attacks.base import ParameterAttack, PerturbationRecord, parameter_name_of
from repro.engine import Engine
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Sequential
from repro.utils.rng import RngLike


class GradientDescentAttack(ParameterAttack):
    """Stealthy multi-parameter fault injection guided by loss gradients.

    Parameters
    ----------
    target_inputs:
        Pool of candidate inputs; each attack instance picks one at random and
        tries to make the model misclassify it.
    num_parameters:
        Number of parameters the perturbation is restricted to (the
        stealthiness knob — fewer touched parameters, harder to detect).
    step_size:
        Gradient-ascent step size, relative to the parameter scale.
    max_steps:
        Maximum number of ascent steps.
    max_relative_change:
        Cap on the absolute change of any single parameter, as a multiple of
        the overall parameter RMS value.
    """

    attack_name = "gda"

    def __init__(
        self,
        target_inputs: np.ndarray,
        num_parameters: int = 20,
        step_size: float = 0.5,
        max_steps: int = 10,
        max_relative_change: float = 2.0,
        rng: RngLike = None,
    ) -> None:
        super().__init__(rng)
        target_inputs = np.asarray(target_inputs, dtype=np.float64)
        if target_inputs.ndim < 2 or target_inputs.shape[0] == 0:
            raise ValueError("target_inputs must be a non-empty batch")
        if num_parameters <= 0:
            raise ValueError("num_parameters must be positive")
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if max_steps <= 0:
            raise ValueError("max_steps must be positive")
        if max_relative_change <= 0:
            raise ValueError("max_relative_change must be positive")
        self.target_inputs = target_inputs
        self.num_parameters = int(num_parameters)
        self.step_size = float(step_size)
        self.max_steps = int(max_steps)
        self.max_relative_change = float(max_relative_change)

    def _perturb(self, model: Sequential) -> PerturbationRecord:
        idx = int(self._rng.integers(0, self.target_inputs.shape[0]))
        x = self.target_inputs[idx : idx + 1]
        view = model.parameter_view()
        original = view.flat_values()
        scale = max(float(np.sqrt(np.mean(original**2))), 1e-3)

        # the model's parameters change on every ascent step, so run through
        # an uncached engine (memoization keys would never repeat anyway)
        engine = Engine(model, cache=False)
        loss_fn = SoftmaxCrossEntropy()
        label = int(engine.predict_classes(x)[0])
        targets = np.array([label])

        # pick the parameters with the largest loss gradient for this input
        _, grads = engine.loss_parameter_gradients(x, targets, loss_fn)
        k = min(self.num_parameters, grads.size)
        chosen = np.argsort(-np.abs(grads))[:k]

        limit = self.max_relative_change * scale
        for _ in range(self.max_steps):
            _, grads = engine.loss_parameter_gradients(x, targets, loss_fn)

            flat = view.flat_values()
            flat[chosen] += self.step_size * scale * np.sign(grads[chosen])
            # keep the perturbation bounded for stealth
            flat[chosen] = np.clip(
                flat[chosen], original[chosen] - limit, original[chosen] + limit
            )
            view.set_flat_values(flat)

            if int(engine.predict_classes(x)[0]) != label:
                break

        deltas = view.flat_values()[chosen] - original[chosen]
        # drop parameters the clipping left untouched
        touched = np.abs(deltas) > 0
        chosen = chosen[touched]
        deltas = deltas[touched]
        return PerturbationRecord(
            attack=self.attack_name,
            flat_indices=chosen,
            deltas=deltas,
            parameter_names=[parameter_name_of(model, int(i)) for i in chosen],
            metadata={
                "target_index": float(idx),
                "original_label": float(label),
            },
        )


__all__ = ["GradientDescentAttack"]
