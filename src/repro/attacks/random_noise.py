"""Random parameter perturbations (the "Random" column of Tables II/III).

The paper's third threat model is not adversarial at all: Gaussian noise is
added to model parameters, standing in for memory corruption, transmission
errors or sloppy post-processing of the shipped IP.  The perturbation touches
a configurable number of randomly chosen parameters with noise scaled to the
parameter distribution — touching only a handful of parameters is what makes
detection non-trivial and separates good test sets from poor ones.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import ParameterAttack, PerturbationRecord, parameter_name_of
from repro.nn.model import Sequential
from repro.utils.rng import RngLike


class RandomPerturbation(ParameterAttack):
    """Add Gaussian noise to a random subset of parameters.

    Parameters
    ----------
    num_parameters:
        How many randomly chosen parameters receive noise.
    relative_std:
        Noise standard deviation as a multiple of the overall parameter RMS
        value (so the perturbation is meaningful regardless of model scale).
    """

    attack_name = "random"

    def __init__(
        self,
        num_parameters: int = 10,
        relative_std: float = 2.0,
        rng: RngLike = None,
    ) -> None:
        super().__init__(rng)
        if num_parameters <= 0:
            raise ValueError("num_parameters must be positive")
        if relative_std <= 0:
            raise ValueError("relative_std must be positive")
        self.num_parameters = int(num_parameters)
        self.relative_std = float(relative_std)

    def _perturb(self, model: Sequential) -> PerturbationRecord:
        view = model.parameter_view()
        total = view.total_size
        k = min(self.num_parameters, total)
        chosen = self._rng.choice(total, size=k, replace=False)

        flat = view.flat_values()
        scale = max(float(np.sqrt(np.mean(flat**2))), 1e-3)
        deltas = self._rng.normal(0.0, self.relative_std * scale, size=k)
        flat[chosen] += deltas
        view.set_flat_values(flat)

        return PerturbationRecord(
            attack=self.attack_name,
            flat_indices=chosen,
            deltas=deltas,
            parameter_names=[parameter_name_of(model, int(i)) for i in chosen],
            metadata={"relative_std": self.relative_std},
        )


__all__ = ["RandomPerturbation"]
