"""Single Bias Attack (SBA) — Liu et al., ICCAD 2017.

SBA modifies exactly one bias parameter with a large perturbation so that the
network misclassifies some inputs.  Biases are attractive targets because a
bias feeds every spatial position of its feature map (convolution) or its
whole unit (dense), so a single large change can swing decisions while the
stored model differs from the original in only one value.

This implementation follows the spirit of the original attack under black-box
evaluation constraints:

1. pick a bias parameter at random (optionally restricted to a layer);
2. add a large perturbation whose magnitude is a multiple of the parameter
   tensor's value scale;
3. optionally verify against a batch of reference inputs that the perturbed
   model actually changes some predictions, retrying with a different bias /
   larger magnitude otherwise (mirroring the attacker's goal of causing
   misclassification rather than a silent change).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.attacks.base import (
    ParameterAttack,
    PerturbationRecord,
    bias_flat_indices,
    parameter_name_of,
)
from repro.nn.model import Sequential
from repro.utils.rng import RngLike


class SingleBiasAttack(ParameterAttack):
    """Perturb one bias parameter by a large amount.

    Parameters
    ----------
    magnitude:
        Size of the injected perturbation, expressed as a multiple of the
        victim parameter tensor's root-mean-square value (with an absolute
        floor so zero-initialised biases still receive a large fault).
    reference_inputs:
        Optional batch of inputs; when given, the attack retries (up to
        ``max_attempts``) until the perturbation flips at least one
        prediction on this batch, doubling the magnitude on each retry.
    max_attempts:
        Retry budget when ``reference_inputs`` is provided.
    """

    attack_name = "sba"

    def __init__(
        self,
        magnitude: float = 10.0,
        reference_inputs: Optional[np.ndarray] = None,
        max_attempts: int = 5,
        rng: RngLike = None,
    ) -> None:
        super().__init__(rng)
        if magnitude <= 0:
            raise ValueError("magnitude must be positive")
        if max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        self.magnitude = float(magnitude)
        self.reference_inputs = (
            None if reference_inputs is None else np.asarray(reference_inputs)
        )
        self.max_attempts = int(max_attempts)

    def _candidate_scale(self, model: Sequential, flat_index: int) -> float:
        """Value scale of the tensor owning ``flat_index`` (with a floor)."""
        view = model.parameter_view()
        tensor_idx, _ = view.locate(flat_index)
        values = view.parameters[tensor_idx].value
        rms = float(np.sqrt(np.mean(values**2)))
        weights_rms = float(
            np.sqrt(np.mean(np.concatenate([p.value.ravel() for p in view.parameters]) ** 2))
        )
        return max(rms, weights_rms, 0.1)

    def _perturb(self, model: Sequential) -> PerturbationRecord:
        biases = bias_flat_indices(model)
        if biases.size == 0:
            raise ValueError("model has no bias parameters to attack")
        view = model.parameter_view()

        baseline = None
        if self.reference_inputs is not None:
            baseline = model.predict_classes(self.reference_inputs)

        magnitude = self.magnitude
        chosen = int(self._rng.choice(biases))
        delta = 0.0
        for attempt in range(self.max_attempts):
            chosen = int(self._rng.choice(biases))
            scale = self._candidate_scale(model, chosen)
            sign = 1.0 if self._rng.random() < 0.5 else -1.0
            delta = sign * magnitude * scale
            view.add_scalar(chosen, delta)
            if baseline is None:
                break
            flipped = np.any(
                model.predict_classes(self.reference_inputs) != baseline
            )
            if flipped:
                break
            # undo and retry with a larger fault on a different bias
            view.add_scalar(chosen, -delta)
            magnitude *= 2.0
        else:
            # out of attempts: keep the last (already reverted) choice applied
            view.add_scalar(chosen, delta)

        return PerturbationRecord(
            attack=self.attack_name,
            flat_indices=np.array([chosen]),
            deltas=np.array([delta]),
            parameter_names=[parameter_name_of(model, chosen)],
            metadata={"magnitude": magnitude},
        )


__all__ = ["SingleBiasAttack"]
