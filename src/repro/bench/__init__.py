"""Benchmark-harness subsystem: measured, recorded, regression-gated speed.

``repro.bench`` turns the engine's performance from folklore into data:

* :mod:`repro.bench.harness` — the single timing/reporting codepath
  (warmed best-of-N timing, the versioned ``BENCH_engine.json`` schema,
  regression comparison against a previous report);
* :mod:`repro.bench.workloads` — the forward/gradient/mask/coverage/
  detection workload matrix across backends and compute dtypes;
* ``python -m repro.bench`` — the CLI that runs the matrix, writes the
  report and (given ``--baseline``) fails on a >threshold slowdown.

CI runs ``python -m repro.bench --quick`` as the ``bench-smoke`` job,
uploads ``BENCH_engine.json`` as an artifact, and gates against
``benchmarks/BENCH_baseline.json``; set ``BENCH_SKIP_REGRESSION=1`` to
demote the gate to warnings on noisy runners.
"""

from repro.bench.harness import (
    DEFAULT_REGRESSION_THRESHOLD,
    ENV_SKIP_REGRESSION,
    SCHEMA_VERSION,
    BenchmarkResult,
    Regression,
    best_of,
    compare_reports,
    host_info,
    hosts_comparable,
    load_report,
    measure,
    peak_rss_bytes,
    regression_gate_skipped,
    report_results,
    write_report,
)
from repro.bench.workloads import (
    CAMPAIGN_SHARDS,
    DEFAULT_POOL_SIZE,
    MODEL_AXIS_COPIES,
    QUICK_POOL_SIZE,
    WORKLOAD_NAMES,
    build_model,
    build_pool,
    campaign_shards_speedup,
    default_backends,
    model_axis_speedup,
    parallel_speedup,
    run_benchmark_matrix,
    run_workloads,
    serve_coalesce_speedup,
)

__all__ = [
    # harness
    "SCHEMA_VERSION",
    "ENV_SKIP_REGRESSION",
    "DEFAULT_REGRESSION_THRESHOLD",
    "BenchmarkResult",
    "Regression",
    "best_of",
    "compare_reports",
    "host_info",
    "hosts_comparable",
    "load_report",
    "measure",
    "peak_rss_bytes",
    "regression_gate_skipped",
    "report_results",
    "write_report",
    # workloads
    "CAMPAIGN_SHARDS",
    "DEFAULT_POOL_SIZE",
    "MODEL_AXIS_COPIES",
    "QUICK_POOL_SIZE",
    "WORKLOAD_NAMES",
    "build_model",
    "build_pool",
    "campaign_shards_speedup",
    "default_backends",
    "model_axis_speedup",
    "parallel_speedup",
    "run_benchmark_matrix",
    "run_workloads",
    "serve_coalesce_speedup",
]
