"""CLI entry point: ``python -m repro.bench``.

Runs the engine benchmark matrix, writes ``BENCH_engine.json`` and —
when given a baseline — enforces the regression gate::

    # full matrix, write BENCH_engine.json next to the repo root
    PYTHONPATH=src python -m repro.bench

    # CI smoke: small pool, compare against the committed baseline
    PYTHONPATH=src python -m repro.bench --quick \
        --baseline benchmarks/BENCH_baseline.json --threshold 0.20

Exit status is non-zero when a workload regressed by more than the
threshold, unless ``BENCH_SKIP_REGRESSION`` is set (noisy runners), in which
case regressions are reported as warnings.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.harness import (
    DEFAULT_REGRESSION_THRESHOLD,
    ENV_SKIP_REGRESSION,
    compare_reports,
    host_info,
    hosts_comparable,
    load_report,
    regression_gate_skipped,
    write_report,
)
from repro.bench.workloads import (
    DEFAULT_POOL_SIZE,
    QUICK_POOL_SIZE,
    WORKLOAD_NAMES,
    campaign_shards_speedup,
    default_backends,
    model_axis_speedup,
    parallel_speedup,
    run_benchmark_matrix,
    serve_coalesce_speedup,
)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark the execution engine and gate regressions.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"small pool ({QUICK_POOL_SIZE} images), two repeats — the CI smoke mode",
    )
    parser.add_argument("--output", default="BENCH_engine.json", help="report path")
    parser.add_argument(
        "--baseline",
        default=None,
        help="previous BENCH_engine.json to compare against (no gate when omitted)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_REGRESSION_THRESHOLD,
        help="tolerated fractional slowdown vs the baseline (default 0.20)",
    )
    parser.add_argument("--pool-size", type=int, default=None, help="candidate pool size")
    parser.add_argument("--repeats", type=int, default=None, help="timed repeats per workload")
    parser.add_argument(
        "--backends",
        default=None,
        help="comma-separated backend names (default: numpy and model_axis, plus parallel on multi-core hosts)",
    )
    parser.add_argument(
        "--dtypes", default="float64,float32", help="comma-separated compute dtypes"
    )
    parser.add_argument(
        "--workloads",
        default=None,
        help=f"comma-separated subset of {','.join(WORKLOAD_NAMES)}",
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="worker count of the parallel backend"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    pool_size = args.pool_size or (QUICK_POOL_SIZE if args.quick else DEFAULT_POOL_SIZE)
    repeats = args.repeats or (2 if args.quick else 3)
    backends = args.backends.split(",") if args.backends else default_backends()
    dtypes = [d for d in args.dtypes.split(",") if d]
    workloads = args.workloads.split(",") if args.workloads else None

    host = host_info()
    print(f"host: {host['cores']} cores, numpy {host['numpy']}, python {host['python']}")
    print(f"pool: {pool_size} images; backends: {backends}; dtypes: {dtypes}")

    results = run_benchmark_matrix(
        pool_size=pool_size,
        backends=backends,
        dtypes=dtypes,
        repeats=repeats,
        workloads=workloads,
        workers=args.workers,
    )
    for r in results:
        print(
            f"  {r.name:<10} [{r.backend}/{r.dtype}] "
            f"{r.wall_s * 1e3:9.1f} ms  {r.throughput:10.0f} samples/s"
            + (f"  hit_rate={r.cache_hit_rate:.2f}" if r.cache_hit_rate else "")
        )
    speedups = parallel_speedup(results)
    if speedups:
        line = ", ".join(f"{k}={v:.2f}x" for k, v in speedups.items())
        print(f"parallel speedup vs numpy (float64): {line}")
    fused = model_axis_speedup(results)
    if fused is not None:
        print(f"model-axis fused speedup vs per-copy loop (float64): {fused:.2f}x")
    sharded = campaign_shards_speedup(results)
    if sharded is not None:
        print(f"campaign shards speedup vs serial (float64): {sharded:.2f}x")
    served = serve_coalesce_speedup(results)
    if served is not None:
        print(f"serve coalescer speedup vs uncoalesced (float64): {served:.2f}x")

    report = write_report(
        results, args.output, meta={"quick": bool(args.quick), "pool_size": pool_size}
    )
    print(f"wrote {args.output} ({len(results)} results)")

    if args.baseline is None:
        return 0
    baseline = load_report(args.baseline)
    regressions = compare_reports(report, baseline, threshold=args.threshold)
    if not regressions:
        print(f"regression gate OK (threshold {args.threshold * 100:.0f}%)")
        return 0
    for reg in regressions:
        print(f"REGRESSION: {reg.describe()}", file=sys.stderr)
    if not hosts_comparable(report["host"], baseline.get("host", {})):
        print(
            f"{len(regressions)} regression(s) demoted to warnings: the "
            f"baseline was recorded on a different host "
            f"({baseline.get('host')}) — wall-clock is not comparable. "
            f"Re-record the baseline on this runner to arm the gate.",
            file=sys.stderr,
        )
        return 0
    if regression_gate_skipped():
        print(
            f"{len(regressions)} regression(s) ignored ({ENV_SKIP_REGRESSION} is set)",
            file=sys.stderr,
        )
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
