"""Benchmark harness: timing, reporting and regression gating.

The measure-then-fix loop of the engine work needs every speedup to be a
*recorded, comparable number* rather than a one-off console line.  This
module is the single timing/assertion codepath shared by the CLI
(``python -m repro.bench``), the CI ``bench-smoke`` job and the standalone
``benchmarks/bench_engine.py`` script:

* :func:`best_of` — warmed-up best-of-N wall-clock timing;
* :class:`BenchmarkResult` — one measured workload (name × backend × dtype)
  with wall-clock, throughput, cache hit rate and peak RSS;
* :func:`write_report` / :func:`load_report` — the ``BENCH_engine.json``
  schema, versioned and host-stamped;
* :func:`compare_reports` — regression detection against a previous report
  with a configurable threshold (only *slowdowns* beyond the threshold are
  regressions; speedups simply become the next baseline).

Wall-clock comparisons across different machines are meaningless, which is
why the regression gate is skippable via the ``BENCH_SKIP_REGRESSION``
environment variable on noisy or heterogeneous runners (mirroring
``BENCH_ENGINE_SKIP_SPEEDUP``).
"""

from __future__ import annotations

import json
import os
import platform
import resource
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

#: bump when the BENCH_engine.json layout changes incompatibly
SCHEMA_VERSION = 1

#: set (to any non-empty value) to demote regression-gate failures to warnings
ENV_SKIP_REGRESSION = "BENCH_SKIP_REGRESSION"

#: default tolerated slowdown vs the baseline before a workload is flagged
DEFAULT_REGRESSION_THRESHOLD = 0.20

PathLike = Union[str, Path]


def best_of(fn: Callable[[], Any], repeats: int = 3, warmup: int = 1) -> Tuple[float, Any]:
    """Best wall-clock seconds over ``repeats`` timed calls of ``fn``.

    ``warmup`` untimed calls precede the measurements so allocator, index-
    cache and worker-pool startup effects do not pollute the numbers.
    Returns ``(best_seconds, last_value)``.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    value = None
    for _ in range(warmup):
        value = fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def peak_rss_bytes() -> int:
    """Peak resident set size of this process in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalise to
    bytes so reports are comparable.  Note this is the process-lifetime
    high-water mark — monotone across a run, so a result's
    ``peak_rss_bytes`` means "the process had needed at most this much by
    the time this workload finished", not the workload's own footprint.
    Per-workload isolation would need one process per measurement.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux containers
        return int(peak)
    return int(peak) * 1024


@dataclass
class BenchmarkResult:
    """One measured workload on one backend × dtype configuration."""

    name: str
    backend: str
    dtype: str
    wall_s: float
    samples: int
    repeats: int
    throughput: float  # samples per second
    cache_hit_rate: float
    peak_rss_bytes: int  # process high-water mark at measurement time (monotone)
    value: Optional[float] = None  # workload-defined scalar for equivalence checks
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def key(self) -> Tuple[str, str, str]:
        """Identity of the configuration, used to match against a baseline."""
        return (self.name, self.backend, self.dtype)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BenchmarkResult":
        return cls(**data)


def measure(
    name: str,
    fn: Callable[[], Any],
    samples: int,
    backend: str = "numpy",
    dtype: str = "float64",
    repeats: int = 3,
    warmup: int = 1,
    cache_hit_rate: float = 0.0,
    value_of: Optional[Callable[[Any], float]] = None,
    **extra: Any,
) -> BenchmarkResult:
    """Time ``fn`` and package the measurement as a :class:`BenchmarkResult`."""
    wall_s, result = best_of(fn, repeats=repeats, warmup=warmup)
    value = None
    if value_of is not None:
        value = float(value_of(result))
    elif isinstance(result, (int, float, np.floating)):
        value = float(result)
    return BenchmarkResult(
        name=name,
        backend=backend,
        dtype=dtype,
        wall_s=wall_s,
        samples=int(samples),
        repeats=int(repeats),
        throughput=samples / wall_s if wall_s > 0 else float("inf"),
        cache_hit_rate=float(cache_hit_rate),
        peak_rss_bytes=peak_rss_bytes(),
        value=value,
        extra=dict(extra),
    )


def host_info() -> Dict[str, Any]:
    """Enough host context to judge whether two reports are comparable."""
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        cores = os.cpu_count() or 1
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": sys.platform,
        "machine": platform.machine(),
        "cores": cores,
    }


def write_report(
    results: Sequence[BenchmarkResult],
    path: PathLike,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Write the versioned JSON report; returns the written document."""
    report = {
        "schema": SCHEMA_VERSION,
        "created_unix": time.time(),
        "host": host_info(),
        "meta": dict(meta or {}),
        "results": [r.to_dict() for r in results],
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def load_report(path: PathLike) -> Dict[str, Any]:
    """Load and schema-check a report written by :func:`write_report`."""
    path = Path(path)
    report = json.loads(path.read_text())
    schema = report.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"{path} has schema {schema!r}; this build reads schema {SCHEMA_VERSION}"
        )
    if not isinstance(report.get("results"), list):
        raise ValueError(f"{path} has no results list")
    return report


def report_results(report: Dict[str, Any]) -> List[BenchmarkResult]:
    """The parsed results of a loaded report."""
    return [BenchmarkResult.from_dict(d) for d in report["results"]]


@dataclass
class Regression:
    """One workload that got slower than the baseline allows."""

    name: str
    backend: str
    dtype: str
    baseline_s: float
    current_s: float

    @property
    def slowdown(self) -> float:
        """Fractional slowdown, e.g. ``0.35`` = 35 % slower than baseline."""
        return self.current_s / self.baseline_s - 1.0

    def describe(self) -> str:
        return (
            f"{self.name} [{self.backend}/{self.dtype}]: "
            f"{self.baseline_s * 1e3:.1f} ms -> {self.current_s * 1e3:.1f} ms "
            f"(+{self.slowdown * 100:.0f}%)"
        )


def compare_reports(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
) -> List[Regression]:
    """Workloads of ``current`` slower than ``baseline`` by more than
    ``threshold``.

    Matching is by ``(name, backend, dtype)``; configurations present on only
    one side are ignored (adding a workload must not fail the gate, and
    runner core counts legitimately change which backends run).  Entries
    whose ``samples`` counts differ are also skipped — wall-clock over a
    24-image quick pool says nothing about a 100-image baseline.
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    baseline_by_key = {r.key: r for r in report_results(baseline)}
    regressions: List[Regression] = []
    for result in report_results(current):
        base = baseline_by_key.get(result.key)
        if base is None or base.wall_s <= 0 or base.samples != result.samples:
            continue
        if result.wall_s > base.wall_s * (1.0 + threshold):
            regressions.append(
                Regression(
                    name=result.name,
                    backend=result.backend,
                    dtype=result.dtype,
                    baseline_s=base.wall_s,
                    current_s=result.wall_s,
                )
            )
    return regressions


def regression_gate_skipped() -> bool:
    """Whether the environment demotes regression failures to warnings."""
    return bool(os.environ.get(ENV_SKIP_REGRESSION))


def hosts_comparable(current: Dict[str, Any], baseline: Dict[str, Any]) -> bool:
    """Whether two reports' wall-clocks may be compared at all.

    Wall-clock on a different core count, architecture or interpreter says
    nothing about a code change, so the CLI demotes the gate to warnings
    when the host fingerprints differ — a hard failure there would only
    train people to export ``BENCH_SKIP_REGRESSION`` permanently.
    """
    keys = ("cores", "machine", "platform", "python")
    return all(current.get(k) == baseline.get(k) for k in keys)


__all__ = [
    "SCHEMA_VERSION",
    "ENV_SKIP_REGRESSION",
    "DEFAULT_REGRESSION_THRESHOLD",
    "BenchmarkResult",
    "Regression",
    "best_of",
    "compare_reports",
    "host_info",
    "hosts_comparable",
    "load_report",
    "measure",
    "peak_rss_bytes",
    "regression_gate_skipped",
    "report_results",
    "write_report",
]
