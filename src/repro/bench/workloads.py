"""The engine benchmark workloads, per backend × dtype.

The workloads cover the library's hot paths end to end:

=================  ========================================================
``forward``        inference logits over the pool (vendor replay, detection)
``gradients``      per-sample output-gradient matrix (the mask primitive)
``masks``          boolean activation-mask matrix (Algorithm 1's candidates)
``coverage``       mean validation coverage (the Fig. 2 quantity)
``packing``        packed activation-mask matrix (streaming pack; records
                   packed vs dense mask bytes)
``selection``      packed greedy selection (Algorithm 1's inner loop) over a
                   pool 4× the matrix pool — the packed masks of the larger
                   pool still fit in less memory than the dense masks of the
                   small one (records both byte counts)
``detection``      stacked replay of a test batch against perturbed model
                   copies (the Tables II/III inner loop)
``model_axis``     one ``stacked_forward`` dispatch over a set of perturbed
                   copies — fused along the model axis on backends that
                   advertise the capacity, a per-copy loop elsewhere (the
                   fused-vs-loop ratio is the model-axis speedup)
``mmap_selection`` packed greedy selection over a disk-spilled
                   (memory-mapped) mask store whose in-RAM window is capped
                   at half the packed matrix bytes
``revisit``        memoized re-query of the coverage workload (greedy-loop
                   access pattern; measures the cache, not the compute)
``campaign``       a micro campaign (train, package, paired trials, store)
                   end to end through ``repro.campaign`` — float64 only,
                   each repeat runs into a fresh store so nothing is skipped
``campaign_shards`` the same campaign shape widened to four attack units and
                   executed by the distributed runner at
                   :data:`CAMPAIGN_SHARDS` worker shards (numpy × float64
                   cell only: the shard workers are the parallelism);
                   a one-shot serial reference wall rides along in
                   ``extra["serial_wall_s"]`` for the speedup gate
``serve_coalesce`` :data:`SERVE_CONCURRENT` concurrent same-digest validates
                   through :class:`repro.serve.ValidationService`'s batching
                   coalescer (numpy × float64 cell only: the coalescer's
                   stacked dedup is the parallelism); a one-shot uncoalesced
                   reference wall rides along in
                   ``extra["uncoalesced_wall_s"]`` for the speedup gate
=================  ========================================================

Each runs on every requested backend (``numpy``, and ``parallel`` when more
than one core is available) and dtype (float64, float32), producing the
matrix that ``BENCH_engine.json`` records and the CI regression gate
consumes.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.bench.harness import BenchmarkResult, measure
from repro.engine import Engine, default_worker_count
from repro.nn.model import Sequential
from repro.registry import registry
from repro.utils.logging import get_logger

logger = get_logger("bench.workloads")

#: pool size of the full benchmark (the 100-image workload of the
#: acceptance criteria); ``--quick`` shrinks it
DEFAULT_POOL_SIZE = 100
QUICK_POOL_SIZE = 24

#: perturbed model copies replayed by the detection workload
DETECTION_TRIALS = 5

#: perturbed model copies fused by the model_axis workload (the acceptance
#: speedup is measured at this many copies)
MODEL_AXIS_COPIES = 8

#: pool multiplier of the selection workload: packed masks of a pool this
#: many times larger still occupy fewer bytes than the dense masks of the
#: base pool (packed is 1/8 dense, so 4x pool -> 1/2 the bytes)
SELECTION_POOL_MULTIPLIER = 4

#: tests selected greedily by the selection workload
SELECTION_BUDGET = 10

WORKLOAD_NAMES = (
    "forward",
    "gradients",
    "masks",
    "coverage",
    "packing",
    "selection",
    "mmap_selection",
    "detection",
    "model_axis",
    "revisit",
    "campaign",
    "campaign_shards",
    "serve_coalesce",
)

#: worker shards of the ``campaign_shards`` workload (the acceptance
#: speedup is gated at this shard count on a host with at least as many
#: cores)
CAMPAIGN_SHARDS = 4

#: the micro campaign spec timed by the ``campaign`` workload: one model,
#: one attack, one strategy, sized so a full train→package→trials→store
#: pass stays in smoke-test territory
CAMPAIGN_WORKLOAD_SPEC = dict(
    name="bench-campaign",
    attacks=("sba",),
    models=("mnist",),
    criteria=("default",),
    strategies=("random",),
    budgets=(2,),
    trials=2,
    train_size=24,
    test_size=12,
    epochs=1,
    width_multiplier=0.08,
    candidate_pool=12,
    gradient_updates=3,
    reference_inputs=6,
)

#: concurrent same-digest validates of the ``serve_coalesce`` workload (the
#: acceptance speedup is gated at this fan-in by ``bench_serve.py``)
SERVE_CONCURRENT = 8

#: the micro release replayed by the ``serve_coalesce`` workload: the
#: ``random`` strategy keeps the (untimed) vendor setup cheap — only the
#: validate path is measured
SERVE_WORKLOAD_SPEC = dict(
    dataset="mnist",
    num_tests=32,
    strategy="random",
    criterion="default",
    train_size=24,
    test_size=12,
    epochs=1,
    width_multiplier=0.25,
    candidate_pool=32,
    seed=0,
)

#: the ``campaign_shards`` spec: the micro campaign widened along the attack
#: axis so the distributed runner has one work unit per shard, with trials
#: heavy enough that the paired-replay stage (the parallelisable part)
#: dominates the duplicated per-worker training
CAMPAIGN_SHARDS_SPEC = dict(
    CAMPAIGN_WORKLOAD_SPEC,
    name="bench-campaign-shards",
    attacks=("sba", "gda", "random", "bitflip"),
    trials=16,
)


def default_backends() -> List[str]:
    """Backends worth timing on this host: ``parallel`` needs real cores."""
    backends = ["numpy", "model_axis"]
    if default_worker_count() >= 2:
        backends.append("parallel")
    return backends


def build_model(width: float = 0.125, input_size: int = 28, rng: int = 0) -> Sequential:
    """The width-scaled Table-I MNIST model every workload runs on."""
    return registry.create(  # type: ignore[return-value]
        "models", "mnist", width_multiplier=width, input_size=input_size, rng=rng
    )


def build_pool(model: Sequential, pool_size: int, rng: int = 1) -> np.ndarray:
    """A deterministic digit pool matching the model's input size."""
    dataset = registry.create(
        "datasets", "digits", pool_size, rng=rng, size=model.input_shape[-1]
    )
    return dataset.images  # type: ignore[union-attr]


def _perturbed_copies(model: Sequential, trials: int) -> List[Sequential]:
    """Deterministic single-bias-perturbed copies for the stacked workloads.

    Each copy receives a large fault on one output-head bias, a distinct
    index per copy — the single-bias attack's most effective placement, and
    the model-axis backend's design point: every layer before the head is
    bitwise shared with the victim, so the fused dispatch re-runs only the
    classifier head per copy.
    """
    from repro.attacks.base import bias_flat_indices

    biases = bias_flat_indices(model)
    copies = []
    for trial in range(trials):
        copy = model.copy()
        copy.parameter_view().add_scalar(int(biases[-1 - trial]), 10.0)
        copies.append(copy)
    return copies


def run_workloads(
    model: Sequential,
    images: np.ndarray,
    backend_name: str,
    dtype: str,
    repeats: int = 3,
    workloads: Optional[Iterable[str]] = None,
    workers: Optional[int] = None,
) -> List[BenchmarkResult]:
    """Measure the requested workloads on one backend × dtype configuration.

    A fresh backend instance is built (and closed) per call so worker pools
    never leak; the pool startup cost is excluded from the timings by the
    warm-up call inside :func:`~repro.bench.harness.measure`.
    """
    selected = tuple(workloads) if workloads is not None else WORKLOAD_NAMES
    unknown = set(selected) - set(WORKLOAD_NAMES)
    if unknown:
        raise ValueError(f"unknown workloads {sorted(unknown)}; choose from {WORKLOAD_NAMES}")

    if backend_name == "parallel":
        # the detection workload cycles through DETECTION_TRIALS perturbed
        # digests plus the clean model; a smaller publication LRU would make
        # every trial a 100%-miss re-ship and bench the transport, not the
        # compute
        backend = registry.create(
            "backends", "parallel", workers=workers, max_published=DETECTION_TRIALS + 2
        )
    else:
        backend = registry.create("backends", backend_name)
    n = images.shape[0]
    results: List[BenchmarkResult] = []
    try:
        # uncached engine: times the compute, not the memo cache
        engine = Engine(model, backend=backend, dtype=dtype, cache=False)
        runners = {
            "forward": lambda: engine.forward(images),
            "gradients": lambda: engine.output_gradients(images),
            "masks": lambda: engine.activation_masks(images),
            "coverage": lambda: engine.mean_validation_coverage(images),
        }
        for name in selected:
            if name not in runners:
                continue
            value_of = (lambda r: r) if name == "coverage" else None
            results.append(
                measure(
                    name,
                    runners[name],
                    samples=n,
                    backend=backend_name,
                    dtype=dtype,
                    repeats=repeats,
                    value_of=value_of,
                )
            )
            logger.debug("measured %s on %s/%s", name, backend_name, dtype)

        if "packing" in selected:
            # one warm call to size the result; measure() re-warms for timing
            packed = engine.packed_activation_masks(images)
            results.append(
                measure(
                    "packing",
                    lambda: engine.packed_activation_masks(images),
                    samples=n,
                    backend=backend_name,
                    dtype=dtype,
                    repeats=repeats,
                    packed_mask_bytes=int(packed.nbytes),
                    dense_mask_bytes=int(packed.dense_nbytes),
                    packed_to_dense_ratio=(
                        packed.nbytes / packed.dense_nbytes
                        if packed.dense_nbytes
                        else 0.0
                    ),
                )
            )

        if "selection" in selected:
            from repro.coverage.bitmap import CoverageMap

            # a pool SELECTION_POOL_MULTIPLIER× larger than the matrix pool:
            # its packed masks still take fewer bytes than the base pool's
            # dense masks would (the acceptance bar of the packed refactor)
            sel_pool = build_pool(model, n * SELECTION_POOL_MULTIPLIER, rng=2)
            sel_packed = engine.packed_activation_masks(sel_pool)
            budget = min(SELECTION_BUDGET, len(sel_packed))

            def selection() -> float:
                covered = CoverageMap(sel_packed.nbits)
                available = np.ones(len(sel_packed), dtype=bool)
                for _ in range(budget):
                    best, _count = sel_packed.best_candidate(covered, available)
                    covered.union_(sel_packed.row(best))
                    available[best] = False
                return covered.fraction

            results.append(
                measure(
                    "selection",
                    selection,
                    samples=len(sel_packed),
                    backend=backend_name,
                    dtype=dtype,
                    repeats=repeats,
                    value_of=lambda r: r,
                    pool_size=len(sel_packed),
                    pool_multiplier=SELECTION_POOL_MULTIPLIER,
                    budget=budget,
                    packed_mask_bytes=int(sel_packed.nbytes),
                    dense_mask_bytes=int(sel_packed.dense_nbytes),
                    base_pool_dense_mask_bytes=n * model.num_parameters(),
                )
            )

        if "mmap_selection" in selected:
            import tempfile

            from repro.coverage.bitmap import CoverageMap, MmapMaskMatrix

            mmap_pool = build_pool(model, n * SELECTION_POOL_MULTIPLIER, rng=2)
            with tempfile.TemporaryDirectory() as tmp:
                spilled = engine.packed_activation_masks(mmap_pool, spill_dir=tmp)
                # re-open with the in-RAM window capped at half the packed
                # matrix: greedy selection must stream, not materialise
                window_budget = max(1, int(spilled.nbytes) // 2)
                windowed = MmapMaskMatrix.open(
                    spilled.path, memory_budget_bytes=window_budget
                )
                budget = min(SELECTION_BUDGET, len(windowed))

                def mmap_selection() -> float:
                    covered = CoverageMap(windowed.nbits)
                    available = np.ones(len(windowed), dtype=bool)
                    for _ in range(budget):
                        best, _count = windowed.best_candidate(covered, available)
                        covered.union_(windowed.row(best))
                        available[best] = False
                    return covered.fraction

                results.append(
                    measure(
                        "mmap_selection",
                        mmap_selection,
                        samples=len(windowed),
                        backend=backend_name,
                        dtype=dtype,
                        repeats=repeats,
                        value_of=lambda r: r,
                        pool_size=len(windowed),
                        pool_multiplier=SELECTION_POOL_MULTIPLIER,
                        budget=budget,
                        packed_mask_bytes=int(spilled.nbytes),
                        window_budget_bytes=window_budget,
                    )
                )

        if "detection" in selected:
            copies = _perturbed_copies(model, DETECTION_TRIALS)
            expected = engine.forward(images)

            def detection() -> float:
                detections = 0
                for copy in copies:
                    trial_engine = Engine(copy, backend=backend, dtype=dtype, cache=False)
                    observed = trial_engine.forward(images)
                    if np.abs(observed - expected).max() > 1e-6:
                        detections += 1
                return detections / len(copies)

            results.append(
                measure(
                    "detection",
                    detection,
                    samples=n * DETECTION_TRIALS,
                    backend=backend_name,
                    dtype=dtype,
                    repeats=repeats,
                    value_of=lambda r: r,
                )
            )

        if "model_axis" in selected:
            stacked_copies = _perturbed_copies(model, MODEL_AXIS_COPIES)

            def model_axis() -> float:
                observed = engine.stacked_forward(stacked_copies, images)
                return float(np.abs(observed).mean())

            results.append(
                measure(
                    "model_axis",
                    model_axis,
                    samples=n * MODEL_AXIS_COPIES,
                    backend=backend_name,
                    dtype=dtype,
                    repeats=repeats,
                    value_of=lambda r: r,
                    copies=MODEL_AXIS_COPIES,
                    fused=bool(backend.model_axis_capacity),
                )
            )

        if "revisit" in selected:
            cached_engine = Engine(model, backend=backend, dtype=dtype)
            cached_engine.mean_validation_coverage(images)  # warm the memo

            def revisit() -> float:
                return cached_engine.mean_validation_coverage(images)

            result = measure(
                "revisit",
                revisit,
                samples=n,
                backend=backend_name,
                dtype=dtype,
                repeats=repeats,
                value_of=lambda r: r,
            )
            result.cache_hit_rate = cached_engine.stats.hit_rate
            results.append(result)

        if "campaign" in selected and dtype == "float64":
            # float64 only: the campaign's user-side replay compares logits
            # at the package atol, which float32 compute would trip benignly
            import itertools
            import tempfile
            from pathlib import Path

            from repro.campaign import CampaignSpec, run_campaign

            spec = CampaignSpec(**CAMPAIGN_WORKLOAD_SPEC)  # type: ignore[arg-type]
            num_scenarios = len(spec.expand())
            with tempfile.TemporaryDirectory() as tmp:
                counter = itertools.count()

                def campaign() -> float:
                    # a fresh store per repeat — resuming would skip the work
                    store_path = Path(tmp) / f"store-{next(counter)}.jsonl"
                    summary = run_campaign(spec, str(store_path), backend=backend)
                    return summary.executed / num_scenarios

                results.append(
                    measure(
                        "campaign",
                        campaign,
                        samples=num_scenarios,
                        backend=backend_name,
                        dtype=dtype,
                        repeats=repeats,
                        value_of=lambda r: r,
                        scenarios=num_scenarios,
                    )
                )

        if (
            "campaign_shards" in selected
            and dtype == "float64"
            and backend_name == "numpy"
        ):
            # numpy × float64 cell only: the shard *workers* are the
            # parallelism being measured — nesting them inside the parallel
            # backend's matrix cell would time pool-on-pool contention
            import itertools
            import tempfile
            from pathlib import Path

            from repro.campaign import CampaignSpec, run_campaign

            spec = CampaignSpec(**CAMPAIGN_SHARDS_SPEC)  # type: ignore[arg-type]
            num_scenarios = len(spec.expand())
            with tempfile.TemporaryDirectory() as tmp:
                counter = itertools.count()
                # one serial reference run: the speedup denominator the
                # bench gate divides by (not repeated — the gate tolerates
                # reference noise, the regression gate tracks the shards leg)
                serial_start = time.perf_counter()
                run_campaign(spec, str(Path(tmp) / "serial.jsonl"), backend="numpy")
                serial_wall_s = time.perf_counter() - serial_start

                def campaign_shards() -> float:
                    # fresh store per repeat — resuming would skip the work
                    store_path = Path(tmp) / f"shards-{next(counter)}.jsonl"
                    summary = run_campaign(
                        spec,
                        str(store_path),
                        backend="numpy",
                        shards=CAMPAIGN_SHARDS,
                    )
                    return summary.executed / num_scenarios

                results.append(
                    measure(
                        "campaign_shards",
                        campaign_shards,
                        samples=num_scenarios,
                        backend=backend_name,
                        dtype=dtype,
                        repeats=repeats,
                        value_of=lambda r: r,
                        scenarios=num_scenarios,
                        shards=CAMPAIGN_SHARDS,
                        serial_wall_s=serial_wall_s,
                    )
                )
        if (
            "serve_coalesce" in selected
            and dtype == "float64"
            and backend_name == "numpy"
        ):
            # numpy × float64 cell only: the coalescer's stacked dedup — not
            # the matrix backend — is the parallelism being measured, and
            # float64 is the package-replay dtype
            import asyncio

            from repro.api import ReleaseRequest, RunConfig, Session, ValidateRequest
            from repro.serve import SERVE_BATCH_SIZE, ServeConfig, ValidationService

            with Session(RunConfig(batch_size=SERVE_BATCH_SIZE)) as vendor:
                released = vendor.release(ReleaseRequest(**SERVE_WORKLOAD_SPEC))

            def serve_service(coalesce: bool) -> ValidationService:
                return ValidationService(
                    ServeConfig(
                        coalesce=coalesce,
                        coalesce_window_s=0.002,
                        max_stacked_models=SERVE_CONCURRENT,
                        request_timeout_s=None,
                    )
                )

            async def drive(service: ValidationService) -> float:
                outcomes = await asyncio.gather(
                    *(
                        service.validate(
                            ValidateRequest(package=released.package),
                            ip=released.model,
                        )
                        for _ in range(SERVE_CONCURRENT)
                    )
                )
                return sum(o.passed for o in outcomes) / len(outcomes)

            # one uncoalesced reference (best of two — the second run has the
            # engine warm, mirroring the measured leg's warm-up): the speedup
            # denominator the bench gate divides by
            uncoalesced = serve_service(False)
            try:
                walls = []
                for _ in range(2):
                    start = time.perf_counter()
                    asyncio.run(drive(uncoalesced))
                    walls.append(time.perf_counter() - start)
                uncoalesced_wall_s = min(walls)
            finally:
                uncoalesced.close()

            coalesced = serve_service(True)
            try:
                result = measure(
                    "serve_coalesce",
                    lambda: asyncio.run(drive(coalesced)),
                    samples=SERVE_CONCURRENT * len(released.package.tests),
                    backend=backend_name,
                    dtype=dtype,
                    repeats=repeats,
                    value_of=lambda r: r,
                    concurrent=SERVE_CONCURRENT,
                    uncoalesced_wall_s=uncoalesced_wall_s,
                )
                stats = coalesced.coalescer.stats
                result.extra["dispatches"] = stats.dispatches
                result.extra["deduped"] = stats.deduped
                result.extra["coalesce_hit_rate"] = round(stats.hit_rate, 4)
                results.append(result)
            finally:
                coalesced.close()
    finally:
        backend.close()
    return results


def run_benchmark_matrix(
    pool_size: int = DEFAULT_POOL_SIZE,
    backends: Optional[Sequence[str]] = None,
    dtypes: Sequence[str] = ("float64", "float32"),
    repeats: int = 3,
    workloads: Optional[Iterable[str]] = None,
    workers: Optional[int] = None,
    width: float = 0.125,
    input_size: int = 28,
) -> List[BenchmarkResult]:
    """Run the full backend × dtype benchmark matrix on one shared model/pool."""
    model = build_model(width=width, input_size=input_size)
    images = build_pool(model, pool_size)
    if backends is None:
        backends = default_backends()
    results: List[BenchmarkResult] = []
    for backend_name in backends:
        for dtype in dtypes:
            logger.info("benchmarking backend=%s dtype=%s", backend_name, dtype)
            results.extend(
                run_workloads(
                    model,
                    images,
                    backend_name,
                    dtype,
                    repeats=repeats,
                    workloads=workloads,
                    workers=workers,
                )
            )
    return results


def parallel_speedup(results: Sequence[BenchmarkResult]) -> Dict[str, float]:
    """Per-workload ``numpy_wall / parallel_wall`` ratios (float64 only)."""
    by_key = {r.key: r for r in results}
    speedups: Dict[str, float] = {}
    for name in WORKLOAD_NAMES:
        base = by_key.get((name, "numpy", "float64"))
        par = by_key.get((name, "parallel", "float64"))
        if base is not None and par is not None and par.wall_s > 0:
            speedups[name] = base.wall_s / par.wall_s
    return speedups


def campaign_shards_speedup(results: Sequence[BenchmarkResult]) -> Optional[float]:
    """Serial-vs-sharded wall ratio of the ``campaign_shards`` workload.

    The serial reference wall is recorded in the result's
    ``extra["serial_wall_s"]`` (same spec, same process, shards=1);
    ``None`` when the workload is absent from ``results``.
    """
    by_key = {r.key: r for r in results}
    sharded = by_key.get(("campaign_shards", "numpy", "float64"))
    if sharded is None or sharded.wall_s <= 0:
        return None
    serial_wall = sharded.extra.get("serial_wall_s")
    if serial_wall is None:
        return None
    return float(serial_wall) / sharded.wall_s


def serve_coalesce_speedup(results: Sequence[BenchmarkResult]) -> Optional[float]:
    """Uncoalesced-vs-coalesced wall ratio of the ``serve_coalesce`` workload.

    The uncoalesced reference wall is recorded in the result's
    ``extra["uncoalesced_wall_s"]`` (same release, same fan-in, coalescing
    off); ``None`` when the workload is absent from ``results``.
    """
    by_key = {r.key: r for r in results}
    coalesced = by_key.get(("serve_coalesce", "numpy", "float64"))
    if coalesced is None or coalesced.wall_s <= 0:
        return None
    uncoalesced_wall = coalesced.extra.get("uncoalesced_wall_s")
    if uncoalesced_wall is None:
        return None
    return float(uncoalesced_wall) / coalesced.wall_s


def model_axis_speedup(results: Sequence[BenchmarkResult]) -> Optional[float]:
    """Fused-vs-loop ratio of the ``model_axis`` workload (float64 only).

    Compares the workload on the ``model_axis`` backend (one fused dispatch
    for all :data:`MODEL_AXIS_COPIES` copies) against ``numpy`` (the
    bit-identical per-copy fallback loop); ``None`` when either leg is
    missing from ``results``.
    """
    by_key = {r.key: r for r in results}
    base = by_key.get(("model_axis", "numpy", "float64"))
    fused = by_key.get(("model_axis", "model_axis", "float64"))
    if base is None or fused is None or fused.wall_s <= 0:
        return None
    return base.wall_s / fused.wall_s


__all__ = [
    "CAMPAIGN_SHARDS",
    "DEFAULT_POOL_SIZE",
    "QUICK_POOL_SIZE",
    "DETECTION_TRIALS",
    "MODEL_AXIS_COPIES",
    "SELECTION_BUDGET",
    "SELECTION_POOL_MULTIPLIER",
    "SERVE_CONCURRENT",
    "WORKLOAD_NAMES",
    "build_model",
    "build_pool",
    "campaign_shards_speedup",
    "default_backends",
    "model_axis_speedup",
    "parallel_speedup",
    "run_benchmark_matrix",
    "run_workloads",
    "serve_coalesce_speedup",
]
