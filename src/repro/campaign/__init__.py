"""Declarative evaluation campaigns: attack × model × criterion sweeps.

The paper's headline evidence is a *sweep* — detection rates across attack
families, coverage criteria, test budgets and both Table-I architectures —
not a single run.  This subsystem makes that sweep a first-class, resumable
artefact:

* :class:`~repro.campaign.spec.CampaignSpec` — a dataclass (TOML/JSON
  loadable) enumerating the scenario cross-product, expanded with
  deterministic per-scenario seeds and SHA-256 digests;
* :class:`~repro.campaign.runner.CampaignRunner` — executes pending
  scenarios through the engine stack, sharing trained models, generated
  packages and perturbation-trial replays across scenarios (see the module
  docstring for the exact reuse structure);
* :class:`~repro.campaign.store.ResultStore` — an append-only JSONL store
  keyed by scenario digest, so interrupted or re-triggered campaigns skip
  completed work;
* :mod:`repro.campaign.distributed` — work-stealing shard workers over
  per-shard stores (``--shards N``), with byte-stable ``merge``/``compact``
  canonicalisation and crash-safe supervision;
* ``python -m repro.campaign`` — ``run`` / ``resume`` / ``merge`` /
  ``compact`` / ``gc-spill`` / ``report`` / ``diff`` / ``expectations``
  CLI; the aggregation behind ``report`` lives in
  :mod:`repro.analysis.campaign`.

Quickstart::

    from repro.campaign import CampaignSpec, run_campaign

    spec = CampaignSpec(attacks=("sba", "random"), models=("mnist",),
                        budgets=(5, 10), trials=20, train_size=80, epochs=2)
    summary = run_campaign(spec, "results.jsonl")
    summary = run_campaign(spec, "results.jsonl")   # resumes: executes 0
"""

from repro.campaign.distributed import (
    ModelExchange,
    WorkUnit,
    compact_store,
    find_shard_stores,
    merge_stores,
    plan_shards,
    run_distributed_campaign,
    shard_store_path,
)
from repro.campaign.gc import GCReport, gc_spill
from repro.campaign.runner import CampaignRunner, CampaignSummary, run_campaign
from repro.campaign.spec import (
    MODEL_NAMES,
    SCENARIO_SCHEMA_VERSION,
    CampaignSpec,
    Scenario,
    derive_scenario_seed,
)
from repro.campaign.store import (
    STORE_SCHEMA_VERSION,
    FailureRecord,
    ResultStore,
    ScenarioRecord,
    diff_against_expectations,
    expectations_from_records,
)

__all__ = [
    "MODEL_NAMES",
    "SCENARIO_SCHEMA_VERSION",
    "STORE_SCHEMA_VERSION",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignSummary",
    "FailureRecord",
    "GCReport",
    "ModelExchange",
    "ResultStore",
    "Scenario",
    "ScenarioRecord",
    "WorkUnit",
    "compact_store",
    "derive_scenario_seed",
    "diff_against_expectations",
    "expectations_from_records",
    "find_shard_stores",
    "gc_spill",
    "merge_stores",
    "plan_shards",
    "run_campaign",
    "run_distributed_campaign",
    "shard_store_path",
]
