"""CLI entry point: ``python -m repro.campaign``.

Subcommands::

    # execute a spec into a JSONL store (skips already-completed scenarios)
    python -m repro.campaign run --spec spec.toml --store results.jsonl

    # alias of run — the store already encodes what is left to do
    python -m repro.campaign resume --spec spec.toml --store results.jsonl

    # distribute across 4 worker shards (results.shard<k>.jsonl each),
    # then fold the shard stores into one canonical byte-stable store
    python -m repro.campaign run --spec spec.toml --store results.jsonl --shards 4
    python -m repro.campaign merge --store results.jsonl --prune

    # canonicalise a (serial) store: digest-sorted, failures healed
    python -m repro.campaign compact --store results.jsonl

    # reclaim spill mask stores unreferenced by the given artifacts
    python -m repro.campaign gc-spill --spill-dir spill/ \
        --store results.jsonl --dry-run

    # fold a store into the Tables II/III-style markdown report (and CSV)
    python -m repro.campaign report --store results.jsonl --out report.md

    # gate a store against a committed expectations file (CI drift check)
    python -m repro.campaign diff --store results.jsonl \
        --expectations expectations.json

    # (re)generate the expectations file from a completed store
    python -m repro.campaign expectations --store results.jsonl \
        --out expectations.json

``run``/``resume`` print the executed/skipped summary; ``diff`` exits
non-zero when any scenario's detection outcome drifted.

Exit codes for ``run``/``resume``: 0 on a clean run, 2 when the run
completed but quarantined failures remain in the store, 3 when
``--max-failures`` aborted the campaign, 130 on Ctrl-C (the store is
flushed per append, so ``resume`` re-executes nothing already recorded).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import (
    ResultStore,
    diff_against_expectations,
    expectations_from_records,
)
from repro.faults import CampaignAbortedError, FaultPolicy


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Run, resume, report and gate declarative evaluation campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, doc in (
        ("run", "execute the spec's pending scenarios into the store"),
        ("resume", "alias of run: completed scenarios are skipped either way"),
    ):
        cmd = sub.add_parser(name, help=doc)
        cmd.add_argument("--spec", required=True, help="campaign spec (.toml or .json)")
        cmd.add_argument("--store", required=True, help="JSONL result store path")
        cmd.add_argument(
            "--backend",
            default="numpy",
            help="engine backend for the whole campaign (numpy or parallel)",
        )
        cmd.add_argument("--workers", type=int, default=None, help="parallel-backend worker count")
        cmd.add_argument("--report", default=None, help="also write the markdown report here")
        cmd.add_argument(
            "--durable",
            action="store_true",
            help="fsync the store after every append (crash durability)",
        )
        cmd.add_argument(
            "--max-failures",
            type=int,
            default=None,
            help="abort once more than this many scenarios are quarantined "
            "(default: quarantine everything, never abort)",
        )
        cmd.add_argument(
            "--retries",
            type=int,
            default=None,
            help="max transient-failure retries per engine dispatch "
            "(enables the fault policy)",
        )
        cmd.add_argument(
            "--dispatch-timeout",
            type=float,
            default=None,
            help="per-dispatch timeout in seconds on the parallel backend "
            "(enables the fault policy)",
        )
        cmd.add_argument(
            "--spill-dir",
            default=None,
            help="packed-mask spill directory for the per-model engines",
        )
        cmd.add_argument(
            "--shards",
            type=int,
            default=None,
            help="distribute across this many worker processes, each "
            "appending to <store>.shard<k>.jsonl (default: spec.shards); "
            "use 'merge' afterwards for the combined store",
        )
        cmd.add_argument(
            "--stall-timeout",
            type=float,
            default=None,
            help="seconds of shard-worker silence before it is killed and "
            "its unit requeued (distributed runs only)",
        )

    merge = sub.add_parser(
        "merge",
        help="merge per-shard stores into one canonical byte-stable store",
    )
    merge.add_argument(
        "--store",
        required=True,
        help="base store path; its <store>.shard<k>.jsonl siblings are merged",
    )
    merge.add_argument(
        "--out",
        default=None,
        help="merged store output path (default: the base store path)",
    )
    merge.add_argument(
        "--prune",
        action="store_true",
        help="remove the shard stores after a successful merge",
    )

    compact = sub.add_parser(
        "compact",
        help="rewrite one store in canonical form (digest-sorted, healed)",
    )
    compact.add_argument("--store", required=True, help="JSONL result store path")
    compact.add_argument("--out", default=None, help="output path (default: compact in place)")

    gc = sub.add_parser(
        "gc-spill",
        help="reclaim unreferenced spill mask stores and quarantine sidecars",
    )
    gc.add_argument("--spill-dir", required=True, help="spill directory to sweep")
    gc.add_argument(
        "--store",
        action="append",
        default=[],
        help="live result store (repeatable); everything older than the "
        "oldest given reference is unreferenced",
    )
    gc.add_argument(
        "--spec",
        action="append",
        default=[],
        help="live campaign spec (repeatable), same role as --store",
    )
    gc.add_argument(
        "--older-than",
        type=float,
        default=None,
        help="also reclaim anything older than this many seconds",
    )
    gc.add_argument(
        "--dry-run",
        action="store_true",
        help="list reclaimable files and bytes without deleting",
    )

    report = sub.add_parser("report", help="render a store as markdown/CSV tables")
    report.add_argument("--store", required=True, help="JSONL result store path")
    report.add_argument("--out", default=None, help="markdown output path (default: stdout)")
    report.add_argument("--csv", default=None, help="also write the flat CSV here")

    diff = sub.add_parser("diff", help="compare a store against a committed expectations file")
    diff.add_argument("--store", required=True, help="JSONL result store path")
    diff.add_argument(
        "--expectations", required=True, help="expectations JSON (see 'expectations')"
    )

    expect = sub.add_parser(
        "expectations", help="generate an expectations file from a completed store"
    )
    expect.add_argument("--store", required=True, help="JSONL result store path")
    expect.add_argument("--out", required=True, help="expectations JSON output path")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    spec = CampaignSpec.load(args.spec)
    scenarios = spec.expand()
    print(
        f"campaign {spec.name!r}: {len(scenarios)} scenarios "
        f"({len(spec.models)} models x {len(spec.attacks)} attacks x "
        f"{len(spec.criteria)} criteria x {len(spec.strategies)} strategies x "
        f"{len(spec.budgets)} budgets)"
    )
    fault_policy = None
    if args.retries is not None or args.dispatch_timeout is not None:
        overrides = {}
        if args.retries is not None:
            overrides["max_retries"] = args.retries
        if args.dispatch_timeout is not None:
            overrides["dispatch_timeout_s"] = args.dispatch_timeout
        fault_policy = FaultPolicy().with_overrides(**overrides)
    shards = args.shards if args.shards is not None else spec.shards
    distributed = shards > 1
    if distributed and args.workers is not None:
        print(
            "--workers applies to the parallel backend, not --shards; "
            "each shard worker runs its own backend",
            file=sys.stderr,
        )
        return 2
    store = None if distributed else ResultStore(args.store, durable=args.durable)
    try:
        if distributed:
            from repro.campaign.distributed import run_distributed_campaign

            summary = run_distributed_campaign(
                spec,
                args.store,
                shards=shards,
                backend=args.backend,
                progress=print,
                fault_policy=fault_policy,
                max_failures=args.max_failures,
                spill_dir=args.spill_dir,
                durable=args.durable,
                stall_timeout_s=args.stall_timeout,
            )
        else:
            summary = run_campaign(
                spec,
                store,
                backend=args.backend,
                workers=args.workers,
                progress=print,
                fault_policy=fault_policy,
                max_failures=args.max_failures,
                spill_dir=args.spill_dir,
            )
    except KeyboardInterrupt:
        # every completed scenario is already flushed to the store — resume
        # picks up with zero re-execution
        print(
            f"\ninterrupted: store {args.store} is consistent; "
            "resume with the same spec to continue",
            file=sys.stderr,
        )
        return 130
    except CampaignAbortedError as exc:
        print(f"aborted: {exc}", file=sys.stderr)
        return 3
    print(summary.describe())
    records, quarantined = _store_view(args.store)
    if args.report is not None:
        from repro.analysis.campaign import write_campaign_report

        path = write_campaign_report(records, args.report, title=spec.name)
        print(f"wrote report to {path}")
    if quarantined:
        print(
            f"{len(quarantined)} scenario(s) remain "
            "quarantined — 'resume' retries them",
            file=sys.stderr,
        )
        return 2
    return 0


def _store_view(base: str):
    """Records and quarantined digests across the base and shard stores."""
    from repro.campaign.distributed import find_shard_stores

    records = {}
    quarantined = set()
    paths = [Path(base)] + find_shard_stores(base)
    for path in paths:
        if not path.exists():
            continue
        shard = ResultStore(path)
        for record in shard.records():
            records.setdefault(record.digest, record)
        quarantined |= shard.quarantined_digests()
    return list(records.values()), quarantined - set(records)


def _cmd_merge(args: argparse.Namespace) -> int:
    from repro.campaign.distributed import find_shard_stores, merge_stores

    shard_paths = find_shard_stores(args.store)
    base = Path(args.store)
    if base.exists():
        # a previous serial run or merge participates like a shard
        shard_paths = [base] + shard_paths
    if not shard_paths:
        print(f"no shard stores found next to {args.store}", file=sys.stderr)
        return 1
    out = Path(args.out) if args.out is not None else base
    merge_stores(shard_paths, output=out, prune=args.prune)
    merged = ResultStore(out)
    pruned = " (shard stores pruned)" if args.prune else ""
    print(
        f"merged {len(shard_paths)} store(s) into {out}: "
        f"{len(merged)} records, {len(merged.failures())} quarantined{pruned}"
    )
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    from repro.campaign.distributed import compact_store

    out = Path(args.out) if args.out is not None else Path(args.store)
    compact_store(args.store, output=out)
    compacted = ResultStore(out)
    print(
        f"compacted {args.store} -> {out}: {len(compacted)} records, "
        f"{len(compacted.failures())} quarantined"
    )
    return 0


def _cmd_gc_spill(args: argparse.Namespace) -> int:
    from repro.campaign.gc import gc_spill

    try:
        report = gc_spill(
            args.spill_dir,
            stores=args.store,
            specs=args.spec,
            older_than_s=args.older_than,
            dry_run=args.dry_run,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"gc-spill: {exc}", file=sys.stderr)
        return 1
    for path in report.removed:
        print(f"{'would remove' if args.dry_run else 'removed'} {path}")
    print(report.describe())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.campaign import campaign_csv, render_campaign_report

    store = ResultStore(args.store)
    records = store.records()
    if not records:
        print(f"store {args.store} is empty — run the campaign first", file=sys.stderr)
        return 1
    text = render_campaign_report(records)
    if args.out is None:
        print(text)
    else:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        print(f"wrote report to {path} ({len(records)} scenarios)")
    if args.csv is not None:
        path = Path(args.csv)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(campaign_csv(records), encoding="utf-8")
        print(f"wrote CSV to {path}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    expectations = json.loads(Path(args.expectations).read_text(encoding="utf-8"))
    drifts = diff_against_expectations(store.records(), expectations)
    if not drifts:
        print(f"no drift: {len(store)} scenarios match {args.expectations}")
        return 0
    for drift in drifts:
        print(f"DRIFT: {drift}", file=sys.stderr)
    print(f"{len(drifts)} drifted scenario(s)", file=sys.stderr)
    return 1


def _cmd_expectations(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    records = store.records()
    if not records:
        print(f"store {args.store} is empty — run the campaign first", file=sys.stderr)
        return 1
    doc = expectations_from_records(records)
    path = Path(args.out)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"pinned {len(records)} scenarios to {path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "resume": _cmd_run,
        "merge": _cmd_merge,
        "compact": _cmd_compact,
        "gc-spill": _cmd_gc_spill,
        "report": _cmd_report,
        "diff": _cmd_diff,
        "expectations": _cmd_expectations,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
