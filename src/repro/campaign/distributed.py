"""Distributed campaign execution: work-stealing shards over per-shard stores.

Splits the digest-deduplicated scenario cross-product of a
:class:`~repro.campaign.spec.CampaignSpec` into :class:`WorkUnit` groups —
one per (model, attack) coordinate, the runner's natural sharing boundary —
and executes them on N supervised worker processes.  The layout follows the
plan/steal hybrid of classic work-stealing schedulers:

* **static partition by model** (longest-processing-time over scenario
  counts) so each worker's trained victims, memoizing engines and generated
  packages stay shard-local;
* **stealing for stragglers**: an idle worker takes units from the most
  loaded shard's queue (tail-first, so the victim keeps its locality run),
  attaching already-trained models through a digest-keyed
  :class:`ModelExchange` instead of retraining.

Each worker appends to its **own** store — ``store.jsonl`` becomes
``store.shard0.jsonl`` … ``store.shard<N-1>.jsonl`` — preserving the
single-writer invariant the append-only :class:`ResultStore` relies on.
:func:`merge_stores` / :func:`compact_store` then produce the **canonical
byte-stable form** (success records sorted by digest, then quarantined
failures sorted by digest, stale failure lines healed, torn tails dropped):
``merge`` of the shard stores is byte-identical to ``compact`` of a serial
run of the same spec, because record bytes depend only on (spec, scenario),
never on which process executed them.

Supervision reuses :mod:`repro.faults`: workers honour the
``campaign.shard`` inject site (``kill_worker`` → SIGKILL self,
``stall_worker`` → hang) for the chaos suite, and the parent polls worker
liveness, prunes a dead worker's completed digests from its in-flight unit
(re-reading that shard's store), requeues the remainder, and respawns the
worker — bounded by ``max_restarts``, after which the shard's queue is
drained by the surviving workers.  The zero-re-execution resume guarantee
therefore holds across shard boundaries and mid-run SIGKILL of any worker.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_module
import re
import shutil
import signal
import tempfile
import time
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.campaign.runner import CampaignRunner, CampaignSummary, ProgressCallback
from repro.campaign.spec import CampaignSpec, Scenario
from repro.campaign.store import FailureRecord, ResultStore, ScenarioRecord
from repro.faults import CampaignAbortedError, FaultPolicy, FaultPlan, inject
from repro.utils.logging import get_logger

logger = get_logger("campaign.distributed")

PathLike = Union[str, Path]

#: how often the parent polls worker liveness and the result queue
_POLL_S = 0.2

#: per-shard worker respawns before its queue is left to the other shards
DEFAULT_MAX_RESTARTS = 2


# ---------------------------------------------------------------------------
# shard store naming
# ---------------------------------------------------------------------------


def shard_store_path(base: PathLike, shard: int) -> Path:
    """``store.jsonl`` → ``store.shard<k>.jsonl`` (shard ``k``'s store)."""
    base = Path(base)
    suffix = base.suffix or ".jsonl"
    return base.with_name(f"{base.stem}.shard{int(shard)}{suffix}")


def find_shard_stores(base: PathLike) -> List[Path]:
    """Existing shard stores next to ``base``, ordered by shard number.

    Matches any shard count — a campaign resumed with a different
    ``--shards`` still skips everything its previous shards completed.
    """
    base = Path(base)
    suffix = base.suffix or ".jsonl"
    pattern = re.compile(re.escape(base.stem) + r"\.shard(\d+)" + re.escape(suffix) + r"$")
    found: List[Tuple[int, Path]] = []
    if base.parent.exists():
        for entry in base.parent.iterdir():
            match = pattern.fullmatch(entry.name)
            if match is not None:
                found.append((int(match.group(1)), entry))
    return [path for _, path in sorted(found)]


# ---------------------------------------------------------------------------
# planning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkUnit:
    """One (model, attack) scenario group — the unit of assignment/stealing.

    The runner shares victim training per model and the perturbation-trial
    sequence per (model, attack); splitting any finer would duplicate that
    shared work, any coarser would serialise it.
    """

    model: str
    attack: str
    scenarios: Tuple[Scenario, ...]

    def __len__(self) -> int:
        return len(self.scenarios)


def plan_shards(scenarios: Sequence[Scenario], shards: int) -> List[List[WorkUnit]]:
    """Partition ``scenarios`` into per-shard work-unit queues.

    Groups by (model, attack) preserving expansion order, then assigns whole
    *models* to shards longest-processing-time-first so training and engine
    caches stay shard-local.  When there are fewer models than shards, the
    spare shards are seeded by splitting the largest queues (locality is
    unattainable, parallelism is not).
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    units: List[WorkUnit] = []
    order: List[Tuple[str, str]] = []
    grouped: Dict[Tuple[str, str], List[Scenario]] = {}
    for scenario in scenarios:
        key = (scenario.model, scenario.attack)
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(scenario)
    for key in order:
        units.append(WorkUnit(model=key[0], attack=key[1], scenarios=tuple(grouped[key])))

    by_model: Dict[str, List[WorkUnit]] = {}
    model_order: List[str] = []
    for unit in units:
        if unit.model not in by_model:
            by_model[unit.model] = []
            model_order.append(unit.model)
        by_model[unit.model].append(unit)

    assignments: List[List[WorkUnit]] = [[] for _ in range(shards)]
    loads = [0] * shards
    # LPT over models: heaviest model first onto the least-loaded shard
    # (ties broken by model-axis order so plans are deterministic)
    for model in sorted(
        model_order,
        key=lambda m: (-sum(len(u) for u in by_model[m]), model_order.index(m)),
    ):
        target = min(range(shards), key=lambda k: (loads[k], k))
        assignments[target].extend(by_model[model])
        loads[target] += sum(len(u) for u in by_model[model])
    # fewer models than shards: split the largest queues into the empty ones
    while any(not a for a in assignments) and any(len(a) > 1 for a in assignments):
        empty = min(k for k in range(shards) if not assignments[k])
        donor = max(range(shards), key=lambda k: (len(assignments[k]), -k))
        assignments[empty].append(assignments[donor].pop())
    return assignments


# ---------------------------------------------------------------------------
# model exchange
# ---------------------------------------------------------------------------


class ModelExchange:
    """File-based digest-keyed publication of prepared (trained) models.

    The :class:`~repro.engine.ParallelBackend` publishes perturbed models to
    its pool workers by parameter digest exactly once; this is the same
    idiom at process granularity — keyed by
    :meth:`CampaignSpec.training_digest`, so a stolen work unit attaches the
    victim its home shard already trained instead of retraining it.
    Publication is atomic (tmp file + rename) and first-writer-wins;
    readers keep a local cache so each worker unpickles a model at most
    once.
    """

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._cache: Dict[str, object] = {}

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def get(self, key: str) -> Optional[object]:
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            with path.open("rb") as fh:
                prepared = pickle.load(fh)
        except Exception:  # noqa: BLE001 — a corrupt entry means retrain
            logger.warning("dropping unreadable exchange entry %s", path)
            return None
        self._cache[key] = prepared
        return prepared

    def put(self, key: str, prepared: object) -> None:
        self._cache[key] = prepared
        path = self.path_for(key)
        if path.exists():
            return
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        with tmp.open("wb") as fh:
            pickle.dump(prepared, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------


def _worker_main(
    shard: int,
    spec: CampaignSpec,
    store_path: str,
    durable: bool,
    backend: str,
    fault_policy: Optional[FaultPolicy],
    spill_dir: Optional[str],
    exchange_dir: str,
    task_queue: "multiprocessing.Queue",
    result_queue: "multiprocessing.Queue",
    fault_plan: Optional[FaultPlan],
) -> None:
    """One shard worker: pull units, run them into this shard's store.

    ``max_failures`` is parent-enforced (the blast radius is campaign-wide,
    not per-shard), so the runner here quarantines without aborting.  A
    shipped fault plan is activated for the chaos suite: the
    ``campaign.shard`` site fires per pulled unit, ``kill_worker`` SIGKILLs
    this process (respawn path) and ``stall_worker`` hangs it (stall
    detection path).
    """
    plan_scope = inject.activate(fault_plan) if fault_plan is not None else nullcontext()
    try:
        with plan_scope:
            store = ResultStore(store_path, durable=durable)
            exchange = ModelExchange(exchange_dir)
            with CampaignRunner(
                spec,
                store,
                backend=backend,
                progress=lambda msg: result_queue.put(("progress", shard, msg)),
                fault_policy=fault_policy,
                max_failures=None,
                spill_dir=spill_dir,
                model_exchange=exchange,
            ) as runner:
                result_queue.put(("ready", shard))
                while True:
                    message = task_queue.get()
                    if message[0] == "stop":
                        return
                    _, unit_index, unit = message
                    if inject.active():
                        fault = inject.check(
                            "campaign.shard",
                            shard=shard,
                            model=unit.model,
                            attack=unit.attack,
                        )
                        if fault is not None and fault.worker == shard:
                            if fault.action == "kill_worker":
                                os.kill(os.getpid(), signal.SIGKILL)
                            elif fault.action == "stall_worker":
                                time.sleep(3600.0)
                    try:
                        summary = runner.run(list(unit.scenarios))
                        result_queue.put(
                            ("done", shard, unit_index, summary.executed, summary.failed)
                        )
                    except Exception as exc:  # noqa: BLE001 — quarantine the unit
                        failed = 0
                        for scenario in unit.scenarios:
                            if scenario.digest in store:
                                continue
                            prior = store.get_failure(scenario.digest)
                            attempts = (prior.attempts if prior is not None else 0) + 1
                            store.append_failure(
                                FailureRecord.from_exception(
                                    scenario.digest,
                                    scenario.axes_dict(),
                                    scenario.seed,
                                    exc,
                                    stage="unit",
                                    attempts=attempts,
                                    campaign=spec.name,
                                )
                            )
                            failed += 1
                        result_queue.put(("done", shard, unit_index, 0, failed))
    except (KeyboardInterrupt, SystemExit):
        pass


# ---------------------------------------------------------------------------
# parent scheduler
# ---------------------------------------------------------------------------


@dataclass
class _WorkerState:
    process: object
    task_queue: object
    inflight: Optional[int] = None
    restarts: int = 0
    ready: bool = False
    retired: bool = False
    last_activity: float = field(default_factory=time.monotonic)


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover — non-POSIX hosts
        return multiprocessing.get_context("spawn")


def run_distributed_campaign(
    spec: CampaignSpec,
    store_path: PathLike,
    shards: int,
    backend: str = "numpy",
    progress: Optional[ProgressCallback] = None,
    fault_policy: Union[FaultPolicy, Dict[str, object], None] = None,
    max_failures: Optional[int] = None,
    spill_dir: Optional[PathLike] = None,
    durable: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    stall_timeout_s: Optional[float] = None,
    max_restarts: int = DEFAULT_MAX_RESTARTS,
    exchange_dir: Optional[PathLike] = None,
) -> CampaignSummary:
    """Execute ``spec``'s pending scenarios on ``shards`` worker processes.

    Resume semantics are cross-store: a scenario is pending only if its
    digest is in neither the base store (a previous serial run or merge)
    nor any existing shard store — so a re-triggered distributed campaign,
    like a serial one, executes exactly the scenarios that are missing.

    ``fault_plan`` ships a :class:`~repro.faults.FaultPlan` to the initial
    workers (chaos suite); respawned workers never re-arm it, so a
    scheduled ``kill_worker`` cannot loop.  ``stall_timeout_s`` bounds the
    silence of a worker with an assigned unit before it is killed and its
    unit requeued.  ``CampaignAbortedError`` propagates once more than
    ``max_failures`` scenarios have been quarantined campaign-wide.
    """
    start = time.perf_counter()
    spec.validate()
    if shards < 1:
        raise ValueError("shards must be at least 1")
    if not isinstance(backend, str):
        raise ValueError(
            "distributed campaigns require a backend name (workers build "
            "their own instances); got an instance/class"
        )
    if max_failures is not None and max_failures < 0:
        raise ValueError("max_failures must be non-negative")
    policy = FaultPolicy.coerce(fault_policy)
    base = Path(store_path)

    def emit(message: str) -> None:
        logger.info("%s", message)
        if progress is not None:
            progress(message)

    scenarios = spec.expand()
    completed: set = set()
    if base.exists():
        completed |= ResultStore(base).completed_digests()
    shard_paths = [shard_store_path(base, k) for k in range(shards)]
    for path in find_shard_stores(base):
        completed |= ResultStore(path).completed_digests()
    pending = [s for s in scenarios if s.digest not in completed]
    skipped = len(scenarios) - len(pending)
    if skipped:
        emit(f"resuming: {skipped}/{len(scenarios)} scenarios already stored")
    if not pending:
        return CampaignSummary(
            total=len(scenarios),
            executed=0,
            skipped=skipped,
            wall_s=time.perf_counter() - start,
        )

    assignments = plan_shards(pending, shards)
    unit_table: List[WorkUnit] = []
    home: List[deque] = []
    for shard_units in assignments:
        indices: deque = deque()
        for unit in shard_units:
            indices.append(len(unit_table))
            unit_table.append(unit)
        home.append(indices)
    emit(
        f"distributing {len(pending)} scenarios as {len(unit_table)} work "
        f"units across {shards} shards"
    )

    ctx = _mp_context()
    result_queue = ctx.Queue()
    owns_exchange = exchange_dir is None
    exchange_root = (
        Path(tempfile.mkdtemp(prefix="repro-exchange-"))
        if owns_exchange
        else Path(exchange_dir)
    )
    states: Dict[int, _WorkerState] = {}
    unit_done = [False] * len(unit_table)
    remaining_units = len(unit_table)
    failed_total = 0

    def spawn(shard: int, restarts: int, with_plan: bool) -> None:
        task_queue = ctx.Queue()
        process = ctx.Process(
            target=_worker_main,
            args=(
                shard,
                spec,
                str(shard_paths[shard]),
                durable,
                backend,
                policy,
                str(spill_dir) if spill_dir is not None else None,
                str(exchange_root),
                task_queue,
                result_queue,
                fault_plan if with_plan else None,
            ),
            daemon=True,
        )
        process.start()
        states[shard] = _WorkerState(process=process, task_queue=task_queue, restarts=restarts)

    def next_unit_index(shard: int) -> Optional[int]:
        if home[shard]:
            return home[shard].popleft()
        victims = [k for k in range(shards) if home[k]]
        if not victims:
            return None
        victim = max(victims, key=lambda k: (len(home[k]), -k))
        # steal from the tail: the victim keeps draining its own head run
        return home[victim].pop()

    def dispatch() -> None:
        for shard, state in states.items():
            if state.retired or not state.ready or state.inflight is not None:
                continue
            index = next_unit_index(shard)
            if index is None:
                continue
            unit = unit_table[index]
            state.inflight = index
            state.last_activity = time.monotonic()
            emit(
                f"[shard {shard}] unit {unit.model}/{unit.attack} "
                f"({len(unit)} scenarios)"
            )
            state.task_queue.put(("unit", index, unit))

    def mark_done(index: int) -> None:
        nonlocal remaining_units
        if not unit_done[index]:
            unit_done[index] = True
            remaining_units -= 1

    def handle_death(shard: int) -> None:
        state = states[shard]
        state.process.join()
        exitcode = state.process.exitcode
        emit(f"[shard {shard}] worker died (exit code {exitcode})")
        index = state.inflight
        state.inflight = None
        state.ready = False
        if index is not None:
            unit = unit_table[index]
            stored = (
                ResultStore(shard_paths[shard]).completed_digests()
                if shard_paths[shard].exists()
                else set()
            )
            remaining = tuple(s for s in unit.scenarios if s.digest not in stored)
            if remaining:
                unit_table[index] = WorkUnit(
                    model=unit.model, attack=unit.attack, scenarios=remaining
                )
                home[shard].appendleft(index)
                emit(
                    f"[shard {shard}] requeued {unit.model}/{unit.attack}: "
                    f"{len(remaining)}/{len(unit)} scenarios still pending"
                )
            else:
                mark_done(index)
        if state.restarts < max_restarts:
            # never re-arm the fault plan: a scheduled kill_worker would
            # fire again on the fresh hit counters and loop forever
            spawn(shard, restarts=state.restarts + 1, with_plan=False)
            emit(
                f"[shard {shard}] respawned worker "
                f"(restart {states[shard].restarts}/{max_restarts})"
            )
        else:
            state.retired = True
            emit(
                f"[shard {shard}] restart budget exhausted; its queue is "
                "left to the surviving shards"
            )

    def stop_all(force: bool = False) -> None:
        for state in states.values():
            if state.retired:
                continue
            if force:
                if state.process.is_alive():
                    state.process.terminate()
            else:
                try:
                    state.task_queue.put(("stop",))
                except (ValueError, OSError):  # pragma: no cover — queue gone
                    pass
        for state in states.values():
            if state.retired:
                continue
            state.process.join(timeout=10.0)
            if state.process.is_alive():  # pragma: no cover — hung worker
                state.process.terminate()
                state.process.join(timeout=5.0)
            state.retired = True

    try:
        for shard in range(shards):
            spawn(shard, restarts=0, with_plan=fault_plan is not None)
        while remaining_units > 0:
            dispatch()
            try:
                message = result_queue.get(timeout=_POLL_S)
            except queue_module.Empty:
                message = None
            if message is not None:
                kind = message[0]
                if kind == "ready":
                    state = states.get(message[1])
                    if state is not None:
                        state.ready = True
                        state.last_activity = time.monotonic()
                elif kind == "progress":
                    _, shard, text = message
                    state = states.get(shard)
                    if state is not None:
                        state.last_activity = time.monotonic()
                    emit(f"[shard {shard}] {text}")
                elif kind == "done":
                    _, shard, index, executed, failed = message
                    state = states.get(shard)
                    if state is not None and state.inflight == index:
                        state.inflight = None
                        state.last_activity = time.monotonic()
                    mark_done(index)
                    failed_total += int(failed)
                    if max_failures is not None and failed_total > max_failures:
                        stop_all(force=True)
                        raise CampaignAbortedError(
                            f"{failed_total} scenarios quarantined, exceeding "
                            f"--max-failures={max_failures}"
                        )
                continue
            # no message this tick: poll liveness and stalls
            now = time.monotonic()
            live = 0
            for shard, state in list(states.items()):
                if state.retired:
                    continue
                if not state.process.is_alive():
                    handle_death(shard)
                    if not states[shard].retired:
                        live += 1
                    continue
                live += 1
                if (
                    stall_timeout_s is not None
                    and state.inflight is not None
                    and now - state.last_activity > stall_timeout_s
                ):
                    emit(
                        f"[shard {shard}] stalled for more than "
                        f"{stall_timeout_s:.1f}s; killing worker"
                    )
                    state.process.kill()
                    state.process.join(timeout=5.0)
                    handle_death(shard)
            if live == 0 and remaining_units > 0:
                raise CampaignAbortedError(
                    "every shard worker died and the restart budget is "
                    f"exhausted; {remaining_units} work units remain"
                )
        stop_all()
    finally:
        stop_all(force=True)
        if owns_exchange:
            shutil.rmtree(exchange_root, ignore_errors=True)

    # this run's outcome, reloaded from the shard stores (message counters
    # can undercount around worker deaths; the stores are the truth)
    records_by_digest: Dict[str, ScenarioRecord] = {}
    failures_by_digest: Dict[str, FailureRecord] = {}
    for path in find_shard_stores(base):
        store = ResultStore(path)
        for record in store.records():
            records_by_digest.setdefault(record.digest, record)
        for failure in store.failures():
            failures_by_digest.setdefault(failure.digest, failure)
    records = [records_by_digest[s.digest] for s in pending if s.digest in records_by_digest]
    failures = [
        failures_by_digest[s.digest]
        for s in pending
        if s.digest not in records_by_digest and s.digest in failures_by_digest
    ]
    return CampaignSummary(
        total=len(scenarios),
        executed=len(records),
        skipped=skipped,
        wall_s=time.perf_counter() - start,
        records=records,
        failures=failures,
    )


# ---------------------------------------------------------------------------
# byte-stable merge / compact
# ---------------------------------------------------------------------------


def canonical_store_text(
    records: Sequence[ScenarioRecord], failures: Sequence[FailureRecord]
) -> str:
    """The canonical byte form: successes then failures, digest-sorted.

    Sorting by digest erases append order — the one thing that differs
    between a serial run, a resumed run and any shard layout — so two
    stores holding the same outcomes canonicalise to identical bytes.
    """
    lines = [r.to_json_line() for r in sorted(records, key=lambda r: r.digest)]
    lines += [f.to_json_line() for f in sorted(failures, key=lambda f: f.digest)]
    return "".join(line + "\n" for line in lines)


def _write_atomic(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def compact_store(store_path: PathLike, output: Optional[PathLike] = None) -> str:
    """Canonicalise one store (heals failures, drops torn tails, sorts).

    Returns the canonical text; with ``output`` also writes it atomically
    (``output`` may equal ``store_path`` for in-place compaction).
    """
    store = ResultStore(store_path)
    text = canonical_store_text(store.records(), store.failures())
    if output is not None:
        _write_atomic(Path(output), text)
    return text


def merge_stores(
    shard_paths: Sequence[PathLike],
    output: Optional[PathLike] = None,
    prune: bool = False,
) -> str:
    """Merge shard stores into one canonical store (byte-stable).

    A digest appearing in several stores must agree byte-for-byte (the
    distributed runner's determinism guarantee); disagreement raises.  A
    failure is kept only while no store holds a success for its digest —
    across stores, the highest attempt count wins, mirroring the
    single-store healing rules.  ``prune`` unlinks the shard stores after
    a successful write (requires ``output``).
    """
    if prune and output is None:
        raise ValueError("prune requires an output path")
    paths = [Path(p) for p in shard_paths]
    records: Dict[str, ScenarioRecord] = {}
    failures: Dict[str, FailureRecord] = {}
    for path in paths:
        store = ResultStore(path)
        for record in store.records():
            prior = records.get(record.digest)
            if prior is None:
                records[record.digest] = record
            elif prior.to_json_line() != record.to_json_line():
                raise ValueError(
                    f"conflicting records for digest {record.digest[:12]} "
                    f"(store {path}); shard stores of one campaign must "
                    "agree byte-for-byte"
                )
        for failure in store.failures():
            prior_failure = failures.get(failure.digest)
            if prior_failure is None or failure.attempts > prior_failure.attempts:
                failures[failure.digest] = failure
    for digest in records:
        failures.pop(digest, None)
    text = canonical_store_text(list(records.values()), list(failures.values()))
    if output is not None:
        _write_atomic(Path(output), text)
        if prune:
            out = Path(output).resolve()
            for path in paths:
                if path.resolve() != out and path.exists():
                    path.unlink()
    return text


__all__ = [
    "DEFAULT_MAX_RESTARTS",
    "ModelExchange",
    "WorkUnit",
    "canonical_store_text",
    "compact_store",
    "find_shard_stores",
    "merge_stores",
    "plan_shards",
    "run_distributed_campaign",
    "shard_store_path",
]
