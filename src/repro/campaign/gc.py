"""Spill-store garbage collection for campaign working directories.

The engine spills packed-mask stores into ``spill_dir`` as
content-addressed ``<op>-<digest>.masks`` files and quarantines corrupt
ones into a ``quarantine/`` sidecar directory (see
:meth:`repro.engine.Engine._spilled_masks`).  The content address binds the
model parameters and query batch, so after a spec change or a retrain the
old files are unreachable — nothing ever deletes them, and long-lived
working directories accumulate dead mask stores.

Reachability is tracked by **modification time**: the engine touches a
spill store's mtime every time a query re-maps it, so any store used by a
campaign run is at least as new as that run.  :func:`gc_spill` therefore
reclaims mask stores (and quarantine sidecars) strictly older than a
cutoff derived from the artifacts the caller still cares about — the
*oldest* mtime among the given store/spec files (anything the campaign
that produced them still maps was touched after it started, i.e. after
those files last changed began), or an absolute ``--older-than`` age.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.utils.logging import get_logger

logger = get_logger("campaign.gc")

PathLike = Union[str, Path]


@dataclass
class GCReport:
    """What one :func:`gc_spill` sweep found (and, unless dry-run, removed)."""

    spill_dir: Path
    cutoff: float
    dry_run: bool
    removed: List[Path] = field(default_factory=list)
    reclaimed_bytes: int = 0
    kept: int = 0

    def describe(self) -> str:
        verb = "would reclaim" if self.dry_run else "reclaimed"
        return (
            f"{verb} {self.reclaimed_bytes} bytes across "
            f"{len(self.removed)} file(s) in {self.spill_dir} "
            f"({self.kept} kept)"
        )


def _tree_size(path: Path) -> int:
    if path.is_file():
        return path.stat().st_size
    return sum(p.stat().st_size for p in path.rglob("*") if p.is_file())


def _remove(path: Path) -> None:
    if path.is_dir():
        for child in sorted(path.rglob("*"), reverse=True):
            if child.is_dir():
                child.rmdir()
            else:
                child.unlink()
        path.rmdir()
    else:
        path.unlink()


def gc_spill(
    spill_dir: PathLike,
    stores: Sequence[PathLike] = (),
    specs: Sequence[PathLike] = (),
    older_than_s: Optional[float] = None,
    dry_run: bool = False,
) -> GCReport:
    """Reclaim unreferenced mask stores and quarantine sidecars.

    A ``.masks`` file (or a ``quarantine/`` entry) is reclaimable when its
    mtime is older than the cutoff: the oldest mtime among ``stores`` and
    ``specs`` — every mask store a surviving campaign still maps was
    touched more recently than that — and/or ``now - older_than_s``.  At
    least one cutoff source is required; with both, the stricter (older)
    cutoff wins, so nothing a given store could still reference is removed.

    ``dry_run`` lists what would go (sizes included in the report) without
    deleting anything.
    """
    spill_dir = Path(spill_dir)
    if not spill_dir.exists():
        raise FileNotFoundError(f"spill directory {spill_dir} does not exist")
    reference_mtimes: List[float] = []
    for ref in list(stores) + list(specs):
        ref_path = Path(ref)
        if not ref_path.exists():
            raise FileNotFoundError(f"reference file {ref_path} does not exist")
        reference_mtimes.append(ref_path.stat().st_mtime)
    if not reference_mtimes and older_than_s is None:
        raise ValueError("gc_spill needs a cutoff: pass live store/spec files or older_than_s")
    cutoff = min(reference_mtimes) if reference_mtimes else float("inf")
    if older_than_s is not None:
        cutoff = min(cutoff, time.time() - float(older_than_s))

    candidates: List[Path] = sorted(spill_dir.glob("*.masks"))
    quarantine = spill_dir / "quarantine"
    if quarantine.exists():
        candidates.extend(sorted(quarantine.iterdir()))

    report = GCReport(spill_dir=spill_dir, cutoff=cutoff, dry_run=dry_run)
    for candidate in candidates:
        if candidate.stat().st_mtime >= cutoff:
            report.kept += 1
            continue
        size = _tree_size(candidate)
        report.removed.append(candidate)
        report.reclaimed_bytes += size
        if not dry_run:
            _remove(candidate)
            logger.info("reclaimed %s (%d bytes)", candidate, size)
    if not dry_run and quarantine.exists() and not any(quarantine.iterdir()):
        quarantine.rmdir()
    return report


__all__ = ["GCReport", "gc_spill"]
