"""The resumable campaign runner.

Executes the scenario cross-product of a :class:`~repro.campaign.spec
.CampaignSpec` against the existing engine stack, sharing every piece of
work that is common to several scenarios:

* **per model** — the victim is trained once and served by one memoizing
  :class:`~repro.engine.Engine` on the shared backend, so the packed-mask
  and gradient queries behind package generation are computed once per model
  rather than once per scenario;
* **per (model, criterion, strategy)** — one validation package is generated
  at the campaign's *maximum* budget; smaller budgets replay prefixes of it
  (greedy generators are prefix-stable, and always generating at max budget
  keeps non-greedy ones — e.g. ``random`` — resume-deterministic);
* **per (model, attack)** — one sequence of perturbation trials is drawn and
  every package's stacked test prefix is replayed against each perturbed
  copy in a single engine dispatch (the Tables II/III paired-trial
  protocol); on the parallel backend each perturbed copy is published by
  parameter digest exactly once and its batch is sharded across the worker
  pool.

Every random draw is seeded from the spec seed and the group's coordinates
(SHA-256, see :func:`~repro.campaign.spec.derive_scenario_seed`), never from
"what else is pending" — so a resumed campaign computes byte-identical
results for the scenarios it still has to run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.campaign.spec import CampaignSpec, Scenario, derive_scenario_seed
from repro.campaign.store import FailureRecord, ResultStore, ScenarioRecord
from repro.faults import CampaignAbortedError, FaultPolicy, inject
from repro.coverage.activation import resolve_criterion
from repro.coverage.bitmap import CoverageMap
from repro.engine import Engine, ExecutionBackend, ParallelBackend, get_backend
from repro.models.zoo import MODEL_LEARNING_RATES
from repro.registry import registry
from repro.testgen.strategies import build_generator
from repro.utils.config import TrainingConfig
from repro.utils.logging import get_logger
from repro.utils.rng import spawn
from repro.validation.detection import default_attack_factories, stack_package_prefixes
from repro.validation.package import ValidationPackage
from repro.validation.vendor import IPVendor

logger = get_logger("campaign.runner")

#: package dict key for one (criterion, strategy) coordinate
PackageKey = Tuple[str, str]

ProgressCallback = Callable[[str], None]


@dataclass
class CampaignSummary:
    """What one :meth:`CampaignRunner.run` invocation did."""

    total: int
    executed: int
    skipped: int
    wall_s: float
    records: List[ScenarioRecord] = field(default_factory=list)
    failures: List[FailureRecord] = field(default_factory=list)

    @property
    def failed(self) -> int:
        return len(self.failures)

    def describe(self) -> str:
        base = (
            f"executed {self.executed} scenarios, skipped {self.skipped} "
            f"already-completed, {self.total} total ({self.wall_s:.1f}s)"
        )
        if self.failures:
            base += f"; {self.failed} quarantined"
        return base


def _generator_kwargs(spec: CampaignSpec, strategy: str) -> Dict[str, object]:
    """The strategy's registry-declared knobs, drawn from the spec fields."""
    kwargs: Dict[str, object] = {}
    for kwarg, spec_field in registry.knobs("strategies", strategy).items():
        try:
            kwargs[kwarg] = getattr(spec, str(spec_field))
        except AttributeError as exc:
            raise ValueError(
                f"strategy {strategy!r} declares knob {kwarg!r} from spec "
                f"field {spec_field!r}, which CampaignSpec does not define"
            ) from exc
    return kwargs


def _prefix_coverages(
    package: ValidationPackage, budgets: Sequence[int]
) -> Dict[int, float]:
    """Validation coverage of the package's test prefixes, one per budget.

    Budgets are processed in increasing order so the running union extends
    incrementally instead of re-scanning from row 0 per budget.
    """
    masks = package.coverage_masks
    if masks is None:
        return {int(b): float("nan") for b in budgets}
    coverages: Dict[int, float] = {}
    union = CoverageMap(masks.nbits)
    done = 0
    for budget in sorted(int(b) for b in budgets):
        upto = min(budget, len(masks))
        for i in range(done, upto):
            union.union_(masks.row(i))
        done = upto
        coverages[budget] = union.fraction
    return coverages


class CampaignRunner:
    """Executes the pending scenarios of a campaign spec into a store.

    Parameters
    ----------
    spec: the declarative campaign definition.
    store: the append-only result store; scenarios whose digest is already
        present are skipped (resume semantics).
    backend: engine backend shared by the whole campaign — a name
        (``"numpy"``, ``"parallel"``), an instance, or a class, as accepted
        by :func:`repro.engine.get_backend`.  A passed-in instance is not
        closed by the runner.
    workers: worker count when ``backend="parallel"``.
    progress: optional callback receiving human-readable progress lines.
    fault_policy: retry/backoff/breaker policy threaded into every engine
        and an owned parallel backend (see :class:`repro.faults.FaultPolicy`).
    max_failures: abort the campaign (``CampaignAbortedError``) once more
        than this many scenarios have been quarantined in this run; ``None``
        means never abort — every failure is quarantined and the run
        completes.
    spill_dir: packed-mask spill directory for the per-model engines.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        store: ResultStore,
        backend: Union[str, ExecutionBackend, type] = "numpy",
        workers: Optional[int] = None,
        progress: Optional[ProgressCallback] = None,
        fault_policy: Union[FaultPolicy, Dict[str, object], None] = None,
        max_failures: Optional[int] = None,
        spill_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        spec.validate()
        if workers is not None and backend != "parallel":
            raise ValueError(
                "workers is only meaningful with backend='parallel'; "
                "configure instances/classes directly instead"
            )
        if max_failures is not None and max_failures < 0:
            raise ValueError("max_failures must be non-negative")
        self.spec = spec
        self.store = store
        self._backend_spec = backend
        self._workers = workers
        self._progress = progress
        self.fault_policy = FaultPolicy.coerce(fault_policy)
        self.max_failures = max_failures
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._failures: List[FailureRecord] = []

    def _emit(self, message: str) -> None:
        logger.info("%s", message)
        if self._progress is not None:
            self._progress(message)

    def _build_backend(self) -> Tuple[ExecutionBackend, bool]:
        """Resolve the shared backend; returns ``(backend, owned)``."""
        if isinstance(self._backend_spec, ExecutionBackend):
            return self._backend_spec, False
        if self._backend_spec == "parallel":
            kwargs: Dict[str, object] = {}
            if self._workers is not None:
                kwargs["workers"] = self._workers
            if self.fault_policy is not None:
                kwargs["fault_policy"] = self.fault_policy
            if kwargs:
                return ParallelBackend(**kwargs), True
        return get_backend(self._backend_spec), True

    def _quarantine(
        self, scenarios: Sequence[Scenario], stage: str, exc: Exception
    ) -> None:
        """Record ``scenarios`` as failed instead of aborting the campaign.

        Raises :class:`CampaignAbortedError` once this run's quarantine count
        exceeds ``max_failures`` — the blast-radius bound.
        """
        # an error can land mid-group after some of its scenarios were
        # already appended as successes — those stay successes
        scenarios = [s for s in scenarios if s.digest not in self.store]
        for scenario in scenarios:
            prior = self.store.get_failure(scenario.digest)
            attempts = (prior.attempts if prior is not None else 0) + 1
            failure = FailureRecord.from_exception(
                scenario.digest,
                scenario.axes_dict(),
                scenario.seed,
                exc,
                stage=stage,
                attempts=attempts,
                campaign=self.spec.name,
            )
            self.store.append_failure(failure)
            self._failures.append(failure)
        self._emit(
            f"quarantined {len(scenarios)} scenario(s) at stage {stage!r}: "
            f"{type(exc).__name__}: {exc}"
        )
        if self.max_failures is not None and len(self._failures) > self.max_failures:
            raise CampaignAbortedError(
                f"{len(self._failures)} scenarios quarantined, exceeding "
                f"--max-failures={self.max_failures}"
            ) from exc

    # -- shared-work preparation --------------------------------------------
    def _prepare_model(self, model_name: str):
        """Train the named victim once (seeded by spec seed + model only)."""
        from repro.analysis.sweep import dataset_recipe, prepare_experiment

        spec = self.spec
        seed = derive_scenario_seed(spec.seed, "train", model_name)
        # learning rate comes from the dataset's registry recipe (explicit
        # ``learning_rate`` entry, else the zoo model's default)
        recipe = dataset_recipe(model_name)
        zoo_model = str(recipe.get("model", model_name))
        training = TrainingConfig(
            epochs=spec.epochs,
            batch_size=min(32, spec.train_size),
            learning_rate=float(
                recipe.get("learning_rate", MODEL_LEARNING_RATES.get(zoo_model, 1e-3))
            ),
        )
        self._emit(
            f"[{model_name}] training victim "
            f"(train={spec.train_size}, epochs={spec.epochs})"
        )
        prepared = prepare_experiment(
            model_name,
            train_size=spec.train_size,
            test_size=spec.test_size,
            width_multiplier=spec.width_multiplier,
            training=training,
            rng=seed,
        )
        self._emit(
            f"[{model_name}] trained: accuracy {prepared.test_accuracy:.3f}, "
            f"{prepared.model.num_parameters()} parameters"
        )
        return prepared

    def _build_package(
        self, prepared, key: PackageKey, engine: Engine
    ) -> ValidationPackage:
        """One package per (criterion, strategy), always at the max budget."""
        criterion_name, strategy = key
        spec = self.spec
        criterion = resolve_criterion(criterion_name, prepared.model)
        seed = derive_scenario_seed(
            spec.seed, "package", prepared.dataset_name, criterion_name, strategy
        )
        generator = build_generator(
            strategy,
            prepared.model,
            prepared.train,
            criterion=criterion,
            rng=seed,
            engine=engine,
            **_generator_kwargs(spec, strategy),
        )
        vendor = IPVendor(prepared.model, prepared.train, criterion=criterion)
        result = generator.generate(spec.max_budget)
        # the shared per-model engine serves the mask pass too, so package
        # coverage metadata reuses the gradients generation just memoized
        package = vendor.build_package(
            result, output_atol=spec.output_atol, engine=engine
        )
        self._emit(
            f"[{prepared.dataset_name}] package {strategy}/{criterion_name}: "
            f"{package.num_tests} tests, coverage "
            f"{float(package.metadata.get('validation_coverage', float('nan'))):.3f}"
        )
        return package

    # -- execution ----------------------------------------------------------
    def run(self) -> CampaignSummary:
        """Execute every pending scenario; already-stored ones are skipped."""
        start = time.perf_counter()
        spec = self.spec
        scenarios = spec.expand()
        # quarantined digests are absent from completed_digests, so resume
        # naturally retries them
        pending = [s for s in scenarios if s.digest not in self.store]
        skipped = len(scenarios) - len(pending)
        retrying = sum(1 for s in pending if self.store.get_failure(s.digest))
        if skipped:
            self._emit(f"resuming: {skipped}/{len(scenarios)} scenarios already stored")
        if retrying:
            self._emit(f"retrying {retrying} previously-quarantined scenario(s)")
        self._failures = []
        if not pending:
            return CampaignSummary(
                total=len(scenarios),
                executed=0,
                skipped=skipped,
                wall_s=time.perf_counter() - start,
            )

        backend, owned = self._build_backend()
        records: List[ScenarioRecord] = []
        try:
            for model_name in spec.models:
                model_pending = [s for s in pending if s.model == model_name]
                if not model_pending:
                    continue
                records.extend(self._run_model(model_name, model_pending, backend))
        finally:
            if owned:
                backend.close()
        return CampaignSummary(
            total=len(scenarios),
            executed=len(records),
            skipped=skipped,
            wall_s=time.perf_counter() - start,
            records=records,
            failures=list(self._failures),
        )

    def _run_model(
        self,
        model_name: str,
        model_pending: Sequence[Scenario],
        backend: ExecutionBackend,
    ) -> List[ScenarioRecord]:
        spec = self.spec
        try:
            prepared = self._prepare_model(model_name)
        except Exception as exc:  # noqa: BLE001 — quarantine, don't abort
            self._quarantine(model_pending, "prepare", exc)
            return []
        # one memoizing engine per model: package generation for every
        # (criterion, strategy) shares its mask/gradient cache
        engine = Engine(
            prepared.model,
            backend=backend,
            fault_policy=self.fault_policy,
            spill_dir=self.spill_dir,
        )

        package_keys: List[PackageKey] = []
        for s in model_pending:
            key = (s.criterion, s.strategy)
            if key not in package_keys:
                package_keys.append(key)
        packages: Dict[PackageKey, ValidationPackage] = {}
        for key in package_keys:
            try:
                packages[key] = self._build_package(prepared, key, engine)
            except Exception as exc:  # noqa: BLE001 — quarantine, don't abort
                affected = [
                    s for s in model_pending if (s.criterion, s.strategy) == key
                ]
                self._quarantine(affected, "package", exc)
        # drop scenarios whose package failed; the rest of the group runs
        model_pending = [
            s for s in model_pending if (s.criterion, s.strategy) in packages
        ]
        if not model_pending:
            return []
        # prefix coverage is attack-independent: compute it once per
        # (package, budget) here rather than once per scenario below
        coverages = {
            key: _prefix_coverages(pkg, spec.budgets) for key, pkg in packages.items()
        }

        factories = default_attack_factories(
            prepared.test.images[: spec.reference_inputs],
            sba_magnitude=spec.sba_magnitude,
            gda_parameters=spec.gda_parameters,
            random_parameters=spec.random_parameters,
            random_relative_std=spec.random_relative_std,
        )

        records: List[ScenarioRecord] = []
        for attack_name in spec.attacks:
            group = [s for s in model_pending if s.attack == attack_name]
            if not group:
                continue
            try:
                records.extend(
                    self._run_attack_group(
                        prepared,
                        attack_name,
                        group,
                        packages,
                        coverages,
                        factories[attack_name],
                        backend,
                    )
                )
            except Exception as exc:  # noqa: BLE001 — quarantine, don't abort
                if isinstance(exc, CampaignAbortedError):
                    raise
                self._quarantine(group, "trials", exc)
        return records

    def _run_attack_group(
        self,
        prepared,
        attack_name: str,
        group: Sequence[Scenario],
        packages: Dict[PackageKey, ValidationPackage],
        coverages: Dict[PackageKey, Dict[int, float]],
        factory,
        backend: ExecutionBackend,
    ) -> List[ScenarioRecord]:
        """Paired perturbation trials shared by every scenario of one
        (model, attack) coordinate: one stacked replay per trial serves all
        of the group's criteria, strategies and budgets."""
        spec = self.spec
        model_name = prepared.dataset_name
        if inject.active():
            inject.check("campaign.scenario", model=model_name, attack=attack_name)
        needed_keys = []
        for s in group:
            key = (s.criterion, s.strategy)
            if key not in needed_keys:
                needed_keys.append(key)
        stacked = {f"{c}|{g}": packages[(c, g)] for c, g in needed_keys}
        methods, stacked_tests, expected, offsets = stack_package_prefixes(
            stacked, spec.max_budget
        )

        # the trial sequence depends only on (spec seed, model, attack), so
        # resumed campaigns replay the exact same perturbations
        trial_seed = derive_scenario_seed(spec.seed, "trials", model_name, attack_name)
        trial_rngs = spawn(trial_seed, spec.trials)
        self._emit(
            f"[{model_name}] {attack_name}: {spec.trials} trials × "
            f"{len(methods)} packages × {len(spec.budgets)} budgets "
            f"({len(group)} scenarios)"
        )

        detections: Dict[Tuple[str, int], int] = {
            (method, budget): 0 for method in methods for budget in spec.budgets
        }
        modified_counts: List[int] = []
        max_abs_deltas: List[float] = []
        # backends advertising a model-axis capacity evaluate that many
        # perturbed copies per fused dispatch; others fall back to one
        # engine pass per trial (bit-identical counts either way)
        capacity = backend.model_axis_capacity
        group_size = capacity if capacity > 0 else 1
        stacked_engine = (
            Engine(
                prepared.model,
                backend=backend,
                cache=False,
                fault_policy=self.fault_policy,
            )
            if capacity > 0
            else None
        )
        for start in range(0, spec.trials, group_size):
            copies = []
            for trial_rng in trial_rngs[start : start + group_size]:
                attack = factory(trial_rng)
                outcome = attack.apply(prepared.model)
                modified_counts.append(outcome.record.num_modified)
                max_abs_deltas.append(outcome.record.max_abs_delta)
                copies.append(outcome.model)
            if stacked_engine is not None:
                observed_group = stacked_engine.stacked_forward(copies, stacked_tests)
            else:
                # one engine dispatch per perturbed copy; the memo cache is
                # off because each copy serves exactly one batch
                observed_group = [
                    Engine(
                        copy,
                        backend=backend,
                        cache=False,
                        fault_policy=self.fault_policy,
                    ).forward(stacked_tests)
                    for copy in copies
                ]
            for observed in observed_group:
                deviations = np.abs(observed - expected).max(axis=1)
                for method in methods:
                    lo = offsets[method]
                    for budget in spec.budgets:
                        if np.any(deviations[lo : lo + budget] > spec.output_atol):
                            detections[(method, budget)] += 1

        mean_modified = float(np.mean(modified_counts)) if modified_counts else 0.0
        mean_max_delta = float(np.mean(max_abs_deltas)) if max_abs_deltas else 0.0

        records: List[ScenarioRecord] = []
        for scenario in group:  # expand() order — keeps append order stable
            method = f"{scenario.criterion}|{scenario.strategy}"
            package = packages[(scenario.criterion, scenario.strategy)]
            record = ScenarioRecord(
                digest=scenario.digest,
                scenario=scenario.axes_dict(),
                seed=scenario.seed,
                trials=spec.trials,
                detections=detections[(method, scenario.budget)],
                coverage=coverages[(scenario.criterion, scenario.strategy)][
                    scenario.budget
                ],
                campaign=spec.name,
                extra={
                    "package_coverage": float(
                        package.metadata.get("validation_coverage", float("nan"))
                    ),
                    "mean_modified_parameters": mean_modified,
                    "mean_max_abs_delta": mean_max_delta,
                },
            )
            self.store.append(record)
            records.append(record)
        return records


def run_campaign(
    spec: CampaignSpec,
    store: Union[ResultStore, str],
    backend: Union[str, ExecutionBackend, type] = "numpy",
    workers: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    fault_policy: Union[FaultPolicy, Dict[str, object], None] = None,
    max_failures: Optional[int] = None,
    spill_dir: Optional[Union[str, Path]] = None,
    durable: bool = False,
) -> CampaignSummary:
    """Convenience wrapper: run ``spec`` into ``store`` (path or instance).

    ``durable`` only applies when ``store`` is a path (an instance keeps its
    own setting).
    """
    if not isinstance(store, ResultStore):
        store = ResultStore(store, durable=durable)
    return CampaignRunner(
        spec,
        store,
        backend=backend,
        workers=workers,
        progress=progress,
        fault_policy=fault_policy,
        max_failures=max_failures,
        spill_dir=spill_dir,
    ).run()


__all__ = ["CampaignRunner", "CampaignSummary", "run_campaign"]
