"""The resumable campaign runner.

Executes the scenario cross-product of a :class:`~repro.campaign.spec
.CampaignSpec` against the existing engine stack, sharing every piece of
work that is common to several scenarios:

* **per model** — the victim is trained once and served by one memoizing
  :class:`~repro.engine.Engine` on the shared backend, so the packed-mask
  and gradient queries behind package generation are computed once per model
  rather than once per scenario;
* **per (model, criterion, strategy)** — one validation package is generated
  at the campaign's *maximum* budget; smaller budgets replay prefixes of it
  (greedy generators are prefix-stable, and always generating at max budget
  keeps non-greedy ones — e.g. ``random`` — resume-deterministic);
* **per (model, attack)** — one sequence of perturbation trials is drawn and
  every package's stacked test prefix is replayed against each perturbed
  copy in a single engine dispatch (the Tables II/III paired-trial
  protocol); on the parallel backend each perturbed copy is published by
  parameter digest exactly once and its batch is sharded across the worker
  pool.

Every random draw is seeded from the spec seed and the group's coordinates
(SHA-256, see :func:`~repro.campaign.spec.derive_scenario_seed`), never from
"what else is pending" — so a resumed campaign computes byte-identical
results for the scenarios it still has to run.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.campaign.spec import CampaignSpec, Scenario, derive_scenario_seed
from repro.campaign.store import FailureRecord, ResultStore, ScenarioRecord
from repro.faults import CampaignAbortedError, FaultPolicy, inject
from repro.coverage.activation import resolve_criterion
from repro.coverage.bitmap import CoverageMap
from repro.engine import Engine, ExecutionBackend, ParallelBackend, get_backend
from repro.models.zoo import MODEL_LEARNING_RATES
from repro.registry import registry
from repro.testgen.strategies import build_generator
from repro.utils.config import TrainingConfig
from repro.utils.logging import get_logger
from repro.utils.rng import spawn
from repro.validation.detection import default_attack_factories, stack_package_prefixes
from repro.validation.package import ValidationPackage
from repro.validation.sequential import decide_from_mismatches, entropy_order
from repro.validation.vendor import IPVendor

logger = get_logger("campaign.runner")

#: package dict key for one (criterion, strategy) coordinate
PackageKey = Tuple[str, str]

ProgressCallback = Callable[[str], None]

#: distinct models whose trained victim, memoizing engine and generated
#: packages stay resident in a runner at once — shard workers mostly touch
#: their statically-assigned models, so a small LRU keeps stolen-unit
#: evictions from growing memory with the campaign's model axis
MODEL_CACHE_SLOTS = 4


@dataclass
class CampaignSummary:
    """What one :meth:`CampaignRunner.run` invocation did."""

    total: int
    executed: int
    skipped: int
    wall_s: float
    records: List[ScenarioRecord] = field(default_factory=list)
    failures: List[FailureRecord] = field(default_factory=list)

    @property
    def failed(self) -> int:
        return len(self.failures)

    def describe(self) -> str:
        base = (
            f"executed {self.executed} scenarios, skipped {self.skipped} "
            f"already-completed, {self.total} total ({self.wall_s:.1f}s)"
        )
        if self.failures:
            base += f"; {self.failed} quarantined"
        return base


def _generator_kwargs(spec: CampaignSpec, strategy: str) -> Dict[str, object]:
    """The strategy's registry-declared knobs, drawn from the spec fields."""
    kwargs: Dict[str, object] = {}
    for kwarg, spec_field in registry.knobs("strategies", strategy).items():
        try:
            kwargs[kwarg] = getattr(spec, str(spec_field))
        except AttributeError as exc:
            raise ValueError(
                f"strategy {strategy!r} declares knob {kwarg!r} from spec "
                f"field {spec_field!r}, which CampaignSpec does not define"
            ) from exc
    return kwargs


def _prefix_coverages(package: ValidationPackage, budgets: Sequence[int]) -> Dict[int, float]:
    """Validation coverage of the package's test prefixes, one per budget.

    Budgets are processed in increasing order so the running union extends
    incrementally instead of re-scanning from row 0 per budget.
    """
    masks = package.coverage_masks
    if masks is None:
        return {int(b): float("nan") for b in budgets}
    coverages: Dict[int, float] = {}
    union = CoverageMap(masks.nbits)
    done = 0
    for budget in sorted(int(b) for b in budgets):
        upto = min(budget, len(masks))
        for i in range(done, upto):
            union.union_(masks.row(i))
        done = upto
        coverages[budget] = union.fraction
    return coverages


class CampaignRunner:
    """Executes the pending scenarios of a campaign spec into a store.

    Parameters
    ----------
    spec: the declarative campaign definition.
    store: the append-only result store; scenarios whose digest is already
        present are skipped (resume semantics).
    backend: engine backend shared by the whole campaign — a name
        (``"numpy"``, ``"parallel"``), an instance, or a class, as accepted
        by :func:`repro.engine.get_backend`.  A passed-in instance is not
        closed by the runner.
    workers: worker count when ``backend="parallel"``.
    progress: optional callback receiving human-readable progress lines.
    fault_policy: retry/backoff/breaker policy threaded into every engine
        and an owned parallel backend (see :class:`repro.faults.FaultPolicy`).
    max_failures: abort the campaign (``CampaignAbortedError``) once more
        than this many scenarios have been quarantined in this run; ``None``
        means never abort — every failure is quarantined and the run
        completes.
    spill_dir: packed-mask spill directory for the per-model engines.
    model_exchange: optional cross-process prepared-model cache (any object
        with ``get(key) -> PreparedExperiment | None`` and ``put(key,
        prepared)``, keyed by :meth:`CampaignSpec.training_digest`) — the
        distributed runner's shard workers share one
        :class:`~repro.campaign.distributed.ModelExchange` so a stolen work
        unit attaches the already-trained victim instead of retraining it.

    A runner may execute several :meth:`run` calls (the distributed shard
    workers call it once per work unit): trained models, their memoizing
    engines and generated packages are cached across calls in a small LRU
    (:data:`MODEL_CACHE_SLOTS` models), and an owned backend is built once
    and kept until :meth:`close` — use the runner as a context manager when
    running on the parallel backend.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        store: ResultStore,
        backend: Union[str, ExecutionBackend, type] = "numpy",
        workers: Optional[int] = None,
        progress: Optional[ProgressCallback] = None,
        fault_policy: Union[FaultPolicy, Dict[str, object], None] = None,
        max_failures: Optional[int] = None,
        spill_dir: Optional[Union[str, Path]] = None,
        model_exchange: Optional[object] = None,
    ) -> None:
        spec.validate()
        if workers is not None and backend != "parallel":
            raise ValueError(
                "workers is only meaningful with backend='parallel'; "
                "configure instances/classes directly instead"
            )
        if max_failures is not None and max_failures < 0:
            raise ValueError("max_failures must be non-negative")
        self.spec = spec
        self.store = store
        self._backend_spec = backend
        self._workers = workers
        self._progress = progress
        self.fault_policy = FaultPolicy.coerce(fault_policy)
        self.max_failures = max_failures
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self.model_exchange = model_exchange
        self._failures: List[FailureRecord] = []
        self._backend: Optional[ExecutionBackend] = None
        self._owns_backend = False
        #: per-model shared work, retained across run() calls:
        #: model name -> (prepared, engine, {package key: package})
        self._model_cache: "OrderedDict[str, tuple]" = OrderedDict()

    def _emit(self, message: str) -> None:
        logger.info("%s", message)
        if self._progress is not None:
            self._progress(message)

    def _build_backend(self) -> Tuple[ExecutionBackend, bool]:
        """Resolve the shared backend; returns ``(backend, owned)``."""
        if isinstance(self._backend_spec, ExecutionBackend):
            return self._backend_spec, False
        if self._backend_spec == "parallel":
            kwargs: Dict[str, object] = {}
            if self._workers is not None:
                kwargs["workers"] = self._workers
            if self.fault_policy is not None:
                kwargs["fault_policy"] = self.fault_policy
            if kwargs:
                return ParallelBackend(**kwargs), True
        return get_backend(self._backend_spec), True

    def _backend_instance(self) -> ExecutionBackend:
        """The runner's shared backend, built once and kept until close()."""
        if self._backend is None:
            self._backend, self._owns_backend = self._build_backend()
        return self._backend

    def close(self) -> None:
        """Release the owned backend and every cached per-model engine."""
        if self._backend is not None and self._owns_backend:
            self._backend.close()
        self._backend = None
        self._owns_backend = False
        self._model_cache.clear()

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _quarantine(self, scenarios: Sequence[Scenario], stage: str, exc: Exception) -> None:
        """Record ``scenarios`` as failed instead of aborting the campaign.

        Raises :class:`CampaignAbortedError` once this run's quarantine count
        exceeds ``max_failures`` — the blast-radius bound.
        """
        # an error can land mid-group after some of its scenarios were
        # already appended as successes — those stay successes
        scenarios = [s for s in scenarios if s.digest not in self.store]
        for scenario in scenarios:
            prior = self.store.get_failure(scenario.digest)
            attempts = (prior.attempts if prior is not None else 0) + 1
            failure = FailureRecord.from_exception(
                scenario.digest,
                scenario.axes_dict(),
                scenario.seed,
                exc,
                stage=stage,
                attempts=attempts,
                campaign=self.spec.name,
            )
            self.store.append_failure(failure)
            self._failures.append(failure)
        self._emit(
            f"quarantined {len(scenarios)} scenario(s) at stage {stage!r}: "
            f"{type(exc).__name__}: {exc}"
        )
        if self.max_failures is not None and len(self._failures) > self.max_failures:
            raise CampaignAbortedError(
                f"{len(self._failures)} scenarios quarantined, exceeding "
                f"--max-failures={self.max_failures}"
            ) from exc

    # -- shared-work preparation --------------------------------------------
    def _prepare_model(self, model_name: str):
        """Train the named victim once (seeded by spec seed + model only).

        With a :attr:`model_exchange` attached, an already-published
        prepared model is fetched by its training digest instead of being
        retrained — and a fresh training is published for the other shard
        workers (digest-keyed publication, exactly one training per digest
        campaign-wide in the common case).
        """
        from repro.analysis.sweep import dataset_recipe, prepare_experiment

        spec = self.spec
        exchange_key = None
        if self.model_exchange is not None:
            exchange_key = spec.training_digest(model_name)
            prepared = self.model_exchange.get(exchange_key)
            if prepared is not None:
                self._emit(
                    f"[{model_name}] attached published model "
                    f"(digest {exchange_key[:12]})"
                )
                return prepared
        seed = derive_scenario_seed(spec.seed, "train", model_name)
        # learning rate comes from the dataset's registry recipe (explicit
        # ``learning_rate`` entry, else the zoo model's default)
        recipe = dataset_recipe(model_name)
        zoo_model = str(recipe.get("model", model_name))
        training = TrainingConfig(
            epochs=spec.epochs,
            batch_size=min(32, spec.train_size),
            learning_rate=float(
                recipe.get("learning_rate", MODEL_LEARNING_RATES.get(zoo_model, 1e-3))
            ),
        )
        self._emit(
            f"[{model_name}] training victim "
            f"(train={spec.train_size}, epochs={spec.epochs})"
        )
        prepared = prepare_experiment(
            model_name,
            train_size=spec.train_size,
            test_size=spec.test_size,
            width_multiplier=spec.width_multiplier,
            training=training,
            rng=seed,
        )
        self._emit(
            f"[{model_name}] trained: accuracy {prepared.test_accuracy:.3f}, "
            f"{prepared.model.num_parameters()} parameters"
        )
        if self.model_exchange is not None and exchange_key is not None:
            self.model_exchange.put(exchange_key, prepared)
        return prepared

    def _build_package(self, prepared, key: PackageKey, engine: Engine) -> ValidationPackage:
        """One package per (criterion, strategy), always at the max budget."""
        criterion_name, strategy = key
        spec = self.spec
        criterion = resolve_criterion(criterion_name, prepared.model)
        seed = derive_scenario_seed(
            spec.seed, "package", prepared.dataset_name, criterion_name, strategy
        )
        generator = build_generator(
            strategy,
            prepared.model,
            prepared.train,
            criterion=criterion,
            rng=seed,
            engine=engine,
            **_generator_kwargs(spec, strategy),
        )
        vendor = IPVendor(prepared.model, prepared.train, criterion=criterion)
        result = generator.generate(spec.max_budget)
        # the shared per-model engine serves the mask pass too, so package
        # coverage metadata reuses the gradients generation just memoized
        package = vendor.build_package(result, output_atol=spec.output_atol, engine=engine)
        self._emit(
            f"[{prepared.dataset_name}] package {strategy}/{criterion_name}: "
            f"{package.num_tests} tests, coverage "
            f"{float(package.metadata.get('validation_coverage', float('nan'))):.3f}"
        )
        return package

    # -- execution ----------------------------------------------------------
    def run(self, scenarios: Optional[Sequence[Scenario]] = None) -> CampaignSummary:
        """Execute every pending scenario; already-stored ones are skipped.

        ``scenarios`` restricts the call to a subset of the spec's
        cross-product (the distributed runner executes one work unit per
        call); ``None`` runs the full expansion.  An owned backend persists
        across calls — :meth:`close` (or the context manager) releases it.
        """
        start = time.perf_counter()
        spec = self.spec
        if scenarios is None:
            scenarios = spec.expand()
        # quarantined digests are absent from completed_digests, so resume
        # naturally retries them
        pending = [s for s in scenarios if s.digest not in self.store]
        skipped = len(scenarios) - len(pending)
        retrying = sum(1 for s in pending if self.store.get_failure(s.digest))
        if skipped:
            self._emit(f"resuming: {skipped}/{len(scenarios)} scenarios already stored")
        if retrying:
            self._emit(f"retrying {retrying} previously-quarantined scenario(s)")
        self._failures = []
        if not pending:
            return CampaignSummary(
                total=len(scenarios),
                executed=0,
                skipped=skipped,
                wall_s=time.perf_counter() - start,
            )

        backend = self._backend_instance()
        records: List[ScenarioRecord] = []
        for model_name in spec.models:
            model_pending = [s for s in pending if s.model == model_name]
            if not model_pending:
                continue
            records.extend(self._run_model(model_name, model_pending, backend))
        return CampaignSummary(
            total=len(scenarios),
            executed=len(records),
            skipped=skipped,
            wall_s=time.perf_counter() - start,
            records=records,
            failures=list(self._failures),
        )

    def _model_context(
        self, model_name: str, backend: ExecutionBackend
    ) -> Tuple[object, Engine, Dict[PackageKey, ValidationPackage]]:
        """The model's cached (prepared, engine, packages) triple, LRU-kept.

        Raises whatever :meth:`_prepare_model` raises on a cache miss — the
        caller quarantines.  Packages are filled in lazily by
        :meth:`_run_model` as scenarios need them.
        """
        cached = self._model_cache.get(model_name)
        if cached is not None:
            self._model_cache.move_to_end(model_name)
            return cached
        prepared = self._prepare_model(model_name)
        # one memoizing engine per model: package generation for every
        # (criterion, strategy) shares its mask/gradient cache
        engine = Engine(
            prepared.model,
            backend=backend,
            fault_policy=self.fault_policy,
            spill_dir=self.spill_dir,
        )
        context = (prepared, engine, {})
        self._model_cache[model_name] = context
        while len(self._model_cache) > MODEL_CACHE_SLOTS:
            self._model_cache.popitem(last=False)
        return context

    def _run_model(
        self,
        model_name: str,
        model_pending: Sequence[Scenario],
        backend: ExecutionBackend,
    ) -> List[ScenarioRecord]:
        spec = self.spec
        try:
            prepared, engine, packages = self._model_context(model_name, backend)
        except Exception as exc:  # noqa: BLE001 — quarantine, don't abort
            self._quarantine(model_pending, "prepare", exc)
            return []

        package_keys: List[PackageKey] = []
        for s in model_pending:
            key = (s.criterion, s.strategy)
            if key not in package_keys:
                package_keys.append(key)
        for key in package_keys:
            if key in packages:
                continue
            try:
                packages[key] = self._build_package(prepared, key, engine)
            except Exception as exc:  # noqa: BLE001 — quarantine, don't abort
                affected = [s for s in model_pending if (s.criterion, s.strategy) == key]
                self._quarantine(affected, "package", exc)
        # drop scenarios whose package failed; the rest of the group runs
        model_pending = [s for s in model_pending if (s.criterion, s.strategy) in packages]
        if not model_pending:
            return []
        # prefix coverage is attack-independent: compute it once per
        # (package, budget) here rather than once per scenario below
        coverages = {key: _prefix_coverages(pkg, spec.budgets) for key, pkg in packages.items()}

        factories = default_attack_factories(
            prepared.test.images[: spec.reference_inputs],
            sba_magnitude=spec.sba_magnitude,
            gda_parameters=spec.gda_parameters,
            random_parameters=spec.random_parameters,
            random_relative_std=spec.random_relative_std,
        )

        records: List[ScenarioRecord] = []
        for attack_name in spec.attacks:
            group = [s for s in model_pending if s.attack == attack_name]
            if not group:
                continue
            try:
                records.extend(
                    self._run_attack_group(
                        prepared,
                        attack_name,
                        group,
                        packages,
                        coverages,
                        factories[attack_name],
                        backend,
                    )
                )
            except Exception as exc:  # noqa: BLE001 — quarantine, don't abort
                if isinstance(exc, CampaignAbortedError):
                    raise
                self._quarantine(group, "trials", exc)
        return records

    def _run_attack_group(
        self,
        prepared,
        attack_name: str,
        group: Sequence[Scenario],
        packages: Dict[PackageKey, ValidationPackage],
        coverages: Dict[PackageKey, Dict[int, float]],
        factory,
        backend: ExecutionBackend,
    ) -> List[ScenarioRecord]:
        """Paired perturbation trials shared by every scenario of one
        (model, attack) coordinate: one stacked replay per trial serves all
        of the group's criteria, strategies and budgets."""
        spec = self.spec
        model_name = prepared.dataset_name
        if inject.active():
            inject.check("campaign.scenario", model=model_name, attack=attack_name)
        needed_keys = []
        for s in group:
            key = (s.criterion, s.strategy)
            if key not in needed_keys:
                needed_keys.append(key)
        stacked = {f"{c}|{g}": packages[(c, g)] for c, g in needed_keys}
        methods, stacked_tests, expected, offsets = stack_package_prefixes(stacked, spec.max_budget)

        # the trial sequence depends only on (spec seed, model, attack), so
        # resumed campaigns replay the exact same perturbations
        trial_seed = derive_scenario_seed(spec.seed, "trials", model_name, attack_name)
        trial_rngs = spawn(trial_seed, spec.trials)
        self._emit(
            f"[{model_name}] {attack_name}: {spec.trials} trials × "
            f"{len(methods)} packages × {len(spec.budgets)} budgets "
            f"({len(group)} scenarios)"
        )

        detections: Dict[Tuple[str, int], int] = {
            (method, budget): 0 for method in methods for budget in spec.budgets
        }
        # sequential-mode simulation rides the same replay outputs: replay
        # each budget prefix in entropy order through the SPRT decision
        # kernel and track how many queries the verdict actually needed
        query_orders: Dict[Tuple[str, int], np.ndarray] = {
            (method, budget): entropy_order(expected[offsets[method] : offsets[method] + budget])
            for method in methods
            for budget in spec.budgets
        }
        queries_to_decision: Dict[Tuple[str, int], int] = {key: 0 for key in detections}
        modified_counts: List[int] = []
        max_abs_deltas: List[float] = []
        # backends advertising a model-axis capacity evaluate that many
        # perturbed copies per fused dispatch; others fall back to one
        # engine pass per trial (bit-identical counts either way)
        capacity = backend.model_axis_capacity
        group_size = capacity if capacity > 0 else 1
        stacked_engine = (
            Engine(
                prepared.model,
                backend=backend,
                cache=False,
                fault_policy=self.fault_policy,
            )
            if capacity > 0
            else None
        )
        for start in range(0, spec.trials, group_size):
            copies = []
            for trial_rng in trial_rngs[start : start + group_size]:
                attack = factory(trial_rng)
                outcome = attack.apply(prepared.model)
                modified_counts.append(outcome.record.num_modified)
                max_abs_deltas.append(outcome.record.max_abs_delta)
                copies.append(outcome.model)
            if stacked_engine is not None:
                observed_group = stacked_engine.stacked_forward(copies, stacked_tests)
            else:
                # one engine dispatch per perturbed copy; the memo cache is
                # off because each copy serves exactly one batch
                observed_group = [
                    Engine(
                        copy,
                        backend=backend,
                        cache=False,
                        fault_policy=self.fault_policy,
                    ).forward(stacked_tests)
                    for copy in copies
                ]
            for observed in observed_group:
                deviations = np.abs(observed - expected).max(axis=1)
                for method in methods:
                    lo = offsets[method]
                    for budget in spec.budgets:
                        mismatches = deviations[lo : lo + budget] > spec.output_atol
                        if np.any(mismatches):
                            detections[(method, budget)] += 1
                        order = query_orders[(method, budget)]
                        _, _, used, _ = decide_from_mismatches(mismatches[order])
                        queries_to_decision[(method, budget)] += used

        mean_modified = float(np.mean(modified_counts)) if modified_counts else 0.0
        mean_max_delta = float(np.mean(max_abs_deltas)) if max_abs_deltas else 0.0

        records: List[ScenarioRecord] = []
        for scenario in group:  # expand() order — keeps append order stable
            method = f"{scenario.criterion}|{scenario.strategy}"
            package = packages[(scenario.criterion, scenario.strategy)]
            record = ScenarioRecord(
                digest=scenario.digest,
                scenario=scenario.axes_dict(),
                seed=scenario.seed,
                trials=spec.trials,
                detections=detections[(method, scenario.budget)],
                coverage=coverages[(scenario.criterion, scenario.strategy)][scenario.budget],
                campaign=spec.name,
                extra={
                    "package_coverage": float(
                        package.metadata.get("validation_coverage", float("nan"))
                    ),
                    "mean_modified_parameters": mean_modified,
                    "mean_max_abs_delta": mean_max_delta,
                    "mean_queries_to_decision": (
                        queries_to_decision[(method, scenario.budget)] / spec.trials
                        if spec.trials
                        else 0.0
                    ),
                },
            )
            self.store.append(record)
            records.append(record)
        return records


def run_campaign(
    spec: CampaignSpec,
    store: Union[ResultStore, str],
    backend: Union[str, ExecutionBackend, type] = "numpy",
    workers: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    fault_policy: Union[FaultPolicy, Dict[str, object], None] = None,
    max_failures: Optional[int] = None,
    spill_dir: Optional[Union[str, Path]] = None,
    durable: bool = False,
    shards: Optional[int] = None,
) -> CampaignSummary:
    """Convenience wrapper: run ``spec`` into ``store`` (path or instance).

    ``durable`` only applies when ``store`` is a path (an instance keeps its
    own setting).  ``shards`` (default: ``spec.shards``) above 1 delegates
    to :func:`repro.campaign.distributed.run_distributed_campaign`: the
    pending cross-product executes on that many supervised worker
    processes, each appending to its own ``<store>.shard<k>.jsonl`` — run
    ``python -m repro.campaign merge`` afterwards for the combined store.
    """
    effective_shards = int(shards) if shards is not None else spec.shards
    if effective_shards < 1:
        raise ValueError("shards must be at least 1")
    if effective_shards > 1:
        from repro.campaign.distributed import run_distributed_campaign

        store_path = store.path if isinstance(store, ResultStore) else store
        return run_distributed_campaign(
            spec,
            store_path,
            shards=effective_shards,
            backend=backend,
            progress=progress,
            fault_policy=fault_policy,
            max_failures=max_failures,
            spill_dir=spill_dir,
            durable=(store.durable if isinstance(store, ResultStore) else durable),
        )
    if not isinstance(store, ResultStore):
        store = ResultStore(store, durable=durable)
    with CampaignRunner(
        spec,
        store,
        backend=backend,
        workers=workers,
        progress=progress,
        fault_policy=fault_policy,
        max_failures=max_failures,
        spill_dir=spill_dir,
    ) as runner:
        return runner.run()


__all__ = ["CampaignRunner", "CampaignSummary", "run_campaign"]
