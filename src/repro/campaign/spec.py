"""Declarative campaign specifications and their scenario expansion.

A :class:`CampaignSpec` names the *axes* of an evaluation sweep — attacks ×
models × coverage criteria × test-generation strategies × test budgets — plus
the shared preparation knobs (training sizes, trial counts, attack
magnitudes).  :meth:`CampaignSpec.expand` turns the spec into the
deterministic cross-product of :class:`Scenario` objects, each carrying

* a **seed** derived from the spec seed and the scenario's axis coordinates
  through SHA-256 (stable across processes, machines and Python hash
  randomisation), and
* a **digest** binding the coordinates, the seed, every outcome-relevant
  shared knob and the code-relevant versions together.  The digest is the
  primary key of the result store: a completed scenario is skipped on resume
  precisely when *nothing that could change its outcome* has changed.

Specs load from TOML (Python ≥ 3.11 via :mod:`tomllib`) or JSON files; both
map 1:1 onto the dataclass fields.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

PathLike = Union[str, Path]

#: bump when scenario execution semantics change incompatibly — completed
#: store entries stop matching and campaigns re-run affected scenarios
SCENARIO_SCHEMA_VERSION = 1

#: builtin model axis values (the full set is dynamic: any registry dataset
#: with an experiment recipe — see repro.analysis.preparable_datasets)
MODEL_NAMES = ("mnist", "cifar")


def _stable_digest(payload: Dict[str, object]) -> str:
    """SHA-256 hex digest of a canonical-JSON-encoded payload."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


#: throwaway model for syntax-checking criterion names at validate() time,
#: built once — specs are validated at load, expand and runner construction
_CRITERION_PROBE = None


def _criterion_probe():
    global _CRITERION_PROBE
    if _CRITERION_PROBE is None:
        from repro.models.zoo import small_mlp

        _CRITERION_PROBE = small_mlp(input_features=4, hidden_units=4, num_classes=2, depth=1)
    return _CRITERION_PROBE


def derive_scenario_seed(spec_seed: int, *coordinates: object) -> int:
    """Deterministic 63-bit seed for one scenario of a campaign.

    Uses SHA-256 over the textual coordinates instead of Python's ``hash``
    so the same spec yields the same seeds in every process — resumed and
    re-sharded campaigns replay identical randomness.
    """
    text = "|".join([str(int(spec_seed))] + [str(c) for c in coordinates])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & (2**63 - 1)


@dataclass(frozen=True)
class Scenario:
    """One fully-determined cell of a campaign's cross-product.

    The five axis coordinates identify the cell; ``seed`` is the derived
    per-scenario seed and ``digest`` the store key (both computed by
    :meth:`CampaignSpec.expand`, never supplied by hand).
    """

    model: str
    attack: str
    criterion: str
    strategy: str
    budget: int
    seed: int
    digest: str

    @property
    def key(self) -> Tuple[str, str, str, str, int]:
        """Axis coordinates only (no seed/digest), for grouping and sorting."""
        return (self.model, self.attack, self.criterion, self.strategy, self.budget)

    def axes_dict(self) -> Dict[str, object]:
        return {
            "model": self.model,
            "attack": self.attack,
            "criterion": self.criterion,
            "strategy": self.strategy,
            "budget": self.budget,
        }


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative attack × model × criterion × strategy × budget sweep.

    Axis fields enumerate the cross-product; the remaining fields are shared
    preparation knobs that apply to every scenario.  All fields participate
    in the scenario digests except ``name`` (a label, not an input).
    """

    # -- axes ---------------------------------------------------------------
    attacks: Tuple[str, ...] = ("sba", "gda", "random", "bitflip")
    models: Tuple[str, ...] = ("mnist", "cifar")
    criteria: Tuple[str, ...] = ("default",)
    strategies: Tuple[str, ...] = ("combined",)
    budgets: Tuple[int, ...] = (10, 20, 30)

    # -- shared knobs -------------------------------------------------------
    name: str = "campaign"
    seed: int = 0
    #: perturbation trials per scenario (paired across criteria/strategies/
    #: budgets of the same (model, attack), as in Tables II/III)
    trials: int = 50
    #: training-set / held-out sizes for the per-model preparation step
    train_size: int = 300
    test_size: int = 80
    epochs: int = 6
    width_multiplier: float = 0.125
    #: candidate pool scanned by the selection-based strategies
    candidate_pool: Optional[int] = 100
    #: gradient-descent updates of Algorithm 2 (combined/gradient strategies)
    gradient_updates: int = 30
    #: reference inputs handed to the input-dependent attacks (SBA, GDA)
    reference_inputs: int = 16
    #: attack magnitudes (see validation.detection.default_attack_factories)
    sba_magnitude: float = 10.0
    gda_parameters: int = 20
    random_parameters: int = 10
    random_relative_std: float = 2.0
    #: output comparison tolerance of the user-side replay
    output_atol: float = 1e-6
    #: worker-process shards of the distributed runner (execution layout,
    #: like ``name`` — never a digest ingredient: re-sharding a campaign
    #: must not re-run a single scenario)
    shards: int = 1

    def __post_init__(self) -> None:
        # tolerate lists from TOML/JSON by normalising to tuples
        for axis in ("attacks", "models", "criteria", "strategies"):
            object.__setattr__(self, axis, tuple(getattr(self, axis)))
        object.__setattr__(self, "budgets", tuple(int(b) for b in self.budgets))

    # -- validation ---------------------------------------------------------
    def validate(self) -> None:
        from repro.registry import registry
        from repro.validation.detection import available_attacks

        for axis in ("attacks", "models", "criteria", "strategies", "budgets"):
            if not getattr(self, axis):
                raise ValueError(f"campaign axis {axis!r} is empty")
        known_attacks = available_attacks()
        unknown_attacks = set(self.attacks) - set(known_attacks)
        if unknown_attacks:
            raise ValueError(
                f"unknown attacks {sorted(unknown_attacks)}; "
                f"choose from {tuple(known_attacks)}"
            )
        from repro.analysis.sweep import preparable_datasets

        known_models = preparable_datasets()
        unknown_models = set(self.models) - set(known_models)
        if unknown_models:
            raise ValueError(
                f"unknown models {sorted(unknown_models)}; "
                f"choose from {tuple(known_models)}"
            )
        known_strategies = set(registry.names("strategies"))
        unknown_strategies = set(self.strategies) - known_strategies
        if unknown_strategies:
            raise ValueError(
                f"unknown strategies {sorted(unknown_strategies)}; "
                f"choose from {sorted(known_strategies)}"
            )
        from repro.coverage.activation import resolve_criterion

        # criterion names are syntax-checked against a throwaway model so a
        # typo fails at load time, not after minutes of training
        probe = _criterion_probe()
        for criterion in self.criteria:
            resolve_criterion(criterion, probe)
        if any(b <= 0 for b in self.budgets):
            raise ValueError("budgets must be positive")
        if self.trials <= 0:
            raise ValueError("trials must be positive")
        if self.train_size <= 0 or self.test_size <= 0:
            raise ValueError("train_size and test_size must be positive")
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.width_multiplier <= 0:
            raise ValueError("width_multiplier must be positive")
        if self.candidate_pool is not None and self.candidate_pool <= 0:
            raise ValueError("candidate_pool must be positive when given")
        if self.gradient_updates <= 0:
            raise ValueError("gradient_updates must be positive")
        if self.reference_inputs <= 0:
            raise ValueError("reference_inputs must be positive")
        if self.reference_inputs > self.test_size:
            raise ValueError(
                "reference_inputs cannot exceed test_size "
                f"({self.reference_inputs} > {self.test_size})"
            )
        if self.output_atol < 0:
            raise ValueError("output_atol must be non-negative")
        if self.shards < 1:
            raise ValueError("shards must be at least 1")

    # -- expansion ----------------------------------------------------------
    @property
    def max_budget(self) -> int:
        return max(self.budgets)

    def shared_knobs(self) -> Dict[str, object]:
        """The outcome-relevant non-axis fields (digest ingredients).

        ``name`` and ``shards`` are excluded: a label and an execution
        layout respectively — changing either must not invalidate a single
        completed scenario.
        """
        data = asdict(self)
        for axis in (
            "attacks",
            "models",
            "criteria",
            "strategies",
            "budgets",
            "name",
            "shards",
        ):
            data.pop(axis)
        return data

    def training_digest(self, model: str) -> str:
        """Content key for the trained victim of ``model``.

        Binds exactly the inputs of :meth:`CampaignRunner._prepare_model` —
        spec seed, data sizes, epochs, width and the code version — so the
        distributed runner's model exchange can ship one prepared model
        between shard workers by digest (the
        :class:`~repro.engine.ParallelBackend` publication idiom at process
        granularity).
        """
        from repro import __version__

        payload = {
            "repro": __version__,
            "model": str(model),
            "seed": int(self.seed),
            "train_size": int(self.train_size),
            "test_size": int(self.test_size),
            "epochs": int(self.epochs),
            "width_multiplier": float(self.width_multiplier),
        }
        return _stable_digest(payload)

    def scenario_digest(self, axes: Dict[str, object], seed: int) -> str:
        """Store key for one scenario: axes + seed + knobs + versions."""
        from repro import __version__

        payload = {
            "schema": SCENARIO_SCHEMA_VERSION,
            "repro": __version__,
            "axes": axes,
            "seed": seed,
            "knobs": self.shared_knobs(),
            # the scenario's package is a prefix of the max-budget package,
            # so the campaign-wide max budget is an outcome input
            "max_budget": self.max_budget,
        }
        return _stable_digest(payload)

    def expand(self) -> List[Scenario]:
        """The deterministic, digest-deduplicated scenario cross-product.

        Order is the nested axis order (model, attack, criterion, strategy,
        budget) with duplicate axis values collapsing to one scenario — the
        digest is the identity, so ``attacks=("sba", "sba")`` yields each SBA
        scenario once.
        """
        self.validate()
        scenarios: List[Scenario] = []
        seen: set = set()
        for model in self.models:
            for attack in self.attacks:
                for criterion in self.criteria:
                    for strategy in self.strategies:
                        for budget in self.budgets:
                            axes = {
                                "model": model,
                                "attack": attack,
                                "criterion": criterion,
                                "strategy": strategy,
                                "budget": int(budget),
                            }
                            seed = derive_scenario_seed(
                                self.seed, model, attack, criterion, strategy, budget
                            )
                            digest = self.scenario_digest(axes, seed)
                            if digest in seen:
                                continue
                            seen.add(digest)
                            scenarios.append(
                                Scenario(
                                    model=model,
                                    attack=attack,
                                    criterion=criterion,
                                    strategy=strategy,
                                    budget=int(budget),
                                    seed=seed,
                                    digest=digest,
                                )
                            )
        return scenarios

    # -- (de)serialisation --------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown campaign spec fields {sorted(unknown)}; "
                f"known fields: {sorted(known)}"
            )
        return cls(**data)  # type: ignore[arg-type]

    @classmethod
    def load(cls, path: PathLike) -> "CampaignSpec":
        """Load a spec from a ``.toml`` or ``.json`` file.

        Fields live either inside a ``[campaign]`` table or at the top level
        (see :func:`repro.utils.config.load_table_data`, shared with the
        :mod:`repro.api` config/request loaders).
        """
        from repro.utils.config import load_table_data

        spec = cls.from_dict(load_table_data(path, "campaign", kind="spec"))
        spec.validate()
        return spec

    def save(self, path: PathLike) -> Path:
        """Write the spec as JSON (the lossless interchange format)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    def with_overrides(self, **overrides: object) -> "CampaignSpec":
        """A copy with some fields replaced (CLI flags, test shrinking)."""
        return replace(self, **overrides)  # type: ignore[arg-type]


__all__ = [
    "MODEL_NAMES",
    "SCENARIO_SCHEMA_VERSION",
    "CampaignSpec",
    "Scenario",
    "derive_scenario_seed",
]
