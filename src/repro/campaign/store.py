"""Append-only JSONL result store keyed by scenario digest.

Every completed scenario becomes one JSON line; the scenario digest (spec
hash + seed + code-relevant versions, see
:meth:`~repro.campaign.spec.CampaignSpec.scenario_digest`) is the primary
key.  The runner consults :meth:`ResultStore.completed_digests` before
executing, so an interrupted or re-triggered campaign skips everything
already on disk — and because records contain no wall-clock or host state, a
resumed campaign's store is byte-identical to an uninterrupted one.

A truncated final line (the classic kill-mid-write artefact) is tolerated on
load: the partial line is ignored with a warning and the next append starts
on a fresh line, so a crashed campaign resumes without manual repair.

Failures are first-class: a scenario that raises is **quarantined** as a
:class:`FailureRecord` line (``"kind": "failure"``) instead of aborting the
campaign.  Quarantined digests do not count as completed, so ``resume``
naturally retries them — and the success that eventually lands *replaces*
the stale failure line (via the same atomic-repair mechanism as torn-line
recovery), leaving a fully-successful store byte-identical to one from an
uninterrupted run.

``durable=True`` adds an ``fsync`` per append for crash-recovery guarantees
(default off: the OS may buffer, which is fine for resumable campaigns).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from repro.utils.logging import get_logger

logger = get_logger("campaign.store")

PathLike = Union[str, Path]

#: bump when the record layout changes incompatibly
STORE_SCHEMA_VERSION = 1


@dataclass
class ScenarioRecord:
    """One completed scenario: its identity, outcome and context.

    ``detections``/``trials`` are the raw Tables II/III counters;
    ``coverage`` is the validation coverage of the scenario's test prefix
    (from the package's packed masks).  ``extra`` carries auxiliary
    deterministic facts (perturbation statistics, package coverage at max
    budget) that reports may use but the drift gate ignores.
    """

    digest: str
    scenario: Dict[str, object]
    seed: int
    trials: int
    detections: int
    coverage: float
    campaign: str = "campaign"
    schema: int = STORE_SCHEMA_VERSION
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def detection_rate(self) -> float:
        if self.trials <= 0:
            raise ValueError("record has no trials")
        return self.detections / self.trials

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": self.schema,
            "digest": self.digest,
            "campaign": self.campaign,
            "scenario": self.scenario,
            "seed": self.seed,
            "trials": self.trials,
            "detections": self.detections,
            "detection_rate": self.detection_rate,
            "coverage": self.coverage,
            "extra": self.extra,
        }

    def to_json_line(self) -> str:
        """Canonical one-line encoding (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioRecord":
        return cls(
            digest=str(data["digest"]),
            scenario=dict(data["scenario"]),  # type: ignore[arg-type]
            seed=int(data["seed"]),  # type: ignore[arg-type]
            trials=int(data["trials"]),  # type: ignore[arg-type]
            detections=int(data["detections"]),  # type: ignore[arg-type]
            coverage=float(data["coverage"]),  # type: ignore[arg-type]
            campaign=str(data.get("campaign", "campaign")),
            schema=int(data.get("schema", STORE_SCHEMA_VERSION)),  # type: ignore[arg-type]
            extra=dict(data.get("extra", {})),  # type: ignore[arg-type]
        )


@dataclass
class FailureRecord:
    """One quarantined scenario: what failed, where, and how many times.

    Serialized into the same JSONL stream as successes, discriminated by a
    ``"kind": "failure"`` field (success lines have no ``kind``).  A failure
    never marks its digest completed — ``resume`` retries it — and the
    eventual success *replaces* the failure line in the file.
    """

    digest: str
    scenario: Dict[str, object]
    seed: int
    error: str
    message: str
    stage: str = "trials"
    attempts: int = 1
    campaign: str = "campaign"
    schema: int = STORE_SCHEMA_VERSION
    extra: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "failure",
            "schema": self.schema,
            "digest": self.digest,
            "campaign": self.campaign,
            "scenario": self.scenario,
            "seed": self.seed,
            "error": self.error,
            "message": self.message,
            "stage": self.stage,
            "attempts": self.attempts,
            "extra": self.extra,
        }

    def to_json_line(self) -> str:
        """Canonical one-line encoding (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FailureRecord":
        if data.get("kind") != "failure":
            raise ValueError("not a failure record")
        return cls(
            digest=str(data["digest"]),
            scenario=dict(data["scenario"]),  # type: ignore[arg-type]
            seed=int(data["seed"]),  # type: ignore[arg-type]
            error=str(data["error"]),
            message=str(data["message"]),
            stage=str(data.get("stage", "trials")),
            attempts=int(data.get("attempts", 1)),  # type: ignore[arg-type]
            campaign=str(data.get("campaign", "campaign")),
            schema=int(data.get("schema", STORE_SCHEMA_VERSION)),  # type: ignore[arg-type]
            extra=dict(data.get("extra", {})),  # type: ignore[arg-type]
        )

    @classmethod
    def from_exception(
        cls,
        digest: str,
        scenario: Dict[str, object],
        seed: int,
        exc: BaseException,
        stage: str = "trials",
        attempts: int = 1,
        campaign: str = "campaign",
    ) -> "FailureRecord":
        return cls(
            digest=digest,
            scenario=dict(scenario),
            seed=seed,
            error=type(exc).__name__,
            message=str(exc),
            stage=stage,
            attempts=attempts,
            campaign=campaign,
        )


class ResultStore:
    """Append-only JSONL store of scenario results and quarantined failures.

    ``durable=True`` fsyncs the file after every append (and every repair
    rewrite) so records survive power loss, at a per-append latency cost.
    """

    def __init__(self, path: PathLike, durable: bool = False) -> None:
        self.path = Path(path)
        self.durable = bool(durable)
        self._records: List[ScenarioRecord] = []
        self._digests: Set[str] = set()
        self._failures: Dict[str, FailureRecord] = {}
        #: every file line in order, verbatim — record is None for opaque
        #: lines (blanks, duplicate digests) that repairs must preserve
        self._entries: List[tuple] = []
        #: full repaired file text, written (atomically) on the next append —
        #: loading never writes, so read-only stores (CI artifacts, foreign
        #: files) can always be reported/diffed
        self._pending_repair: Optional[str] = None
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        text = self.path.read_text(encoding="utf-8")
        lines = text.splitlines()
        torn = False
        drops = False
        for lineno, line in enumerate(lines, start=1):
            stripped = line.strip()
            if not stripped:
                self._entries.append((None, line))
                continue
            try:
                data = json.loads(stripped)
            except json.JSONDecodeError:
                if lineno == len(lines) and not text.endswith("\n"):
                    # torn final line from an interrupted append — and only
                    # that: an interrupted write never got its newline out,
                    # and a truncated JSON object can never parse.  Anything
                    # else (a complete newline-terminated line that fails to
                    # parse, or bad fields below) is corruption and raises
                    # rather than being silently repaired away
                    logger.warning(
                        "dropping truncated final line %d of %s", lineno, self.path
                    )
                    torn = True
                    continue
                raise ValueError(
                    f"corrupt record at {self.path}:{lineno}"
                ) from None
            if isinstance(data, dict) and data.get("kind") == "failure":
                try:
                    failure = FailureRecord.from_dict(data)
                except (KeyError, TypeError, ValueError):
                    raise ValueError(
                        f"corrupt record at {self.path}:{lineno}"
                    ) from None
                if failure.digest in self._digests:
                    # stale: the scenario later succeeded — drop on repair
                    logger.warning(
                        "dropping stale failure for completed digest %s at %s:%d",
                        failure.digest[:12],
                        self.path,
                        lineno,
                    )
                    drops = True
                    continue
                if failure.digest in self._failures:
                    # later failure supersedes the earlier one (attempt count
                    # advanced); drop the old line on repair
                    self._entries = [
                        e
                        for e in self._entries
                        if not (
                            isinstance(e[0], FailureRecord)
                            and e[0].digest == failure.digest
                        )
                    ]
                    drops = True
                self._failures[failure.digest] = failure
                self._entries.append((failure, line))
                continue
            try:
                record = ScenarioRecord.from_dict(data)
            except (KeyError, TypeError, ValueError):
                raise ValueError(
                    f"corrupt record at {self.path}:{lineno}"
                ) from None
            if record.digest in self._digests:
                logger.warning(
                    "duplicate digest %s at %s:%d (keeping first)",
                    record.digest[:12],
                    self.path,
                    lineno,
                )
                self._entries.append((None, line))
                continue
            if record.digest in self._failures:
                # the retry succeeded: drop the quarantine line on repair
                del self._failures[record.digest]
                self._entries = [
                    e
                    for e in self._entries
                    if not (
                        isinstance(e[0], FailureRecord)
                        and e[0].digest == record.digest
                    )
                ]
                drops = True
            self._records.append(record)
            self._digests.add(record.digest)
            self._entries.append((record, line))
        if torn or drops:
            # rebuild from surviving entries: drops the torn tail and any
            # superseded failure lines, keeps everything else verbatim
            self._pending_repair = self._rebuild_text()
        elif text and not text.endswith("\n"):
            # complete final record without its newline: finish the line so
            # the next append starts cleanly
            self._pending_repair = text + "\n"

    def _rebuild_text(self) -> str:
        return "".join(line + "\n" for _, line in self._entries)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, digest: str) -> bool:
        return digest in self._digests

    def records(self) -> List[ScenarioRecord]:
        """All success records, in append order."""
        return list(self._records)

    def completed_digests(self) -> Set[str]:
        """Digests of *successful* scenarios only — failures don't count."""
        return set(self._digests)

    def get(self, digest: str) -> Optional[ScenarioRecord]:
        for record in self._records:
            if record.digest == digest:
                return record
        return None

    def failures(self) -> List[FailureRecord]:
        """Quarantined failures without a later success, in file order."""
        return [e[0] for e in self._entries if isinstance(e[0], FailureRecord)]

    def get_failure(self, digest: str) -> Optional[FailureRecord]:
        return self._failures.get(digest)

    def quarantined_digests(self) -> Set[str]:
        return set(self._failures)

    def _write_repair(self) -> None:
        # torn-tail / missing-newline / stale-failure repair deferred until
        # the first write: a temp file + atomic replace, so a crash
        # mid-repair cannot lose completed records
        tmp = self.path.with_name(self.path.name + ".repair")
        tmp.write_text(self._pending_repair, encoding="utf-8")
        if self.durable:
            with tmp.open("rb") as fh:
                os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self._pending_repair = None

    def _append_line(self, line: str) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self._pending_repair is not None:
            self._write_repair()
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            if self.durable:
                os.fsync(fh.fileno())

    def append(self, record: ScenarioRecord) -> None:
        """Durably append one success (key collision is an error).

        If the digest was previously quarantined, the stale failure line is
        dropped (atomic rewrite) before the success is appended — so a store
        whose every scenario eventually succeeded is byte-identical to one
        from a run that never failed.
        """
        if record.digest in self._digests:
            raise ValueError(
                f"digest {record.digest[:12]} is already in the store; "
                "completed scenarios must be skipped, not re-appended"
            )
        if record.digest in self._failures:
            del self._failures[record.digest]
            self._entries = [
                e
                for e in self._entries
                if not (
                    isinstance(e[0], FailureRecord)
                    and e[0].digest == record.digest
                )
            ]
            self._pending_repair = self._rebuild_text()
        line = record.to_json_line()
        self._append_line(line)
        self._records.append(record)
        self._digests.add(record.digest)
        self._entries.append((record, line))

    def append_failure(self, failure: FailureRecord) -> None:
        """Quarantine one failed scenario (replaces any earlier failure).

        Appending a failure for an already-*successful* digest is an error:
        the runner must never re-execute completed scenarios.
        """
        if failure.digest in self._digests:
            raise ValueError(
                f"digest {failure.digest[:12]} already succeeded; "
                "a completed scenario cannot be quarantined"
            )
        if failure.digest in self._failures:
            self._entries = [
                e
                for e in self._entries
                if not (
                    isinstance(e[0], FailureRecord)
                    and e[0].digest == failure.digest
                )
            ]
            self._pending_repair = self._rebuild_text()
        line = failure.to_json_line()
        self._append_line(line)
        self._failures[failure.digest] = failure
        self._entries.append((failure, line))


# ---------------------------------------------------------------------------
# expectations / drift detection
# ---------------------------------------------------------------------------


def expectations_from_records(
    records: Iterable[ScenarioRecord],
) -> Dict[str, object]:
    """Committed-expectations document for a completed campaign.

    Keys scenarios by digest and pins the detection outcome (``detections``
    of ``trials``); the human-readable axis coordinates ride along so diffs
    of the JSON file itself stay reviewable.
    """
    scenarios: Dict[str, object] = {}
    for record in records:
        scenarios[record.digest] = {
            "scenario": record.scenario,
            "detections": record.detections,
            "trials": record.trials,
        }
    return {"schema": STORE_SCHEMA_VERSION, "scenarios": scenarios}


def diff_against_expectations(
    records: Sequence[ScenarioRecord], expectations: Dict[str, object]
) -> List[str]:
    """Human-readable drift lines between a store and an expectations doc.

    Empty list means no drift.  Three drift classes: a pinned scenario is
    missing from the store, a store scenario is not pinned (spec/code drifted
    — digests no longer line up), or the detection counters changed.
    """
    expected: Dict[str, Dict[str, object]] = dict(
        expectations.get("scenarios", {})  # type: ignore[arg-type]
    )
    drifts: List[str] = []
    seen: Set[str] = set()
    for record in records:
        label = _scenario_label(record.scenario)
        pinned = expected.get(record.digest)
        if pinned is None:
            drifts.append(
                f"unexpected scenario {label} (digest {record.digest[:12]}) — "
                "not pinned in the expectations file; regenerate it if the "
                "spec or scenario schema changed intentionally"
            )
            continue
        seen.add(record.digest)
        if int(pinned["detections"]) != record.detections or int(
            pinned["trials"]
        ) != record.trials:
            drifts.append(
                f"detection drift for {label}: expected "
                f"{pinned['detections']}/{pinned['trials']}, got "
                f"{record.detections}/{record.trials}"
            )
    for digest, pinned in expected.items():
        if digest not in seen:
            drifts.append(
                f"missing scenario {_scenario_label(pinned.get('scenario', {}))} "
                f"(digest {digest[:12]}) — pinned but absent from the store"
            )
    return drifts


def _scenario_label(scenario: Dict[str, object]) -> str:
    axes = ("model", "attack", "criterion", "strategy", "budget")
    return "/".join(str(scenario.get(a, "?")) for a in axes)


__all__ = [
    "STORE_SCHEMA_VERSION",
    "FailureRecord",
    "ResultStore",
    "ScenarioRecord",
    "diff_against_expectations",
    "expectations_from_records",
]
