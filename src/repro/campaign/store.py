"""Append-only JSONL result store keyed by scenario digest.

Every completed scenario becomes one JSON line; the scenario digest (spec
hash + seed + code-relevant versions, see
:meth:`~repro.campaign.spec.CampaignSpec.scenario_digest`) is the primary
key.  The runner consults :meth:`ResultStore.completed_digests` before
executing, so an interrupted or re-triggered campaign skips everything
already on disk — and because records contain no wall-clock or host state, a
resumed campaign's store is byte-identical to an uninterrupted one.

A truncated final line (the classic kill-mid-write artefact) is tolerated on
load: the partial line is ignored with a warning and the next append starts
on a fresh line, so a crashed campaign resumes without manual repair.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from repro.utils.logging import get_logger

logger = get_logger("campaign.store")

PathLike = Union[str, Path]

#: bump when the record layout changes incompatibly
STORE_SCHEMA_VERSION = 1


@dataclass
class ScenarioRecord:
    """One completed scenario: its identity, outcome and context.

    ``detections``/``trials`` are the raw Tables II/III counters;
    ``coverage`` is the validation coverage of the scenario's test prefix
    (from the package's packed masks).  ``extra`` carries auxiliary
    deterministic facts (perturbation statistics, package coverage at max
    budget) that reports may use but the drift gate ignores.
    """

    digest: str
    scenario: Dict[str, object]
    seed: int
    trials: int
    detections: int
    coverage: float
    campaign: str = "campaign"
    schema: int = STORE_SCHEMA_VERSION
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def detection_rate(self) -> float:
        if self.trials <= 0:
            raise ValueError("record has no trials")
        return self.detections / self.trials

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": self.schema,
            "digest": self.digest,
            "campaign": self.campaign,
            "scenario": self.scenario,
            "seed": self.seed,
            "trials": self.trials,
            "detections": self.detections,
            "detection_rate": self.detection_rate,
            "coverage": self.coverage,
            "extra": self.extra,
        }

    def to_json_line(self) -> str:
        """Canonical one-line encoding (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioRecord":
        return cls(
            digest=str(data["digest"]),
            scenario=dict(data["scenario"]),  # type: ignore[arg-type]
            seed=int(data["seed"]),  # type: ignore[arg-type]
            trials=int(data["trials"]),  # type: ignore[arg-type]
            detections=int(data["detections"]),  # type: ignore[arg-type]
            coverage=float(data["coverage"]),  # type: ignore[arg-type]
            campaign=str(data.get("campaign", "campaign")),
            schema=int(data.get("schema", STORE_SCHEMA_VERSION)),  # type: ignore[arg-type]
            extra=dict(data.get("extra", {})),  # type: ignore[arg-type]
        )


class ResultStore:
    """Append-only JSONL store of :class:`ScenarioRecord` entries."""

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self._records: List[ScenarioRecord] = []
        self._digests: Set[str] = set()
        #: full repaired file text, written (atomically) on the next append —
        #: loading never writes, so read-only stores (CI artifacts, foreign
        #: files) can always be reported/diffed
        self._pending_repair: Optional[str] = None
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        text = self.path.read_text(encoding="utf-8")
        lines = text.splitlines()
        torn = False
        for lineno, line in enumerate(lines, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                data = json.loads(stripped)
            except json.JSONDecodeError:
                if lineno == len(lines) and not text.endswith("\n"):
                    # torn final line from an interrupted append — and only
                    # that: an interrupted write never got its newline out,
                    # and a truncated JSON object can never parse.  Anything
                    # else (a complete newline-terminated line that fails to
                    # parse, or bad fields below) is corruption and raises
                    # rather than being silently repaired away
                    logger.warning(
                        "dropping truncated final line %d of %s", lineno, self.path
                    )
                    torn = True
                    continue
                raise ValueError(
                    f"corrupt record at {self.path}:{lineno}"
                ) from None
            try:
                record = ScenarioRecord.from_dict(data)
            except (KeyError, TypeError, ValueError):
                raise ValueError(
                    f"corrupt record at {self.path}:{lineno}"
                ) from None
            if record.digest in self._digests:
                logger.warning(
                    "duplicate digest %s at %s:%d (keeping first)",
                    record.digest[:12],
                    self.path,
                    lineno,
                )
                continue
            self._records.append(record)
            self._digests.add(record.digest)
        if torn:
            # drop the torn tail (original record lines kept verbatim) so
            # appends start from complete records only
            self._pending_repair = "".join(line + "\n" for line in lines[:-1])
        elif text and not text.endswith("\n"):
            # complete final record without its newline: finish the line so
            # the next append starts cleanly
            self._pending_repair = text + "\n"

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, digest: str) -> bool:
        return digest in self._digests

    def records(self) -> List[ScenarioRecord]:
        """All records, in append order."""
        return list(self._records)

    def completed_digests(self) -> Set[str]:
        return set(self._digests)

    def get(self, digest: str) -> Optional[ScenarioRecord]:
        for record in self._records:
            if record.digest == digest:
                return record
        return None

    def append(self, record: ScenarioRecord) -> None:
        """Durably append one record (no-op key collision is an error)."""
        if record.digest in self._digests:
            raise ValueError(
                f"digest {record.digest[:12]} is already in the store; "
                "completed scenarios must be skipped, not re-appended"
            )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self._pending_repair is not None:
            # torn-tail / missing-newline repair deferred from load: a temp
            # file + atomic replace, so a crash mid-repair cannot lose
            # completed records
            tmp = self.path.with_name(self.path.name + ".repair")
            tmp.write_text(self._pending_repair, encoding="utf-8")
            os.replace(tmp, self.path)
            self._pending_repair = None
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(record.to_json_line() + "\n")
            fh.flush()
        self._records.append(record)
        self._digests.add(record.digest)


# ---------------------------------------------------------------------------
# expectations / drift detection
# ---------------------------------------------------------------------------


def expectations_from_records(
    records: Iterable[ScenarioRecord],
) -> Dict[str, object]:
    """Committed-expectations document for a completed campaign.

    Keys scenarios by digest and pins the detection outcome (``detections``
    of ``trials``); the human-readable axis coordinates ride along so diffs
    of the JSON file itself stay reviewable.
    """
    scenarios: Dict[str, object] = {}
    for record in records:
        scenarios[record.digest] = {
            "scenario": record.scenario,
            "detections": record.detections,
            "trials": record.trials,
        }
    return {"schema": STORE_SCHEMA_VERSION, "scenarios": scenarios}


def diff_against_expectations(
    records: Sequence[ScenarioRecord], expectations: Dict[str, object]
) -> List[str]:
    """Human-readable drift lines between a store and an expectations doc.

    Empty list means no drift.  Three drift classes: a pinned scenario is
    missing from the store, a store scenario is not pinned (spec/code drifted
    — digests no longer line up), or the detection counters changed.
    """
    expected: Dict[str, Dict[str, object]] = dict(
        expectations.get("scenarios", {})  # type: ignore[arg-type]
    )
    drifts: List[str] = []
    seen: Set[str] = set()
    for record in records:
        label = _scenario_label(record.scenario)
        pinned = expected.get(record.digest)
        if pinned is None:
            drifts.append(
                f"unexpected scenario {label} (digest {record.digest[:12]}) — "
                "not pinned in the expectations file; regenerate it if the "
                "spec or scenario schema changed intentionally"
            )
            continue
        seen.add(record.digest)
        if int(pinned["detections"]) != record.detections or int(
            pinned["trials"]
        ) != record.trials:
            drifts.append(
                f"detection drift for {label}: expected "
                f"{pinned['detections']}/{pinned['trials']}, got "
                f"{record.detections}/{record.trials}"
            )
    for digest, pinned in expected.items():
        if digest not in seen:
            drifts.append(
                f"missing scenario {_scenario_label(pinned.get('scenario', {}))} "
                f"(digest {digest[:12]}) — pinned but absent from the store"
            )
    return drifts


def _scenario_label(scenario: Dict[str, object]) -> str:
    axes = ("model", "attack", "criterion", "strategy", "budget")
    return "/".join(str(scenario.get(a, "?")) for a in axes)


__all__ = [
    "STORE_SCHEMA_VERSION",
    "ResultStore",
    "ScenarioRecord",
    "diff_against_expectations",
    "expectations_from_records",
]
