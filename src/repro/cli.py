"""The unified command-line interface: ``python -m repro``.

One front door over every operational surface of the library::

    python -m repro release  --dataset mnist --tests 12 --out release/
    python -m repro validate --package release/package.npz \\
        --model release/model.npz --arch mnist
    python -m repro verify   --package release/package.npz \\
        --remote http://127.0.0.1:8420 --model model.npz
    python -m repro campaign run --spec spec.toml --store results.jsonl
    python -m repro serve --port 8420
    python -m repro bench --quick
    python -m repro registry --namespace strategies
    python -m repro version

``campaign``, ``serve`` and ``bench`` delegate to the existing subsystem
CLIs (``python -m repro.campaign`` / ``python -m repro.serve`` /
``python -m repro.bench``), which keep working standalone; ``release`` and ``validate`` drive the
:class:`repro.api.Session` façade; ``registry`` lists the cross-subsystem
plugin registry.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Functional test generation for DNN IPs: release packages, "
            "validate black-box IPs, run campaigns and benchmarks."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    release = sub.add_parser(
        "release", help="vendor side: train a model and release a validation package"
    )
    release.add_argument("--dataset", default="mnist", help="registry dataset name")
    release.add_argument(
        "--tests", type=int, default=20, dest="num_tests", help="functional-test budget"
    )
    release.add_argument("--strategy", default="combined", help="generation strategy")
    release.add_argument("--criterion", default="default", help="coverage criterion")
    release.add_argument("--train-size", type=int, default=300)
    release.add_argument("--test-size", type=int, default=80)
    release.add_argument(
        "--epochs", type=int, default=None, help="default: the dataset recipe's epochs"
    )
    release.add_argument("--width", type=float, default=0.125, dest="width_multiplier")
    release.add_argument(
        "--pool", type=int, default=100, dest="candidate_pool", help="candidate pool size"
    )
    release.add_argument(
        "--updates", type=int, default=30, dest="gradient_updates",
        help="Algorithm 2 gradient updates",
    )
    release.add_argument("--seed", type=int, default=0)
    release.add_argument(
        "--measure-discrimination", action="store_true",
        dest="measure_discrimination",
        help="score each test's discriminative power against the surrogate "
        "attack suite and ship the scores in the package (format v3)",
    )
    release.add_argument(
        "--discrimination-trials", type=int, default=8,
        dest="discrimination_trials",
        help="perturbed copies per attack when measuring discrimination",
    )
    release.add_argument(
        "--out", required=True, help="directory for model.npz + package.npz"
    )
    _add_run_config_flags(release)

    validate = sub.add_parser(
        "validate", help="user side: replay a package against a black-box IP"
    )
    validate.add_argument("--package", required=True, help="package .npz path")
    validate.add_argument(
        "--model", required=True, dest="model_path", help="received model .npz path"
    )
    validate.add_argument(
        "--arch", default="mnist", help="registry model name to rebuild the IP"
    )
    validate.add_argument("--width", type=float, default=0.125, dest="width_multiplier")
    validate.add_argument(
        "--input-size", type=int, default=None,
        help="default: read from the model file's metadata",
    )
    validate.add_argument(
        "--expect-detected", action="store_true",
        help="exit 0 when tampering IS detected (for negative tests)",
    )
    _add_run_config_flags(validate)

    verify = sub.add_parser(
        "verify",
        help="query-budgeted online verification: sequential early-stopping "
        "replay against a local model file or a live serve endpoint",
    )
    verify.add_argument("--package", required=True, help="package .npz path")
    verify.add_argument(
        "--model", default=None, dest="model_path",
        help="model .npz path: local file, or (with --remote) the "
        "server-side path under the serve process's --artifacts-root",
    )
    verify.add_argument(
        "--remote", default=None, dest="remote_url",
        help="base URL of a live `python -m repro serve` endpoint; the IP "
        "is queried over HTTP instead of loaded locally",
    )
    verify.add_argument(
        "--arch", default="mnist", help="registry model name to rebuild the IP"
    )
    verify.add_argument("--width", type=float, default=0.125, dest="width_multiplier")
    verify.add_argument(
        "--input-size", type=int, default=None,
        help="default: read from the model file's metadata",
    )
    verify.add_argument(
        "--mode", default="sequential", choices=("sequential", "full"),
        help="sequential = SPRT early stopping (default); full = replay all",
    )
    verify.add_argument(
        "--budget", type=int, default=None, dest="query_budget",
        help="hard cap on queries before an undecided verdict",
    )
    verify.add_argument(
        "--confidence", type=float, default=0.99,
        help="target decision confidence (alpha = beta = 1 - confidence)",
    )
    verify.add_argument(
        "--transport", default=None,
        help="transports-registry name (default: http when --remote is given)",
    )
    verify.add_argument(
        "--micro-batch", type=int, default=None, dest="micro_batch",
        help="inputs per remote request",
    )
    verify.add_argument(
        "--expect-detected", action="store_true",
        help="exit 0 when tampering IS detected (for negative tests)",
    )
    _add_run_config_flags(verify)

    registry_cmd = sub.add_parser(
        "registry", help="list the cross-subsystem plugin registry"
    )
    registry_cmd.add_argument(
        "--namespace", default=None, help="restrict the listing to one namespace"
    )
    registry_cmd.add_argument(
        "--discover", action="store_true",
        help="load third-party 'repro.plugins' entry points first",
    )

    sub.add_parser("version", help="print the library version")

    for name, doc in (
        ("campaign", "declarative evaluation sweeps (python -m repro.campaign)"),
        ("serve", "validation-as-a-service HTTP endpoint (python -m repro.serve)"),
        ("bench", "engine benchmark matrix (python -m repro.bench)"),
    ):
        delegate = sub.add_parser(name, help=doc, add_help=False)
        delegate.add_argument("rest", nargs=argparse.REMAINDER)
    return parser


def _add_run_config_flags(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--backend", default="numpy", help="engine backend (numpy or parallel)"
    )
    cmd.add_argument(
        "--workers", type=int, default=None, help="parallel-backend worker count"
    )
    cmd.add_argument(
        "--dtype", default=None, help="compute dtype (float64 or float32)"
    )


def _session(args: argparse.Namespace):
    from repro.api import RunConfig, Session

    return Session(
        RunConfig(
            backend=args.backend,
            workers=args.workers,
            dtype=args.dtype,
        )
    )


def _cmd_release(args: argparse.Namespace) -> int:
    from repro.api import ReleaseRequest

    request = ReleaseRequest(
        dataset=args.dataset,
        num_tests=args.num_tests,
        strategy=args.strategy,
        criterion=args.criterion,
        train_size=args.train_size,
        test_size=args.test_size,
        epochs=args.epochs,
        width_multiplier=args.width_multiplier,
        candidate_pool=args.candidate_pool,
        gradient_updates=args.gradient_updates,
        measure_discrimination=args.measure_discrimination,
        discrimination_trials=args.discrimination_trials,
        seed=args.seed,
    )
    with _session(args) as session:
        released = session.release(request)
        paths = released.save(args.out)
    print(released.describe())
    for kind, path in sorted(paths.items()):
        print(f"wrote {kind}: {path}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.api import ValidateRequest

    request = ValidateRequest(
        package=args.package,
        model_path=args.model_path,
        arch=args.arch,
        width_multiplier=args.width_multiplier,
        input_size=args.input_size,
    )
    with _session(args) as session:
        outcome = session.validate(request)
    print(outcome.summary())
    if args.expect_detected:
        return 0 if outcome.detected else 3
    return 0 if outcome.passed else 3


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.api import ValidateRequest

    request = ValidateRequest(
        package=args.package,
        model_path=args.model_path,
        arch=args.arch,
        width_multiplier=args.width_multiplier,
        input_size=args.input_size,
        mode=args.mode,
        query_budget=args.query_budget,
        confidence=args.confidence,
        remote_url=args.remote_url,
        transport=args.transport,
        micro_batch=args.micro_batch,
    )
    with _session(args) as session:
        outcome = session.validate(request)
    print(outcome.summary())
    if outcome.ledger is not None:
        ledger = outcome.ledger
        print(
            "ledger: {queries_sent} queries in {requests} request(s), "
            "{cache_hits} cache hit(s), {retries} retried".format(
                queries_sent=ledger.get("queries_sent", 0),
                requests=ledger.get("requests", 0),
                cache_hits=ledger.get("cache_hits", 0),
                retries=ledger.get("retries", 0),
            )
        )
    if args.expect_detected:
        return 0 if outcome.detected else 3
    return 0 if outcome.passed else 3


def _cmd_registry(args: argparse.Namespace) -> int:
    from repro.registry import discover_entry_points, registry

    if args.discover:
        hooks = discover_entry_points()
        print(f"loaded {hooks} plugin hook(s)")
    namespaces = [args.namespace] if args.namespace else registry.namespaces()
    for namespace in namespaces:
        entries = registry.entries(namespace)
        print(f"[{namespace}] {len(entries)} entr{'y' if len(entries) == 1 else 'ies'}")
        for entry in entries:
            knobs = (
                "  knobs: " + ", ".join(f"{k}<-{v}" for k, v in entry.knobs.items())
                if entry.knobs
                else ""
            )
            metadata = (
                "  metadata: "
                + ", ".join(f"{k}={v}" for k, v in entry.metadata.items())
                if entry.metadata
                else ""
            )
            summary = f" — {entry.summary}" if entry.summary else ""
            print(f"  {entry.name}{summary}{knobs}{metadata}")
    return 0


def _cmd_version(args: argparse.Namespace) -> int:
    from repro import __version__

    print(__version__)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # delegate before argparse so the sub-CLIs own their --help and flags
    if argv and argv[0] == "campaign":
        from repro.campaign.__main__ import main as campaign_main

        return campaign_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serve.__main__ import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "bench":
        from repro.bench.__main__ import main as bench_main

        return bench_main(argv[1:])
    args = _parser().parse_args(argv)
    handlers = {
        "release": _cmd_release,
        "validate": _cmd_validate,
        "verify": _cmd_verify,
        "registry": _cmd_registry,
        "version": _cmd_version,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
