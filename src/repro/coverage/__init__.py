"""Coverage metrics: the paper's parameter (validation) coverage and the
neuron-coverage baseline it is compared against.

Pool masks are stored packed (:mod:`repro.coverage.bitmap` — 64 coverage
targets per uint64 word, popcount marginal gains); both metrics implement the
pluggable :class:`~repro.coverage.bitmap.CoverageCriterion` protocol.
Batched mask/coverage computation runs through :mod:`repro.engine`; the
single-sample functions remain as reference implementations."""

from repro.coverage.bitmap import (
    CoverageCriterion,
    CoverageMap,
    MaskMatrix,
    MmapMaskMatrix,
    MmapMaskWriter,
    PackedCoverageTracker,
    pack_bool,
    packed_nbytes,
    popcount,
    popcount_rows,
    unpack_words,
)
from repro.coverage.activation import (
    ActivationCriterion,
    default_criterion_for,
    resolve_criterion,
)
from repro.coverage.neuron_coverage import (
    NeuronCoverage,
    NeuronCoverageTracker,
    NeuronMaskCache,
    count_neurons,
    neuron_activation_mask,
    neuron_activation_masks,
    neuron_coverage,
    packed_neuron_masks,
)
from repro.coverage.parameter_coverage import (
    ActivationMaskCache,
    CoverageTracker,
    ParameterCoverage,
    activation_mask,
    activation_masks,
    average_sample_coverage,
    mean_validation_coverage,
    mean_validation_coverage_reference,
    packed_activation_masks,
    set_validation_coverage,
    validation_coverage,
)

__all__ = [
    "ActivationCriterion",
    "default_criterion_for",
    "resolve_criterion",
    # packed representation
    "CoverageCriterion",
    "CoverageMap",
    "MaskMatrix",
    "MmapMaskMatrix",
    "MmapMaskWriter",
    "PackedCoverageTracker",
    "pack_bool",
    "packed_nbytes",
    "popcount",
    "popcount_rows",
    "unpack_words",
    # neuron coverage
    "NeuronCoverage",
    "NeuronCoverageTracker",
    "NeuronMaskCache",
    "count_neurons",
    "neuron_activation_mask",
    "neuron_activation_masks",
    "neuron_coverage",
    "packed_neuron_masks",
    # parameter coverage
    "ActivationMaskCache",
    "CoverageTracker",
    "ParameterCoverage",
    "activation_mask",
    "activation_masks",
    "average_sample_coverage",
    "mean_validation_coverage",
    "mean_validation_coverage_reference",
    "packed_activation_masks",
    "set_validation_coverage",
    "validation_coverage",
]
