"""Coverage metrics: the paper's parameter (validation) coverage and the
neuron-coverage baseline it is compared against.

Batched mask/coverage computation runs through :mod:`repro.engine`; the
single-sample functions remain as reference implementations."""

from repro.coverage.activation import ActivationCriterion, default_criterion_for
from repro.coverage.neuron_coverage import (
    NeuronCoverageTracker,
    NeuronMaskCache,
    count_neurons,
    neuron_activation_mask,
    neuron_activation_masks,
    neuron_coverage,
)
from repro.coverage.parameter_coverage import (
    ActivationMaskCache,
    CoverageTracker,
    activation_mask,
    activation_masks,
    average_sample_coverage,
    mean_validation_coverage,
    mean_validation_coverage_reference,
    set_validation_coverage,
    validation_coverage,
)

__all__ = [
    "ActivationCriterion",
    "default_criterion_for",
    "NeuronCoverageTracker",
    "NeuronMaskCache",
    "count_neurons",
    "neuron_activation_mask",
    "neuron_activation_masks",
    "neuron_coverage",
    "ActivationMaskCache",
    "CoverageTracker",
    "activation_mask",
    "activation_masks",
    "average_sample_coverage",
    "mean_validation_coverage",
    "mean_validation_coverage_reference",
    "set_validation_coverage",
    "validation_coverage",
]
