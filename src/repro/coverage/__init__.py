"""Coverage metrics: the paper's parameter (validation) coverage and the
neuron-coverage baseline it is compared against."""

from repro.coverage.activation import ActivationCriterion, default_criterion_for
from repro.coverage.neuron_coverage import (
    NeuronCoverageTracker,
    NeuronMaskCache,
    count_neurons,
    neuron_activation_mask,
    neuron_coverage,
)
from repro.coverage.parameter_coverage import (
    ActivationMaskCache,
    CoverageTracker,
    activation_mask,
    average_sample_coverage,
    set_validation_coverage,
    validation_coverage,
)

__all__ = [
    "ActivationCriterion",
    "default_criterion_for",
    "NeuronCoverageTracker",
    "NeuronMaskCache",
    "count_neurons",
    "neuron_activation_mask",
    "neuron_coverage",
    "ActivationMaskCache",
    "CoverageTracker",
    "activation_mask",
    "average_sample_coverage",
    "set_validation_coverage",
    "validation_coverage",
]
