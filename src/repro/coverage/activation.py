"""Parameter-activation criteria (Section IV-A).

A parameter θi is *activated* by an input x when a perturbation of θi
propagates to the network output, measured through the gradient of the
(scalarised) output with respect to θi:

* for ReLU networks the criterion is exact: ``∇θi F(x) ≠ 0``;
* for saturating activations (Tanh, Sigmoid) gradients in the saturated
  region are tiny but non-zero, so the paper uses a small threshold ε:
  ``|∇θi F(x)| > ε``.

:class:`ActivationCriterion` packages that decision so the coverage trackers,
test generators and experiments all share one definition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.activations import is_exact_zero_gradient
from repro.nn.model import Sequential


@dataclass(frozen=True)
class ActivationCriterion:
    """Decides which parameter gradients count as "activated".

    Attributes
    ----------
    epsilon:
        Threshold on the absolute gradient.  ``0.0`` means strictly non-zero
        (appropriate for ReLU networks); saturating networks should use a
        small positive value such as ``1e-6``.
    scalarization:
        How the vector output ``F(x)`` is reduced to a scalar before the
        gradient is taken — ``"sum"`` (default), ``"max"`` or ``"predicted"``.
    """

    epsilon: float = 0.0
    scalarization: str = "sum"

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if self.scalarization not in ("sum", "max", "predicted"):
            raise ValueError(
                f"unknown scalarization {self.scalarization!r}; "
                "choose from 'sum', 'max', 'predicted'"
            )

    def activated(self, gradients: np.ndarray) -> np.ndarray:
        """Boolean mask of activated entries for a gradient array."""
        grads = np.asarray(gradients)
        if self.epsilon == 0.0:
            return grads != 0.0
        return np.abs(grads) > self.epsilon


def default_criterion_for(model: Sequential, scalarization: str = "sum") -> ActivationCriterion:
    """Pick the paper's default criterion for a model.

    Networks whose hidden activations all have exact-zero-gradient regions
    (ReLU) get ``ε = 0``; networks containing saturating activations (Tanh,
    Sigmoid) get a small positive ε, mirroring Section IV-A.  The saturating
    default (``ε = 1e-2``) is calibrated so that a well-trained Tanh model's
    per-sample coverage lands in the same regime the paper reports for its
    MNIST model (roughly 40–60 % per training sample) rather than counting
    every numerically-non-zero gradient as an activation.
    """
    uses_saturating = False
    for layer in model.layers:
        activation = getattr(layer, "activation", None)
        if activation is None:
            continue
        name = getattr(activation, "name", "identity")
        if name in ("identity", "softmax"):
            continue
        if not is_exact_zero_gradient(activation):
            uses_saturating = True
    epsilon = 1e-2 if uses_saturating else 0.0
    return ActivationCriterion(epsilon=epsilon, scalarization=scalarization)


def resolve_criterion(
    name: str, model: Sequential
) -> ActivationCriterion:
    """Resolve a criterion *name* (as used by campaign specs) for a model.

    Recognised names:

    * ``"default"`` — the model-appropriate criterion from
      :func:`default_criterion_for` (ε = 0 for ReLU, ε = 1e-2 saturating);
    * ``"exact"`` — strictly non-zero gradients (ε = 0);
    * ``"eps:<float>"`` — an explicit threshold, e.g. ``"eps:1e-4"``.

    Any name may carry a ``"@<scalarization>"`` suffix (``sum``, ``max`` or
    ``predicted``) to override the output scalarisation, e.g.
    ``"eps:1e-2@max"``.
    """
    scalarization = "sum"
    base = name
    if "@" in name:
        base, scalarization = name.split("@", 1)
    if base == "default":
        return default_criterion_for(model, scalarization=scalarization)
    if base == "exact":
        return ActivationCriterion(epsilon=0.0, scalarization=scalarization)
    if base.startswith("eps:"):
        try:
            epsilon = float(base.split(":", 1)[1])
        except ValueError as exc:
            raise ValueError(f"invalid criterion epsilon in {name!r}") from exc
        return ActivationCriterion(epsilon=epsilon, scalarization=scalarization)
    raise ValueError(
        f"unknown criterion {name!r}; use 'default', 'exact' or 'eps:<float>' "
        "(optionally suffixed with '@<scalarization>')"
    )


__all__ = ["ActivationCriterion", "default_criterion_for", "resolve_criterion"]
