"""Parameter-activation criteria (Section IV-A).

A parameter θi is *activated* by an input x when a perturbation of θi
propagates to the network output, measured through the gradient of the
(scalarised) output with respect to θi:

* for ReLU networks the criterion is exact: ``∇θi F(x) ≠ 0``;
* for saturating activations (Tanh, Sigmoid) gradients in the saturated
  region are tiny but non-zero, so the paper uses a small threshold ε:
  ``|∇θi F(x)| > ε``.

:class:`ActivationCriterion` packages that decision so the coverage trackers,
test generators and experiments all share one definition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.activations import is_exact_zero_gradient
from repro.nn.model import Sequential
from repro.registry import register, registry


@dataclass(frozen=True)
class ActivationCriterion:
    """Decides which parameter gradients count as "activated".

    Attributes
    ----------
    epsilon:
        Threshold on the absolute gradient.  ``0.0`` means strictly non-zero
        (appropriate for ReLU networks); saturating networks should use a
        small positive value such as ``1e-6``.
    scalarization:
        How the vector output ``F(x)`` is reduced to a scalar before the
        gradient is taken — ``"sum"`` (default), ``"max"`` or ``"predicted"``.
    """

    epsilon: float = 0.0
    scalarization: str = "sum"

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if self.scalarization not in ("sum", "max", "predicted"):
            raise ValueError(
                f"unknown scalarization {self.scalarization!r}; "
                "choose from 'sum', 'max', 'predicted'"
            )

    def activated(self, gradients: np.ndarray) -> np.ndarray:
        """Boolean mask of activated entries for a gradient array."""
        grads = np.asarray(gradients)
        if self.epsilon == 0.0:
            return grads != 0.0
        return np.abs(grads) > self.epsilon


def default_criterion_for(model: Sequential, scalarization: str = "sum") -> ActivationCriterion:
    """Pick the paper's default criterion for a model.

    Networks whose hidden activations all have exact-zero-gradient regions
    (ReLU) get ``ε = 0``; networks containing saturating activations (Tanh,
    Sigmoid) get a small positive ε, mirroring Section IV-A.  The saturating
    default (``ε = 1e-2``) is calibrated so that a well-trained Tanh model's
    per-sample coverage lands in the same regime the paper reports for its
    MNIST model (roughly 40–60 % per training sample) rather than counting
    every numerically-non-zero gradient as an activation.
    """
    uses_saturating = False
    for layer in model.layers:
        activation = getattr(layer, "activation", None)
        if activation is None:
            continue
        name = getattr(activation, "name", "identity")
        if name in ("identity", "softmax"):
            continue
        if not is_exact_zero_gradient(activation):
            uses_saturating = True
    epsilon = 1e-2 if uses_saturating else 0.0
    return ActivationCriterion(epsilon=epsilon, scalarization=scalarization)


# -- named criterion resolvers (the ``criteria`` registry namespace) --------
#
# A criterion name has the shape ``base[:argument][@scalarization]``; the
# base resolves through the cross-subsystem registry so out-of-tree criteria
# (e.g. a per-layer ε schedule) plug in with one ``register`` call.  Each
# resolver is called as ``resolver(model, argument, scalarization)``.


@register(
    "criteria",
    "default",
    summary="model-appropriate criterion: ε = 0 for ReLU, ε = 1e-2 saturating",
)
def _resolve_default(
    model: Sequential, argument: "str | None", scalarization: str
) -> ActivationCriterion:
    if argument is not None:
        raise ValueError(f"criterion 'default' takes no argument, got {argument!r}")
    return default_criterion_for(model, scalarization=scalarization)


@register("criteria", "exact", summary="strictly non-zero gradients (ε = 0)")
def _resolve_exact(
    model: Sequential, argument: "str | None", scalarization: str
) -> ActivationCriterion:
    if argument is not None:
        raise ValueError(f"criterion 'exact' takes no argument, got {argument!r}")
    return ActivationCriterion(epsilon=0.0, scalarization=scalarization)


@register("criteria", "eps", summary="explicit threshold, e.g. 'eps:1e-4'")
def _resolve_eps(
    model: Sequential, argument: "str | None", scalarization: str
) -> ActivationCriterion:
    try:
        epsilon = float(argument)  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise ValueError(f"invalid criterion epsilon in {argument!r}") from exc
    return ActivationCriterion(epsilon=epsilon, scalarization=scalarization)


def resolve_criterion(
    name: str, model: Sequential
) -> ActivationCriterion:
    """Resolve a criterion *name* (as used by campaign specs) for a model.

    Builtin names:

    * ``"default"`` — the model-appropriate criterion from
      :func:`default_criterion_for` (ε = 0 for ReLU, ε = 1e-2 saturating);
    * ``"exact"`` — strictly non-zero gradients (ε = 0);
    * ``"eps:<float>"`` — an explicit threshold, e.g. ``"eps:1e-4"``.

    Any name may carry a ``"@<scalarization>"`` suffix (``sum``, ``max`` or
    ``predicted``) to override the output scalarisation, e.g.
    ``"eps:1e-2@max"``.  Additional bases resolve through the ``criteria``
    namespace of :mod:`repro.registry`.
    """
    scalarization = "sum"
    base = name
    if "@" in name:
        base, scalarization = name.split("@", 1)
    argument: "str | None" = None
    if ":" in base:
        base, argument = base.split(":", 1)
    try:
        resolver = registry.get("criteria", base)
    except ValueError as exc:
        raise ValueError(
            f"unknown criterion {name!r}; choose a base from "
            f"{registry.names('criteria')} "
            "(optionally ':<argument>' and/or '@<scalarization>' suffixed)"
        ) from exc
    return resolver(model, argument, scalarization)  # type: ignore[return-value]


__all__ = ["ActivationCriterion", "default_criterion_for", "resolve_criterion"]
