"""Packed coverage bitsets: the memory representation behind every mask.

The paper's core loop — Algorithm 1's greedy selection maximising VC(X)
(Eq. 4-5, 7) — operates on *boolean* per-parameter activation masks, but a
dense ``(N, num_parameters)`` boolean matrix costs one byte per parameter per
candidate: a 10k-candidate pool over a 1M-parameter model is ~10 GB.  Packing
each mask into 64-bit words cuts that by 8× and turns every coverage
operation the greedy loop needs into a word-wise bit operation:

* union            → ``covered |= candidate``
* marginal gain    → ``popcount(candidate & ~covered)`` (Eq. 7)
* set coverage     → ``popcount(OR over rows) / nbits`` (Eq. 4-5)

This module owns the packed representation end to end:

* :func:`pack_bool` / :func:`unpack_words` — packbits-style conversion
  between dense boolean arrays and little-endian uint64 word arrays;
* :func:`popcount` / :func:`popcount_rows` — vectorised set-bit counting;
* :class:`CoverageMap` — one packed bitset (the "covered parameters" state);
* :class:`MaskMatrix` — a packed ``(N, nbits)`` candidate-pool matrix with
  the greedy loop's marginal-gain and argmax primitives;
* :class:`PackedCoverageTracker` — the shared incremental-union bookkeeping
  that the parameter- and neuron-coverage trackers extend;
* :class:`CoverageCriterion` — the pluggable ``criterion → MaskMatrix``
  protocol implemented by parameter and neuron coverage (and open to new
  criteria; see the README's extension notes).

Exact equivalence with the dense representation is a hard requirement:
packing is lossless, popcounts equal dense ``sum`` counts bit for bit, and
:meth:`MaskMatrix.best_candidate` reproduces dense ``np.argmax`` tie-breaking
(first index wins), so packed greedy selection picks byte-identical test
sequences.

The module is pure NumPy with no dependency on the rest of the library
(except the dependency-free :mod:`repro.faults` chaos hooks), so the engine
and its backends can use the packing primitives without layering cycles.
"""

from __future__ import annotations

import logging
import os
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.faults import inject as _inject

logger = logging.getLogger("repro.coverage.bitmap")

#: bits per storage word
WORD_BITS = 64

#: bytes per storage word
WORD_BYTES = 8

#: number of set bits for every uint8 value — the vectorised popcount kernel
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

DenseLike = Union[np.ndarray, Sequence[bool]]


def num_words(nbits: int) -> int:
    """Storage words needed for ``nbits`` bits."""
    if nbits < 0:
        raise ValueError("nbits must be non-negative")
    return (nbits + WORD_BITS - 1) // WORD_BITS


def packed_nbytes(nbits: int, rows: int = 1) -> int:
    """Bytes a packed representation of ``rows × nbits`` masks occupies."""
    return rows * num_words(nbits) * WORD_BYTES


def pack_bool(dense: DenseLike) -> np.ndarray:
    """Pack a boolean array's last axis into little-endian uint64 words.

    ``(..., nbits)`` bool → ``(..., num_words(nbits))`` uint64.  Bit ``i`` of
    the flattened word stream corresponds to dense entry ``i``; tail bits of
    the last word are zero.
    """
    dense = np.asarray(dense, dtype=bool)
    nbits = dense.shape[-1]
    words = num_words(nbits)
    packed8 = np.packbits(dense, axis=-1, bitorder="little")
    pad = words * WORD_BYTES - packed8.shape[-1]
    if pad:
        packed8 = np.concatenate(
            [packed8, np.zeros((*packed8.shape[:-1], pad), dtype=np.uint8)], axis=-1
        )
    return np.ascontiguousarray(packed8).view(np.uint64)


def unpack_words(words: np.ndarray, nbits: int) -> np.ndarray:
    """Inverse of :func:`pack_bool`: uint64 words → dense boolean array."""
    words = np.asarray(words, dtype=np.uint64)
    if words.shape[-1] != num_words(nbits):
        raise ValueError(
            f"word array has {words.shape[-1]} words on its last axis, "
            f"expected {num_words(nbits)} for {nbits} bits"
        )
    if nbits == 0:
        return np.zeros((*words.shape[:-1], 0), dtype=bool)
    u8 = np.ascontiguousarray(words).view(np.uint8)
    return np.unpackbits(u8, axis=-1, count=nbits, bitorder="little").astype(bool)


def popcount(words: np.ndarray) -> int:
    """Total number of set bits in a word array."""
    u8 = np.ascontiguousarray(np.asarray(words, dtype=np.uint64)).view(np.uint8)
    return int(_POPCOUNT8[u8].sum(dtype=np.int64))


def popcount_rows(words: np.ndarray) -> np.ndarray:
    """Per-row set-bit counts of a ``(N, W)`` word matrix, shape ``(N,)``."""
    words = np.asarray(words, dtype=np.uint64)
    if words.ndim != 2:
        raise ValueError(f"expected a 2-D word matrix, got shape {words.shape}")
    if words.shape[1] == 0:
        return np.zeros(words.shape[0], dtype=np.int64)
    u8 = np.ascontiguousarray(words).view(np.uint8)
    return _POPCOUNT8[u8].sum(axis=1, dtype=np.int64)


def _tail_mask(nbits: int) -> Optional[int]:
    """Word-sized mask zeroing the unused tail bits, or None when aligned."""
    rem = nbits % WORD_BITS
    if rem == 0:
        return None
    return (1 << rem) - 1


class CoverageMap:
    """One packed bitset over ``nbits`` coverage targets.

    The mutable "covered so far" state of the greedy algorithms, plus an
    immutable-style value type for single candidate masks.  All binary
    operations require matching ``nbits``.
    """

    __slots__ = ("nbits", "words")

    def __init__(self, nbits: int, words: Optional[np.ndarray] = None) -> None:
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        self.nbits = int(nbits)
        if words is None:
            self.words = np.zeros(num_words(nbits), dtype=np.uint64)
        else:
            words = np.asarray(words, dtype=np.uint64)
            if words.shape != (num_words(nbits),):
                raise ValueError(
                    f"words has shape {words.shape}, expected "
                    f"({num_words(nbits)},) for {nbits} bits"
                )
            self.words = words

    # -- construction --------------------------------------------------------
    @classmethod
    def from_dense(cls, mask: DenseLike) -> "CoverageMap":
        """Pack a dense boolean mask."""
        mask = np.asarray(mask, dtype=bool).ravel()
        return cls(mask.size, pack_bool(mask))

    def copy(self) -> "CoverageMap":
        return CoverageMap(self.nbits, self.words.copy())

    # -- state ---------------------------------------------------------------
    def dense(self) -> np.ndarray:
        """Dense boolean view of this bitset (materialises ``nbits`` bytes)."""
        return unpack_words(self.words, self.nbits)

    def count(self) -> int:
        """Number of set bits (``popcount``)."""
        return popcount(self.words)

    @property
    def fraction(self) -> float:
        """Fraction of bits set — the coverage value VC."""
        if self.nbits == 0:
            raise ValueError("coverage fraction of a 0-bit map is undefined")
        return self.count() / self.nbits

    def any(self) -> bool:
        return bool(self.words.any())

    @property
    def nbytes(self) -> int:
        return int(self.words.nbytes)

    # -- mutation ------------------------------------------------------------
    def clear_(self) -> None:
        self.words[:] = 0

    def union_(self, other: "CoverageMap") -> "CoverageMap":
        """In-place union (``self |= other``); returns self."""
        self._check(other)
        np.bitwise_or(self.words, other.words, out=self.words)
        return self

    # -- pure binary operations ----------------------------------------------
    def union(self, other: "CoverageMap") -> "CoverageMap":
        self._check(other)
        return CoverageMap(self.nbits, self.words | other.words)

    def intersection(self, other: "CoverageMap") -> "CoverageMap":
        self._check(other)
        return CoverageMap(self.nbits, self.words & other.words)

    def andnot(self, other: "CoverageMap") -> "CoverageMap":
        """Bits set in self but not in other (``self & ~other``)."""
        self._check(other)
        return CoverageMap(self.nbits, self.words & ~other.words)

    def complement(self) -> "CoverageMap":
        """Bits not set in self (tail bits stay zero)."""
        words = ~self.words
        tail = _tail_mask(self.nbits)
        if tail is not None and words.size:
            words[-1] &= np.uint64(tail)
        return CoverageMap(self.nbits, words)

    # -- counting shortcuts (no intermediate map allocation) ------------------
    def intersection_count(self, other: "CoverageMap") -> int:
        self._check(other)
        return popcount(self.words & other.words)

    def andnot_count(self, *others: "CoverageMap") -> int:
        """``popcount(self & ~o1 & ~o2 & ...)`` — the Eq. 7 marginal gain."""
        acc = self.words
        for other in others:
            self._check(other)
            acc = acc & ~other.words
        return popcount(acc)

    # -- comparisons -----------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CoverageMap):
            return NotImplemented
        return self.nbits == other.nbits and bool(np.array_equal(self.words, other.words))

    def __hash__(self) -> int:  # maps are mutable; identity hashing only
        return id(self)

    def _check(self, other: "CoverageMap") -> None:
        if not isinstance(other, CoverageMap):
            raise TypeError(f"expected a CoverageMap, got {type(other).__name__}")
        if other.nbits != self.nbits:
            raise ValueError(
                f"bitset size mismatch: {other.nbits} bits vs {self.nbits} bits"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CoverageMap(nbits={self.nbits}, count={self.count()})"


def as_coverage_map(mask: Union[CoverageMap, DenseLike], nbits: int) -> CoverageMap:
    """Coerce a dense boolean mask (or pass through a CoverageMap) to packed.

    The single conversion point used by the trackers so every public API
    accepts either representation.
    """
    if isinstance(mask, CoverageMap):
        if mask.nbits != nbits:
            raise ValueError(
                f"mask has {mask.nbits} bits, expected {nbits} "
                "(one per coverage target)"
            )
        return mask
    dense = np.asarray(mask, dtype=bool).ravel()
    if dense.size != nbits:
        raise ValueError(
            f"mask has {dense.size} entries, expected {nbits} "
            "(one per coverage target)"
        )
    return CoverageMap(nbits, pack_bool(dense))


class MaskMatrix:
    """Packed ``(N, nbits)`` candidate-pool mask matrix.

    Stores one packed mask per candidate; 1/8 the bytes of the dense boolean
    matrix.  Provides the greedy loop's primitives: per-candidate marginal
    gain counts against a covered map, deterministic argmax with dense
    tie-breaking, and union over rows.
    """

    __slots__ = ("nbits", "words")

    def __init__(self, nbits: int, words: np.ndarray) -> None:
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        words = np.asarray(words, dtype=np.uint64)
        if words.ndim != 2 or words.shape[1] != num_words(nbits):
            raise ValueError(
                f"words has shape {words.shape}, expected "
                f"(N, {num_words(nbits)}) for {nbits} bits"
            )
        self.nbits = int(nbits)
        self.words = words

    # -- construction --------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: DenseLike) -> "MaskMatrix":
        """Pack a dense ``(N, nbits)`` boolean matrix."""
        dense = np.asarray(dense, dtype=bool)
        if dense.ndim != 2:
            raise ValueError(f"expected a 2-D mask matrix, got shape {dense.shape}")
        return cls(dense.shape[1], pack_bool(dense))

    @classmethod
    def from_chunks(cls, chunks: Iterable[np.ndarray], nbits: int) -> "MaskMatrix":
        """Build from a stream of dense boolean chunks, packing each as it
        arrives so only one chunk is ever dense at a time."""
        packed: List[np.ndarray] = []
        for chunk in chunks:
            chunk = np.asarray(chunk, dtype=bool)
            if chunk.ndim != 2 or chunk.shape[1] != nbits:
                raise ValueError(
                    f"chunk has shape {chunk.shape}, expected (n, {nbits})"
                )
            packed.append(pack_bool(chunk))
        if not packed:
            return cls.empty(nbits)
        return cls(nbits, np.concatenate(packed, axis=0))

    @classmethod
    def empty(cls, nbits: int) -> "MaskMatrix":
        return cls(nbits, np.zeros((0, num_words(nbits)), dtype=np.uint64))

    @classmethod
    def concatenate(cls, matrices: Sequence["MaskMatrix"]) -> "MaskMatrix":
        if not matrices:
            raise ValueError("no matrices to concatenate")
        nbits = matrices[0].nbits
        for m in matrices:
            if m.nbits != nbits:
                raise ValueError("cannot concatenate matrices of different widths")
        return cls(nbits, np.concatenate([m.words for m in matrices], axis=0))

    # -- shape / memory ------------------------------------------------------
    def __len__(self) -> int:
        return int(self.words.shape[0])

    @property
    def shape(self) -> Tuple[int, int]:
        """Logical (dense) shape ``(N, nbits)``."""
        return (len(self), self.nbits)

    @property
    def nbytes(self) -> int:
        """Bytes the packed words occupy (dense would be ``N × nbits``)."""
        return int(self.words.nbytes)

    @property
    def dense_nbytes(self) -> int:
        """Bytes the equivalent dense boolean matrix would occupy."""
        return len(self) * self.nbits

    # -- access ----------------------------------------------------------------
    def row(self, index: int) -> CoverageMap:
        """Candidate ``index``'s mask as an independent :class:`CoverageMap`."""
        return CoverageMap(self.nbits, self.words[index].copy())

    def dense(self) -> np.ndarray:
        """The full dense boolean matrix (materialises ``N × nbits`` bytes)."""
        return unpack_words(self.words, self.nbits)

    def dense_row(self, index: int) -> np.ndarray:
        return unpack_words(self.words[index], self.nbits)

    def take(self, indices: Sequence[int]) -> "MaskMatrix":
        return MaskMatrix(self.nbits, self.words[np.asarray(indices, dtype=np.int64)])

    # -- coverage primitives ---------------------------------------------------
    def counts(self) -> np.ndarray:
        """Per-candidate set-bit counts, shape ``(N,)``."""
        return popcount_rows(self.words)

    def fractions(self) -> np.ndarray:
        """Per-candidate coverage VC(x) — ``counts / nbits``."""
        if self.nbits == 0:
            raise ValueError("coverage fractions of a 0-bit matrix are undefined")
        return self.counts() / self.nbits

    def union(self) -> CoverageMap:
        """OR over all candidate masks (the test set's covered map)."""
        if len(self) == 0:
            return CoverageMap(self.nbits)
        return CoverageMap(self.nbits, np.bitwise_or.reduce(self.words, axis=0))

    def marginal_counts(self, covered: CoverageMap) -> np.ndarray:
        """Per-candidate newly-covered-bit counts against ``covered`` (Eq. 7).

        ``counts[i] = popcount(row_i & ~covered)`` — integer counts, so
        equality comparisons (and argmax tie-breaks) are exact.
        """
        if covered.nbits != self.nbits:
            raise ValueError(
                f"covered mask has {covered.nbits} bits, expected {self.nbits}"
            )
        return popcount_rows(self.words & ~covered.words[None, :])

    def marginal_fractions(self, covered: CoverageMap) -> np.ndarray:
        """Per-candidate marginal coverage gains, ``marginal_counts / nbits``."""
        if self.nbits == 0:
            raise ValueError("marginal gains of a 0-bit matrix are undefined")
        return self.marginal_counts(covered) / self.nbits

    def best_candidate(
        self, covered: CoverageMap, available: Optional[np.ndarray] = None
    ) -> Tuple[int, int]:
        """Index and gain count of the best available candidate.

        Reproduces the dense greedy step exactly: the first index attaining
        the maximum marginal count wins (``np.argmax`` tie-breaking).
        Availability is an explicit boolean array — never a sentinel value
        mixed into the gains — so an all-zero-gain pool still deterministically
        yields its first available candidate.
        """
        counts = self.marginal_counts(covered)
        if available is None:
            if len(self) == 0:
                raise ValueError("candidate pool is empty")
            best = int(np.argmax(counts))
            return best, int(counts[best])
        available = np.asarray(available, dtype=bool).ravel()
        if available.shape != (len(self),):
            raise ValueError(
                f"available has shape {available.shape}, expected ({len(self)},)"
            )
        if not available.any():
            raise ValueError("no candidates available")
        candidates = np.flatnonzero(available)
        best = int(candidates[np.argmax(counts[candidates])])
        return best, int(counts[best])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MaskMatrix):
            return NotImplemented
        return self.nbits == other.nbits and bool(np.array_equal(self.words, other.words))

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MaskMatrix(candidates={len(self)}, nbits={self.nbits}, "
            f"packed={self.nbytes}B, dense={self.dense_nbytes}B)"
        )


#: transient window-read retries (with a fresh mapping each time) before an
#: mmap I/O error propagates out of a streamed coverage query
DEFAULT_READ_RETRIES = 2


def quarantine_store(path: Union[str, Path]) -> Path:
    """Move a corrupt store file into a ``quarantine/`` sidecar directory.

    The file is preserved for post-mortem inspection (never destroyed) under
    a unique name, and the original path becomes free for a rebuild — the
    self-healing half of the spill store's failure story.
    """
    path = Path(path)
    dest_dir = path.parent / "quarantine"
    dest_dir.mkdir(parents=True, exist_ok=True)
    dest = dest_dir / path.name
    counter = 1
    while dest.exists():
        dest = dest_dir / f"{path.name}.{counter}"
        counter += 1
    os.replace(path, dest)
    return dest


#: magic prefix of the on-disk packed-mask store (versioned: bump the digit
#: when the layout changes)
MMAP_MAGIC = b"RPRMASK1"

#: bytes of the on-disk header: magic + nbits (u64 LE) + rows (u64 LE)
MMAP_HEADER_BYTES = len(MMAP_MAGIC) + 2 * WORD_BYTES


class MmapMaskWriter:
    """Streaming writer for the on-disk packed-mask store.

    Chunks of packed words are appended as they are computed, so building a
    training-set-sized candidate pool never concatenates the full word
    matrix in RAM.  Writes go to a ``.tmp`` sibling and are atomically
    renamed into place on :meth:`close` (which also patches the row count
    into the header), so a crash mid-build can never leave a file that
    :meth:`MmapMaskMatrix.open` would accept — torn stores are detected and
    rejected by the size/header validation.

    The layout is explicitly little-endian (``'<u8'`` words), matching
    :func:`pack_bool`'s bit order, so stores are portable across hosts.
    """

    def __init__(self, path: Union[str, Path], nbits: int) -> None:
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        self.path = Path(path)
        self.nbits = int(nbits)
        self.rows = 0
        self._tmp = self.path.with_name(self.path.name + ".tmp")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self._tmp, "wb")
        self._fh.write(MMAP_MAGIC)
        self._fh.write(np.uint64(self.nbits).astype("<u8").tobytes())
        self._fh.write(np.uint64(0).astype("<u8").tobytes())  # rows, patched on close

    def append(self, words: np.ndarray) -> None:
        """Append a ``(n, num_words(nbits))`` uint64 chunk."""
        if self._fh is None:
            raise ValueError("writer is closed")
        words = np.asarray(words, dtype=np.uint64)
        if words.ndim != 2 or words.shape[1] != num_words(self.nbits):
            raise ValueError(
                f"chunk has shape {words.shape}, expected "
                f"(n, {num_words(self.nbits)}) for {self.nbits} bits"
            )
        self._fh.write(np.ascontiguousarray(words).astype("<u8", copy=False).tobytes())
        self.rows += int(words.shape[0])

    def close(
        self, memory_budget_bytes: Optional[int] = None
    ) -> "MmapMaskMatrix":
        """Finalise the store and return it opened for windowed reads."""
        if self._fh is None:
            raise ValueError("writer is closed")
        self._fh.seek(len(MMAP_MAGIC) + WORD_BYTES)
        self._fh.write(np.uint64(self.rows).astype("<u8").tobytes())
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        self._fh = None
        os.replace(self._tmp, self.path)
        return MmapMaskMatrix.open(self.path, memory_budget_bytes=memory_budget_bytes)

    def abort(self) -> None:
        """Discard the partial store (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        if self._tmp.exists():
            self._tmp.unlink()

    def __enter__(self) -> "MmapMaskWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()


class MmapMaskMatrix(MaskMatrix):
    """A :class:`MaskMatrix` whose words live in a memory-mapped file.

    Candidate pools the size of the full training set exceed RAM even
    packed; this store streams Algorithm 1's ``popcount(candidate &
    ~covered)`` from disk instead.  The coverage primitives the greedy loop
    calls (:meth:`counts`, :meth:`union`, :meth:`marginal_counts` — and
    therefore the inherited :meth:`best_candidate`) iterate fixed-size row
    windows bounded by ``memory_budget_bytes``, so resident memory stays at
    one window's words plus its popcount temporaries while results remain
    byte-identical to the in-RAM matrix.

    Construct via :meth:`open` (existing store) or
    :class:`MmapMaskWriter` (streaming build).
    """

    __slots__ = ("path", "memory_budget_bytes", "read_retries")

    def __init__(
        self,
        nbits: int,
        words: np.ndarray,
        path: Optional[Path] = None,
        memory_budget_bytes: Optional[int] = None,
        read_retries: int = DEFAULT_READ_RETRIES,
    ) -> None:
        if memory_budget_bytes is not None and memory_budget_bytes <= 0:
            raise ValueError("memory_budget_bytes must be positive")
        if read_retries < 0:
            raise ValueError("read_retries must be >= 0")
        super().__init__(nbits, words)
        self.path = path
        self.memory_budget_bytes = memory_budget_bytes
        self.read_retries = int(read_retries)

    @classmethod
    def open(
        cls,
        path: Union[str, Path],
        memory_budget_bytes: Optional[int] = None,
        read_retries: int = DEFAULT_READ_RETRIES,
    ) -> "MmapMaskMatrix":
        """Map an existing store, validating its header and size.

        Raises :class:`ValueError` for wrong-magic, torn or truncated files
        (e.g. a crash while an old non-atomic writer was mid-append), so a
        corrupt store is rebuilt instead of silently mis-read.
        """
        path = Path(path)
        size = path.stat().st_size
        if size < MMAP_HEADER_BYTES:
            raise ValueError(
                f"torn mask store {path}: {size} bytes is smaller than the "
                f"{MMAP_HEADER_BYTES}-byte header"
            )
        with open(path, "rb") as fh:
            header = fh.read(MMAP_HEADER_BYTES)
        if header[: len(MMAP_MAGIC)] != MMAP_MAGIC:
            raise ValueError(f"{path} is not a packed mask store (bad magic)")
        nbits, rows = np.frombuffer(header, dtype="<u8", offset=len(MMAP_MAGIC))
        nbits, rows = int(nbits), int(rows)
        expected = MMAP_HEADER_BYTES + rows * num_words(nbits) * WORD_BYTES
        if size != expected:
            raise ValueError(
                f"torn mask store {path}: {size} bytes on disk, header "
                f"declares {rows} rows × {num_words(nbits)} words "
                f"({expected} bytes)"
            )
        words = np.memmap(
            path,
            dtype="<u8",
            mode="r",
            offset=MMAP_HEADER_BYTES,
            shape=(rows, num_words(nbits)),
        )
        return cls(
            nbits,
            words,
            path=path,
            memory_budget_bytes=memory_budget_bytes,
            read_retries=read_retries,
        )

    # -- windowed iteration ---------------------------------------------------
    def _window_rows(self) -> int:
        """Rows per streamed window under the memory budget (≥ 1)."""
        if self.memory_budget_bytes is None:
            return max(1, len(self))
        row_bytes = num_words(self.nbits) * WORD_BYTES
        return max(1, int(self.memory_budget_bytes) // max(1, row_bytes))

    def _windows(self) -> Iterable[slice]:
        step = self._window_rows()
        for start in range(0, len(self), step):
            yield slice(start, min(start + step, len(self)))

    def _remap(self) -> None:
        """Re-open the backing memmap (retry path after a failed page-in)."""
        rows = self.words.shape[0]
        self.words = np.memmap(
            self.path,
            dtype="<u8",
            mode="r",
            offset=MMAP_HEADER_BYTES,
            shape=(rows, num_words(self.nbits)),
        )

    def _read_window(self, s: slice, ordinal: int) -> np.ndarray:
        """Copy one row window out of the mapping, retrying transient I/O.

        A failed page-in (stale NFS handle, transient device error — or an
        injected ``mmap.window`` fault from the chaos plan) surfaces as
        :class:`OSError`; the mapping is re-opened and the window re-read up
        to :attr:`read_retries` times before the error propagates.
        """
        attempts = 0
        while True:
            try:
                if _inject.active():
                    _inject.check("mmap.window", window=ordinal, path=str(self.path))
                return np.asarray(self.words[s], dtype=np.uint64)
            except OSError as exc:
                if self.path is None or attempts >= self.read_retries:
                    raise
                attempts += 1
                logger.warning(
                    "retrying mmap window %d of %s after read failure (%s)",
                    ordinal,
                    self.path,
                    exc,
                )
                self._remap()

    # -- streamed coverage primitives ----------------------------------------
    def counts(self) -> np.ndarray:
        out = np.empty(len(self), dtype=np.int64)
        for i, s in enumerate(self._windows()):
            out[s] = popcount_rows(self._read_window(s, i))
        return out

    def union(self) -> CoverageMap:
        if len(self) == 0:
            return CoverageMap(self.nbits)
        acc = np.zeros(num_words(self.nbits), dtype=np.uint64)
        for i, s in enumerate(self._windows()):
            window = self._read_window(s, i)
            np.bitwise_or(acc, np.bitwise_or.reduce(window, axis=0), out=acc)
        return CoverageMap(self.nbits, acc)

    def marginal_counts(self, covered: CoverageMap) -> np.ndarray:
        # best_candidate routes through this override, so the whole greedy
        # loop streams windows — the dense word matrix is never resident
        if covered.nbits != self.nbits:
            raise ValueError(
                f"covered mask has {covered.nbits} bits, expected {self.nbits}"
            )
        inverted = ~covered.words
        out = np.empty(len(self), dtype=np.int64)
        for i, s in enumerate(self._windows()):
            out[s] = popcount_rows(self._read_window(s, i) & inverted[None, :])
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MmapMaskMatrix(candidates={len(self)}, nbits={self.nbits}, "
            f"path={str(self.path)!r}, window={self._window_rows()} rows)"
        )


class PackedCoverageTracker:
    """Incremental union bookkeeping over a packed covered map.

    The shared core of the parameter- and neuron-coverage trackers: both
    repeatedly ask "how much would adding this mask increase coverage?" and
    union chosen masks in.  Subclasses supply how a raw sample becomes a
    mask; this base owns the packed state and the Eq. 7 arithmetic.
    """

    def __init__(self, total: int) -> None:
        if total <= 0:
            raise ValueError("tracker needs at least one coverage target")
        self._total = int(total)
        self._covered = CoverageMap(self._total)
        self._num_tests = 0

    # -- state ---------------------------------------------------------------
    @property
    def covered_map(self) -> CoverageMap:
        """The live packed covered bitset (read-only by convention — mutate
        only through :meth:`add_mask`/:meth:`reset`)."""
        return self._covered

    @property
    def covered_mask(self) -> np.ndarray:
        """Dense boolean copy of the covered set (compatibility surface)."""
        return self._covered.dense()

    @property
    def num_covered(self) -> int:
        return self._covered.count()

    @property
    def coverage(self) -> float:
        """Current coverage fraction of all added tests."""
        return self.num_covered / self._total

    @property
    def num_tests(self) -> int:
        """Number of tests added so far."""
        return self._num_tests

    def reset(self) -> None:
        self._covered.clear_()
        self._num_tests = 0

    # -- queries -----------------------------------------------------------
    def marginal_gain(self, mask: Union[CoverageMap, DenseLike]) -> float:
        """Coverage increase for a candidate mask (Eq. 7); accepts packed or
        dense masks."""
        packed = as_coverage_map(mask, self._total)
        return packed.andnot_count(self._covered) / self._total

    # -- updates -----------------------------------------------------------
    def add_mask(self, mask: Union[CoverageMap, DenseLike]) -> float:
        """Union a candidate mask into the covered set; returns the gain."""
        packed = as_coverage_map(mask, self._total)
        gain = self.marginal_gain(packed)
        self._covered.union_(packed)
        self._num_tests += 1
        return gain

    def uncovered_indices(self) -> np.ndarray:
        """Flat indices of coverage targets not yet activated by any test."""
        return np.flatnonzero(~self._covered.dense())


class CoverageCriterion:
    """Pluggable protocol mapping ``(model, images) → MaskMatrix``.

    A coverage criterion defines *what is covered* (its bit space) and *how a
    sample's mask is computed*.  Two implementations ship — parameter
    (validation) coverage and the neuron-coverage baseline — and new criteria
    plug into the same greedy selection machinery by implementing this
    interface (see the README's "extending coverage" notes).
    """

    #: short registry/report name; subclasses must override
    name: str = "criterion"

    def num_bits(self, model) -> int:
        """Size of this criterion's bit space for ``model``."""
        raise NotImplementedError

    def mask_matrix(self, model, images: np.ndarray, engine=None) -> MaskMatrix:
        """Packed masks of a candidate pool, built with chunked batched
        passes (never materialising the full dense matrix)."""
        raise NotImplementedError

    def tracker(self, model) -> PackedCoverageTracker:
        """A fresh incremental tracker over this criterion's bit space."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.__class__.__name__}(name={self.name!r})"


__all__ = [
    "DEFAULT_READ_RETRIES",
    "MMAP_HEADER_BYTES",
    "MMAP_MAGIC",
    "WORD_BITS",
    "WORD_BYTES",
    "CoverageCriterion",
    "CoverageMap",
    "MaskMatrix",
    "MmapMaskMatrix",
    "MmapMaskWriter",
    "PackedCoverageTracker",
    "as_coverage_map",
    "num_words",
    "pack_bool",
    "packed_nbytes",
    "popcount",
    "popcount_rows",
    "quarantine_store",
    "unpack_words",
]
