"""Neuron coverage — the hardware-testing baseline metric.

The paper contrasts its *parameter* coverage with the *neuron* coverage used
by DNN testing work (DeepXplore, DeepCT): a neuron is covered when some test
drives its post-activation output above a threshold.  Section II argues (and
Tables II/III show) that full neuron coverage is not sufficient to expose
parameter perturbations, because a weight between two neurons is only
exercised when both are active *for the same test*.

This module mirrors the parameter-coverage API so the two can be swapped in
the test-generation and detection experiments:

* :func:`neuron_activation_mask` — per-sample boolean mask over all neurons;
* :func:`neuron_coverage` — coverage of a test set;
* :class:`NeuronCoverageTracker` — incremental union bookkeeping.

"Neurons" are the scalar post-activation outputs of every hidden layer that
has parameters or applies a non-linearity (convolution feature-map cells,
dense hidden units).  Pooling/flatten outputs are excluded — they introduce no
new neurons.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.engine import Engine, neuron_layer_indices, resolve_engine
from repro.nn.layers import ActivationLayer, Conv2D, Dense
from repro.nn.model import Sequential


def _covered_layer_indices(model: Sequential) -> List[int]:
    """Indices of layers whose outputs count as neurons.

    Delegates to :func:`repro.engine.neuron_layer_indices`, the single
    definition shared with the batched execution engine.
    """
    return neuron_layer_indices(model)


def count_neurons(model: Sequential) -> int:
    """Total number of neurons considered by the coverage metric."""
    if model.input_shape is None:
        raise RuntimeError("model has not been built")
    total = 0
    shape = model.input_shape
    for i, layer in enumerate(model.layers):
        shape = layer.output_shape(shape)
        if isinstance(layer, (Conv2D, Dense, ActivationLayer)):
            total += int(np.prod(shape))
    return total


def neuron_activation_mask(
    model: Sequential, x: np.ndarray, threshold: float = 0.0
) -> np.ndarray:
    """Boolean mask over all neurons activated by sample ``x``.

    A neuron is activated when its post-activation output exceeds
    ``threshold`` (the DeepXplore-style criterion; 0.0 suits ReLU networks,
    small positive values suit Tanh networks whose outputs may be negative).
    """
    x = np.asarray(x, dtype=np.float64)
    if model.input_shape is not None and x.shape == model.input_shape:
        x = x[None, ...]
    outputs = model.forward_collect(x)
    indices = set(_covered_layer_indices(model))
    parts = []
    for i, out in enumerate(outputs):
        if i in indices:
            parts.append((out[0] > threshold).ravel())
    return np.concatenate(parts)


def neuron_activation_masks(
    model: Sequential,
    images: np.ndarray,
    threshold: float = 0.0,
    engine: Optional[Engine] = None,
) -> np.ndarray:
    """Batched :func:`neuron_activation_mask`: ``(N, num_neurons)`` matrix.

    Row ``i`` equals ``neuron_activation_mask(model, images[i], threshold)``,
    computed with chunked batched forward passes through the execution
    engine.
    """
    eng = resolve_engine(model, engine=engine, cache=False)
    return eng.neuron_masks(np.asarray(images), threshold)


def neuron_coverage(
    model: Sequential,
    tests: np.ndarray | Sequence[np.ndarray],
    threshold: float = 0.0,
) -> float:
    """Fraction of neurons activated by at least one test in ``tests``."""
    tracker = NeuronCoverageTracker(model, threshold=threshold)
    for sample in tests:
        tracker.add_sample(sample)
    return tracker.coverage


class NeuronCoverageTracker:
    """Incremental neuron-coverage bookkeeping (mirrors ``CoverageTracker``)."""

    def __init__(self, model: Sequential, threshold: float = 0.0) -> None:
        self._model = model
        self.threshold = float(threshold)
        self._total = count_neurons(model)
        self._covered = np.zeros(self._total, dtype=bool)
        self._num_tests = 0

    @property
    def total_neurons(self) -> int:
        return self._total

    @property
    def covered_mask(self) -> np.ndarray:
        return self._covered.copy()

    @property
    def num_covered(self) -> int:
        return int(self._covered.sum())

    @property
    def coverage(self) -> float:
        return self.num_covered / self._total

    @property
    def num_tests(self) -> int:
        return self._num_tests

    def reset(self) -> None:
        self._covered[:] = False
        self._num_tests = 0

    def mask_for(self, x: np.ndarray) -> np.ndarray:
        return neuron_activation_mask(self._model, x, self.threshold)

    def marginal_gain(self, mask: np.ndarray) -> float:
        mask = self._check_mask(mask)
        return np.count_nonzero(mask & ~self._covered) / self._total

    def marginal_gain_of_sample(self, x: np.ndarray) -> float:
        return self.marginal_gain(self.mask_for(x))

    def add_mask(self, mask: np.ndarray) -> float:
        mask = self._check_mask(mask)
        gain = self.marginal_gain(mask)
        self._covered |= mask
        self._num_tests += 1
        return gain

    def add_sample(self, x: np.ndarray) -> float:
        return self.add_mask(self.mask_for(x))

    def _check_mask(self, mask: np.ndarray) -> np.ndarray:
        mask = np.asarray(mask, dtype=bool).ravel()
        if mask.size != self._total:
            raise ValueError(
                f"mask has {mask.size} entries, expected {self._total} (one per neuron)"
            )
        return mask


class NeuronMaskCache:
    """Precomputed neuron-activation masks for a candidate pool.

    Masks are built in chunked batched forward passes through the execution
    engine instead of one pass per candidate.
    """

    def __init__(
        self,
        model: Sequential,
        images: np.ndarray,
        threshold: float = 0.0,
        engine: Optional[Engine] = None,
    ) -> None:
        images = np.asarray(images)
        self.threshold = float(threshold)
        self._images = images
        if images.shape[0] == 0:
            self._masks = np.zeros((0, count_neurons(model)), dtype=bool)
        else:
            self._masks = neuron_activation_masks(model, images, threshold, engine)

    def __len__(self) -> int:
        return int(self._masks.shape[0])

    @property
    def images(self) -> np.ndarray:
        return self._images

    @property
    def masks(self) -> np.ndarray:
        return self._masks

    def sample(self, index: int) -> np.ndarray:
        return self._images[index]

    def marginal_gains(self, covered: np.ndarray) -> np.ndarray:
        covered = np.asarray(covered, dtype=bool).ravel()
        if covered.size != self._masks.shape[1]:
            raise ValueError(
                f"covered mask has {covered.size} entries, expected {self._masks.shape[1]}"
            )
        new_bits = self._masks & ~covered[None, :]
        return new_bits.sum(axis=1) / self._masks.shape[1]


__all__ = [
    "count_neurons",
    "neuron_activation_mask",
    "neuron_activation_masks",
    "neuron_coverage",
    "NeuronCoverageTracker",
    "NeuronMaskCache",
]
