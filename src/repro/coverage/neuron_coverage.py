"""Neuron coverage — the hardware-testing baseline metric.

The paper contrasts its *parameter* coverage with the *neuron* coverage used
by DNN testing work (DeepXplore, DeepCT): a neuron is covered when some test
drives its post-activation output above a threshold.  Section II argues (and
Tables II/III show) that full neuron coverage is not sufficient to expose
parameter perturbations, because a weight between two neurons is only
exercised when both are active *for the same test*.

This module mirrors the parameter-coverage API so the two can be swapped in
the test-generation and detection experiments:

* :func:`neuron_activation_mask` — per-sample boolean mask over all neurons;
* :func:`neuron_coverage` — coverage of a test set;
* :class:`NeuronCoverage` — the pluggable
  :class:`~repro.coverage.bitmap.CoverageCriterion` implementation;
* :class:`NeuronCoverageTracker` — incremental union bookkeeping.

Like parameter coverage, pool masks are stored *packed*
(:mod:`repro.coverage.bitmap`): one bit per neuron, marginal gains by
popcount, dense materialisation on demand.

"Neurons" are the scalar post-activation outputs of every hidden layer that
has parameters or applies a non-linearity (convolution feature-map cells,
dense hidden units).  Pooling/flatten outputs are excluded — they introduce no
new neurons.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.coverage.bitmap import (
    CoverageCriterion,
    CoverageMap,
    MaskMatrix,
    PackedCoverageTracker,
)
from repro.engine import Engine, neuron_layer_indices, resolve_engine
from repro.nn.layers import ActivationLayer, Conv2D, Dense
from repro.nn.model import Sequential


def _covered_layer_indices(model: Sequential) -> List[int]:
    """Indices of layers whose outputs count as neurons.

    Delegates to :func:`repro.engine.neuron_layer_indices`, the single
    definition shared with the batched execution engine.
    """
    return neuron_layer_indices(model)


def count_neurons(model: Sequential) -> int:
    """Total number of neurons considered by the coverage metric."""
    if model.input_shape is None:
        raise RuntimeError("model has not been built")
    total = 0
    shape = model.input_shape
    for i, layer in enumerate(model.layers):
        shape = layer.output_shape(shape)
        if isinstance(layer, (Conv2D, Dense, ActivationLayer)):
            total += int(np.prod(shape))
    return total


def neuron_activation_mask(
    model: Sequential, x: np.ndarray, threshold: float = 0.0
) -> np.ndarray:
    """Boolean mask over all neurons activated by sample ``x``.

    A neuron is activated when its post-activation output exceeds
    ``threshold`` (the DeepXplore-style criterion; 0.0 suits ReLU networks,
    small positive values suit Tanh networks whose outputs may be negative).
    """
    x = np.asarray(x, dtype=np.float64)
    if model.input_shape is not None and x.shape == model.input_shape:
        x = x[None, ...]
    outputs = model.forward_collect(x)
    indices = set(_covered_layer_indices(model))
    parts = []
    for i, out in enumerate(outputs):
        if i in indices:
            parts.append((out[0] > threshold).ravel())
    return np.concatenate(parts)


def neuron_activation_masks(
    model: Sequential,
    images: np.ndarray,
    threshold: float = 0.0,
    engine: Optional[Engine] = None,
) -> np.ndarray:
    """Batched :func:`neuron_activation_mask`: ``(N, num_neurons)`` matrix.

    Row ``i`` equals ``neuron_activation_mask(model, images[i], threshold)``,
    computed with chunked batched forward passes through the execution
    engine.  For large pools prefer :func:`packed_neuron_masks`.
    """
    eng = resolve_engine(model, engine=engine, cache=False)
    return eng.neuron_masks(np.asarray(images), threshold)


def packed_neuron_masks(
    model: Sequential,
    images: np.ndarray,
    threshold: float = 0.0,
    engine: Optional[Engine] = None,
    memory_budget_bytes: Optional[int] = None,
) -> MaskMatrix:
    """Packed :func:`neuron_activation_masks` at 1/8 the dense bytes."""
    eng = resolve_engine(model, engine=engine, cache=False)
    return eng.packed_neuron_masks(
        np.asarray(images), threshold, memory_budget_bytes=memory_budget_bytes
    )


def neuron_coverage(
    model: Sequential,
    tests: np.ndarray | Sequence[np.ndarray],
    threshold: float = 0.0,
) -> float:
    """Fraction of neurons activated by at least one test in ``tests``."""
    tracker = NeuronCoverageTracker(model, threshold=threshold)
    for sample in tests:
        tracker.add_sample(sample)
    return tracker.coverage


class NeuronCoverage(CoverageCriterion):
    """DeepXplore-style neuron coverage as a pluggable criterion.

    Bit space: one bit per neuron; a bit is set when the neuron's
    post-activation output exceeds the threshold.
    """

    name = "neuron"

    def __init__(self, threshold: float = 0.0) -> None:
        self.threshold = float(threshold)

    def num_bits(self, model: Sequential) -> int:
        return count_neurons(model)

    def mask_matrix(
        self, model: Sequential, images: np.ndarray, engine: Optional[Engine] = None
    ) -> MaskMatrix:
        return packed_neuron_masks(model, images, self.threshold, engine)

    def tracker(self, model: Sequential) -> "NeuronCoverageTracker":
        return NeuronCoverageTracker(model, threshold=self.threshold)


class NeuronCoverageTracker(PackedCoverageTracker):
    """Incremental neuron-coverage bookkeeping (mirrors ``CoverageTracker``)."""

    def __init__(self, model: Sequential, threshold: float = 0.0) -> None:
        super().__init__(count_neurons(model))
        self._model = model
        self.threshold = float(threshold)

    @property
    def total_neurons(self) -> int:
        return self._total

    def mask_for(self, x: np.ndarray) -> np.ndarray:
        return neuron_activation_mask(self._model, x, self.threshold)

    def marginal_gain_of_sample(self, x: np.ndarray) -> float:
        return self.marginal_gain(self.mask_for(x))

    def add_sample(self, x: np.ndarray) -> float:
        return self.add_mask(self.mask_for(x))


class NeuronMaskCache:
    """Precomputed neuron-activation masks for a candidate pool, stored packed.

    Masks are built in chunked batched forward passes through the execution
    engine instead of one pass per candidate, packing each chunk as it
    arrives.
    """

    def __init__(
        self,
        model: Sequential,
        images: np.ndarray,
        threshold: float = 0.0,
        engine: Optional[Engine] = None,
        memory_budget_bytes: Optional[int] = None,
    ) -> None:
        images = np.asarray(images)
        self.threshold = float(threshold)
        self._images = images
        if images.shape[0] == 0:
            self._packed = MaskMatrix.empty(count_neurons(model))
        else:
            self._packed = packed_neuron_masks(
                model, images, threshold, engine, memory_budget_bytes
            )

    def __len__(self) -> int:
        return len(self._packed)

    @property
    def images(self) -> np.ndarray:
        return self._images

    @property
    def packed(self) -> MaskMatrix:
        """The packed ``(num_candidates, num_neurons)`` mask matrix."""
        return self._packed

    @property
    def masks(self) -> np.ndarray:
        """Dense boolean mask matrix, materialised on demand (8× the packed
        bytes) — compatibility surface; the greedy loop runs on
        :attr:`packed`."""
        return self._packed.dense()

    @property
    def nbytes(self) -> int:
        """Resident bytes of the packed mask matrix."""
        return self._packed.nbytes

    def mask(self, index: int) -> np.ndarray:
        return self._packed.dense_row(index)

    def packed_mask(self, index: int) -> CoverageMap:
        return self._packed.row(index)

    def sample(self, index: int) -> np.ndarray:
        return self._images[index]

    def marginal_gains(
        self,
        covered: Union[CoverageMap, np.ndarray],
        available: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-candidate marginal gains; unavailable candidates (when
        ``available`` is given) are ``NaN``, never a sentinel."""
        covered = self._as_covered(covered)
        gains = self._packed.marginal_fractions(covered)
        if available is not None:
            available = self._check_available(available)
            gains = np.where(available, gains, np.nan)
        return gains

    def best_candidate(
        self,
        covered: Union[CoverageMap, np.ndarray],
        available: Optional[np.ndarray] = None,
    ) -> tuple[int, float]:
        """Greedy argmax with dense tie-breaking (lowest index wins)."""
        covered = self._as_covered(covered)
        if available is not None:
            available = self._check_available(available)
        index, count = self._packed.best_candidate(covered, available)
        return index, count / self._packed.nbits

    def _as_covered(self, covered: Union[CoverageMap, np.ndarray]) -> CoverageMap:
        if isinstance(covered, CoverageMap):
            if covered.nbits != self._packed.nbits:
                raise ValueError(
                    f"covered mask has {covered.nbits} bits, "
                    f"expected {self._packed.nbits}"
                )
            return covered
        covered = np.asarray(covered, dtype=bool).ravel()
        if covered.size != self._packed.nbits:
            raise ValueError(
                f"covered mask has {covered.size} entries, "
                f"expected {self._packed.nbits}"
            )
        return CoverageMap.from_dense(covered)

    def _check_available(self, available: np.ndarray) -> np.ndarray:
        available = np.asarray(available, dtype=bool).ravel()
        if available.size != len(self):
            raise ValueError(
                f"available has {available.size} entries, expected {len(self)} "
                "(one per candidate)"
            )
        return available


__all__ = [
    "count_neurons",
    "neuron_activation_mask",
    "neuron_activation_masks",
    "packed_neuron_masks",
    "neuron_coverage",
    "NeuronCoverage",
    "NeuronCoverageTracker",
    "NeuronMaskCache",
]
