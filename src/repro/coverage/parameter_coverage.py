"""Validation coverage — the paper's core metric (Section IV-A).

``VC(x)`` is the fraction of network parameters activated by a single test
(Eq. 3); ``VC(X)`` is the fraction activated by at least one test in a set
(Eq. 4-5).  The module provides:

* :func:`activation_mask` / :func:`activation_masks` — the boolean
  per-parameter activation mask of one sample (or, batched, of a whole pool),
  computed from ``∇θ F(x)``;
* :func:`validation_coverage` / :func:`set_validation_coverage` — the scalar
  metrics VC(x) and VC(X);
* :func:`mean_validation_coverage` — the Fig. 2 quantity ``mean_i VC(x_i)``,
  computed with one batched forward/backward through the execution engine
  (:func:`mean_validation_coverage_reference` keeps the per-sample loop as a
  reference implementation for equivalence testing);
* :class:`ParameterCoverage` — the
  :class:`~repro.coverage.bitmap.CoverageCriterion` implementation for this
  metric (pluggable alongside neuron coverage);
* :class:`CoverageTracker` — incremental union bookkeeping used by the greedy
  test-generation algorithms, where marginal gains must be cheap;
* :class:`ActivationMaskCache` — precomputes masks for a candidate pool so
  Algorithm 1's inner loop is a pure bitset operation.

Masks are stored *packed* (:mod:`repro.coverage.bitmap`): 64 parameters per
uint64 word, 1/8 the bytes of the dense boolean representation, with marginal
gains computed as ``popcount(candidate & ~covered)``.  Packing is lossless
and all greedy argmax tie-breaking matches the dense implementation exactly;
dense arrays remain accepted everywhere and available via explicit
materialisation (``.masks``, ``covered_mask``).

All batched paths go through :class:`repro.engine.Engine`; every function
accepts an optional ``engine`` so callers can share one memoizing engine
across the coverage, test-generation and analysis layers.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.coverage.activation import ActivationCriterion, default_criterion_for
from repro.coverage.bitmap import (
    CoverageCriterion,
    CoverageMap,
    MaskMatrix,
    PackedCoverageTracker,
)
from repro.engine import Engine, resolve_engine
from repro.nn.model import Sequential
from repro.utils.logging import get_logger

logger = get_logger("coverage.parameter")


def activation_mask(
    model: Sequential,
    x: np.ndarray,
    criterion: Optional[ActivationCriterion] = None,
) -> np.ndarray:
    """Boolean mask over the flat parameter vector activated by sample ``x``.

    Entry ``i`` is True when ``|∇θi F(x)|`` exceeds the criterion's threshold,
    i.e. a perturbation of parameter ``i`` would move the output for ``x``.
    """
    crit = criterion or default_criterion_for(model)
    grads = model.output_gradients(x, scalarization=crit.scalarization)
    return crit.activated(grads)


def activation_masks(
    model: Sequential,
    images: np.ndarray,
    criterion: Optional[ActivationCriterion] = None,
    engine: Optional[Engine] = None,
) -> np.ndarray:
    """Batched :func:`activation_mask`: ``(N, num_parameters)`` boolean matrix.

    Row ``i`` equals ``activation_mask(model, images[i], criterion)``, but the
    whole pool is evaluated with chunked batched forward/backward passes
    through the execution engine.  For large pools prefer
    :func:`packed_activation_masks`, which never materialises the dense
    matrix.
    """
    crit = criterion or default_criterion_for(model)
    eng = resolve_engine(model, crit, engine, cache=False)
    return eng.activation_masks(np.asarray(images), crit)


def packed_activation_masks(
    model: Sequential,
    images: np.ndarray,
    criterion: Optional[ActivationCriterion] = None,
    engine: Optional[Engine] = None,
    memory_budget_bytes: Optional[int] = None,
) -> MaskMatrix:
    """Packed :func:`activation_masks`: a
    :class:`~repro.coverage.bitmap.MaskMatrix` at 1/8 the dense bytes.

    Built streaming — each gradient chunk is thresholded, packed and dropped —
    so peak transient memory is one chunk's gradients (cappable via
    ``memory_budget_bytes``), not the whole pool's.
    """
    crit = criterion or default_criterion_for(model)
    eng = resolve_engine(model, crit, engine, cache=False)
    return eng.packed_activation_masks(
        np.asarray(images), crit, memory_budget_bytes=memory_budget_bytes
    )


def validation_coverage(
    model: Sequential,
    x: np.ndarray,
    criterion: Optional[ActivationCriterion] = None,
) -> float:
    """``VC(x)``: fraction of parameters activated by a single test (Eq. 3)."""
    mask = activation_mask(model, x, criterion)
    return float(mask.mean())


def set_validation_coverage(
    model: Sequential,
    tests: np.ndarray | Sequence[np.ndarray],
    criterion: Optional[ActivationCriterion] = None,
    engine: Optional[Engine] = None,
) -> float:
    """``VC(X)``: fraction of parameters activated by at least one test (Eq. 4).

    The union over the test set is computed word-wise on packed masks — the
    dense ``(N, P)`` matrix is never materialised.
    """
    if not isinstance(tests, np.ndarray):
        tests = (
            np.stack([np.asarray(t) for t in tests], axis=0)
            if len(tests)
            else np.zeros((0, *(model.input_shape or ())))
        )
    if tests.shape[0] == 0:
        return 0.0  # an empty test set activates nothing
    packed = packed_activation_masks(model, tests, criterion, engine)
    return packed.union().fraction


def mean_validation_coverage(
    model: Sequential,
    images: np.ndarray,
    criterion: Optional[ActivationCriterion] = None,
    engine: Optional[Engine] = None,
) -> float:
    """Mean per-sample coverage ``mean_i VC(x_i)`` — the quantity plotted in Fig. 2.

    Computed with one batched forward/backward per chunk instead of one pair
    of passes per image; numerically equivalent (≤ 1e-8) to
    :func:`mean_validation_coverage_reference`.
    """
    images = np.asarray(images)
    if images.shape[0] == 0:
        raise ValueError("cannot average over an empty image set")
    packed = packed_activation_masks(model, images, criterion, engine)
    return float(packed.fractions().mean())


def mean_validation_coverage_reference(
    model: Sequential,
    images: np.ndarray,
    criterion: Optional[ActivationCriterion] = None,
) -> float:
    """Per-sample reference implementation of :func:`mean_validation_coverage`.

    Loops one forward/backward pass per image.  Kept (unbatched, engine-free)
    as the ground truth the batched path is property-tested against, and as
    the baseline of ``benchmarks/bench_engine.py``.
    """
    images = np.asarray(images)
    if images.shape[0] == 0:
        raise ValueError("cannot average over an empty image set")
    crit = criterion or default_criterion_for(model)
    values = [validation_coverage(model, images[i], crit) for i in range(images.shape[0])]
    return float(np.mean(values))


def average_sample_coverage(
    model: Sequential,
    images: np.ndarray,
    criterion: Optional[ActivationCriterion] = None,
    engine: Optional[Engine] = None,
) -> float:
    """Backwards-compatible alias of :func:`mean_validation_coverage`."""
    return mean_validation_coverage(model, images, criterion, engine)


class ParameterCoverage(CoverageCriterion):
    """The paper's parameter (validation) coverage as a pluggable criterion.

    Bit space: one bit per scalar model parameter; a bit is set when the
    activation criterion's gradient threshold is exceeded.
    """

    name = "parameter"

    def __init__(self, criterion: Optional[ActivationCriterion] = None) -> None:
        self.criterion = criterion

    def _resolved(self, model: Sequential) -> ActivationCriterion:
        return self.criterion or default_criterion_for(model)

    def num_bits(self, model: Sequential) -> int:
        return model.num_parameters()

    def mask_matrix(
        self, model: Sequential, images: np.ndarray, engine: Optional[Engine] = None
    ) -> MaskMatrix:
        return packed_activation_masks(model, images, self._resolved(model), engine)

    def tracker(self, model: Sequential) -> "CoverageTracker":
        return CoverageTracker(model, self._resolved(model))


class CoverageTracker(PackedCoverageTracker):
    """Running union of activated parameters over an incrementally built test set.

    The greedy algorithms repeatedly ask "how much would adding this sample
    increase VC(X)?"; with the tracker this is one word-wise bitset operation
    (``popcount(mask & ~covered)``) on the packed covered map.
    """

    def __init__(
        self,
        model: Sequential,
        criterion: Optional[ActivationCriterion] = None,
    ) -> None:
        total = model.num_parameters()
        if total == 0:
            raise ValueError("model has no parameters to cover")
        super().__init__(total)
        self._model = model
        self.criterion = criterion or default_criterion_for(model)

    # -- state -------------------------------------------------------------
    @property
    def total_parameters(self) -> int:
        return self._total

    # -- queries -----------------------------------------------------------
    def mask_for(self, x: np.ndarray) -> np.ndarray:
        """Activation mask of a sample under this tracker's criterion."""
        return activation_mask(self._model, x, self.criterion)

    def marginal_gain_of_sample(self, x: np.ndarray) -> float:
        """Marginal gain of a raw sample (computes its mask first)."""
        return self.marginal_gain(self.mask_for(x))

    # -- updates -----------------------------------------------------------
    def add_sample(self, x: np.ndarray) -> float:
        """Compute the sample's mask and union it in; returns the gain."""
        return self.add_mask(self.mask_for(x))

    def add_batch(self, batch: np.ndarray, engine: Optional[Engine] = None) -> float:
        """Union a whole batch of samples in one engine pass; returns the
        total coverage gain of the batch."""
        packed = packed_activation_masks(self._model, batch, self.criterion, engine)
        before = self.num_covered
        self._covered.union_(packed.union())
        self._num_tests += len(packed)
        return (self.num_covered - before) / self._total


class ActivationMaskCache:
    """Precomputed activation masks for a candidate pool, stored packed.

    Algorithm 1 scans the training set every iteration; recomputing
    ``∇θ F(x)`` for each candidate each iteration would be quadratic in
    backward passes.  Each candidate's mask only depends on the (fixed) model,
    so the cache computes them once — in chunked batched passes through the
    execution engine, packing each chunk as it arrives — and the greedy loop
    becomes pure popcount arithmetic at 1/8 the dense matrix's memory.

    Parameters
    ----------
    memory_budget_bytes:
        Optional cap on the transient dense gradient buffers used while
        building the cache (smaller chunks, same result); the resident packed
        matrix itself is always ``N × ceil(P/64) × 8`` bytes.
    """

    def __init__(
        self,
        model: Sequential,
        images: np.ndarray,
        criterion: Optional[ActivationCriterion] = None,
        log_every: int = 0,  # retained for API compatibility; batching made it moot
        engine: Optional[Engine] = None,
        memory_budget_bytes: Optional[int] = None,
    ) -> None:
        images = np.asarray(images)
        if images.ndim != len(model.input_shape or ()) + 1:
            raise ValueError(
                f"images must be a batch with per-sample shape {model.input_shape}, "
                f"got array of shape {images.shape}"
            )
        self.criterion = criterion or default_criterion_for(model)
        self._images = images
        if images.shape[0] == 0:
            self._packed = MaskMatrix.empty(model.num_parameters())
        else:
            logger.debug("mask cache: batching %d candidates", images.shape[0])
            self._packed = packed_activation_masks(
                model,
                images,
                self.criterion,
                engine,
                memory_budget_bytes=memory_budget_bytes,
            )

    def __len__(self) -> int:
        return len(self._packed)

    @property
    def images(self) -> np.ndarray:
        return self._images

    @property
    def packed(self) -> MaskMatrix:
        """The packed ``(num_candidates, num_parameters)`` mask matrix."""
        return self._packed

    @property
    def masks(self) -> np.ndarray:
        """Dense ``(num_candidates, num_parameters)`` boolean mask matrix.

        Materialised on demand (8× the packed bytes) — a compatibility
        surface; the greedy loops run on :attr:`packed`.
        """
        return self._packed.dense()

    @property
    def nbytes(self) -> int:
        """Resident bytes of the packed mask matrix."""
        return self._packed.nbytes

    def mask(self, index: int) -> np.ndarray:
        return self._packed.dense_row(index)

    def packed_mask(self, index: int) -> CoverageMap:
        """Candidate ``index``'s mask as a packed :class:`CoverageMap`."""
        return self._packed.row(index)

    def sample(self, index: int) -> np.ndarray:
        return self._images[index]

    def per_sample_coverage(self) -> np.ndarray:
        """VC(x) of every cached candidate."""
        return self._packed.fractions()

    def marginal_gains(
        self,
        covered: Union[CoverageMap, np.ndarray],
        available: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Marginal gain of every candidate against a covered mask.

        Vectorised version of Eq. 7 over the whole pool: counts, per
        candidate, how many of its activated parameters are not yet covered.
        ``covered`` may be dense boolean or packed.

        Unavailability is an *explicit argument*: when ``available`` is given,
        unavailable candidates' gains are returned as ``NaN`` rather than a
        sentinel value that a legitimate gain could alias (an all-zero-gain
        pool stays distinguishable from an exhausted one).  Use
        :meth:`best_candidate` for the greedy argmax.
        """
        covered = self._as_covered(covered)
        gains = self._packed.marginal_fractions(covered)
        if available is not None:
            available = self._check_available(available)
            gains = np.where(available, gains, np.nan)
        return gains

    def best_candidate(
        self,
        covered: Union[CoverageMap, np.ndarray],
        available: Optional[np.ndarray] = None,
    ) -> tuple[int, float]:
        """Greedy argmax: index and gain of the best available candidate.

        Ties break to the lowest index (dense ``np.argmax`` semantics), so
        packed selection orders are byte-identical to the dense reference.
        Raises ``ValueError`` when no candidate is available.
        """
        covered = self._as_covered(covered)
        if available is not None:
            available = self._check_available(available)
        index, count = self._packed.best_candidate(covered, available)
        return index, count / self._packed.nbits

    def _as_covered(self, covered: Union[CoverageMap, np.ndarray]) -> CoverageMap:
        if isinstance(covered, CoverageMap):
            if covered.nbits != self._packed.nbits:
                raise ValueError(
                    f"covered mask has {covered.nbits} bits, "
                    f"expected {self._packed.nbits}"
                )
            return covered
        covered = np.asarray(covered, dtype=bool).ravel()
        if covered.size != self._packed.nbits:
            raise ValueError(
                f"covered mask has {covered.size} entries, "
                f"expected {self._packed.nbits}"
            )
        return CoverageMap.from_dense(covered)

    def _check_available(self, available: np.ndarray) -> np.ndarray:
        available = np.asarray(available, dtype=bool).ravel()
        if available.size != len(self):
            raise ValueError(
                f"available has {available.size} entries, expected {len(self)} "
                "(one per candidate)"
            )
        return available


__all__ = [
    "activation_mask",
    "activation_masks",
    "packed_activation_masks",
    "validation_coverage",
    "set_validation_coverage",
    "mean_validation_coverage",
    "mean_validation_coverage_reference",
    "average_sample_coverage",
    "ParameterCoverage",
    "CoverageTracker",
    "ActivationMaskCache",
]
