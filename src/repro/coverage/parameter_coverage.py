"""Validation coverage — the paper's core metric (Section IV-A).

``VC(x)`` is the fraction of network parameters activated by a single test
(Eq. 3); ``VC(X)`` is the fraction activated by at least one test in a set
(Eq. 4-5).  The module provides:

* :func:`activation_mask` / :func:`activation_masks` — the boolean
  per-parameter activation mask of one sample (or, batched, of a whole pool),
  computed from ``∇θ F(x)``;
* :func:`validation_coverage` / :func:`set_validation_coverage` — the scalar
  metrics VC(x) and VC(X);
* :func:`mean_validation_coverage` — the Fig. 2 quantity ``mean_i VC(x_i)``,
  computed with one batched forward/backward through the execution engine
  (:func:`mean_validation_coverage_reference` keeps the per-sample loop as a
  reference implementation for equivalence testing);
* :class:`CoverageTracker` — incremental union bookkeeping used by the greedy
  test-generation algorithms, where marginal gains must be cheap;
* :class:`ActivationMaskCache` — precomputes masks for a candidate pool so
  Algorithm 1's inner loop is a pure mask operation.

All batched paths go through :class:`repro.engine.Engine`; every function
accepts an optional ``engine`` so callers can share one memoizing engine
across the coverage, test-generation and analysis layers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.coverage.activation import ActivationCriterion, default_criterion_for
from repro.engine import Engine, resolve_engine
from repro.nn.model import Sequential
from repro.utils.logging import get_logger

logger = get_logger("coverage.parameter")


def activation_mask(
    model: Sequential,
    x: np.ndarray,
    criterion: Optional[ActivationCriterion] = None,
) -> np.ndarray:
    """Boolean mask over the flat parameter vector activated by sample ``x``.

    Entry ``i`` is True when ``|∇θi F(x)|`` exceeds the criterion's threshold,
    i.e. a perturbation of parameter ``i`` would move the output for ``x``.
    """
    crit = criterion or default_criterion_for(model)
    grads = model.output_gradients(x, scalarization=crit.scalarization)
    return crit.activated(grads)


def activation_masks(
    model: Sequential,
    images: np.ndarray,
    criterion: Optional[ActivationCriterion] = None,
    engine: Optional[Engine] = None,
) -> np.ndarray:
    """Batched :func:`activation_mask`: ``(N, num_parameters)`` boolean matrix.

    Row ``i`` equals ``activation_mask(model, images[i], criterion)``, but the
    whole pool is evaluated with chunked batched forward/backward passes
    through the execution engine.
    """
    crit = criterion or default_criterion_for(model)
    eng = resolve_engine(model, crit, engine, cache=False)
    return eng.activation_masks(np.asarray(images), crit)


def validation_coverage(
    model: Sequential,
    x: np.ndarray,
    criterion: Optional[ActivationCriterion] = None,
) -> float:
    """``VC(x)``: fraction of parameters activated by a single test (Eq. 3)."""
    mask = activation_mask(model, x, criterion)
    return float(mask.mean())


def set_validation_coverage(
    model: Sequential,
    tests: np.ndarray | Sequence[np.ndarray],
    criterion: Optional[ActivationCriterion] = None,
    engine: Optional[Engine] = None,
) -> float:
    """``VC(X)``: fraction of parameters activated by at least one test (Eq. 4).

    The union over the test set is computed from one batched mask matrix.
    """
    if not isinstance(tests, np.ndarray):
        tests = (
            np.stack([np.asarray(t) for t in tests], axis=0)
            if len(tests)
            else np.zeros((0, *(model.input_shape or ())))
        )
    if tests.shape[0] == 0:
        return 0.0  # an empty test set activates nothing
    masks = activation_masks(model, tests, criterion, engine)
    return float(masks.any(axis=0).mean())


def mean_validation_coverage(
    model: Sequential,
    images: np.ndarray,
    criterion: Optional[ActivationCriterion] = None,
    engine: Optional[Engine] = None,
) -> float:
    """Mean per-sample coverage ``mean_i VC(x_i)`` — the quantity plotted in Fig. 2.

    Computed with one batched forward/backward per chunk instead of one pair
    of passes per image; numerically equivalent (≤ 1e-8) to
    :func:`mean_validation_coverage_reference`.
    """
    images = np.asarray(images)
    if images.shape[0] == 0:
        raise ValueError("cannot average over an empty image set")
    masks = activation_masks(model, images, criterion, engine)
    return float(masks.mean(axis=1).mean())


def mean_validation_coverage_reference(
    model: Sequential,
    images: np.ndarray,
    criterion: Optional[ActivationCriterion] = None,
) -> float:
    """Per-sample reference implementation of :func:`mean_validation_coverage`.

    Loops one forward/backward pass per image.  Kept (unbatched, engine-free)
    as the ground truth the batched path is property-tested against, and as
    the baseline of ``benchmarks/bench_engine.py``.
    """
    images = np.asarray(images)
    if images.shape[0] == 0:
        raise ValueError("cannot average over an empty image set")
    crit = criterion or default_criterion_for(model)
    values = [validation_coverage(model, images[i], crit) for i in range(images.shape[0])]
    return float(np.mean(values))


def average_sample_coverage(
    model: Sequential,
    images: np.ndarray,
    criterion: Optional[ActivationCriterion] = None,
    engine: Optional[Engine] = None,
) -> float:
    """Backwards-compatible alias of :func:`mean_validation_coverage`."""
    return mean_validation_coverage(model, images, criterion, engine)


class CoverageTracker:
    """Running union of activated parameters over an incrementally built test set.

    The greedy algorithms repeatedly ask "how much would adding this sample
    increase VC(X)?"; with the tracker this is one vectorised mask operation.
    """

    def __init__(
        self,
        model: Sequential,
        criterion: Optional[ActivationCriterion] = None,
    ) -> None:
        self._model = model
        self.criterion = criterion or default_criterion_for(model)
        self._total = model.num_parameters()
        if self._total == 0:
            raise ValueError("model has no parameters to cover")
        self._covered = np.zeros(self._total, dtype=bool)
        self._num_tests = 0

    # -- state -------------------------------------------------------------
    @property
    def total_parameters(self) -> int:
        return self._total

    @property
    def covered_mask(self) -> np.ndarray:
        """Copy of the current covered-parameter mask."""
        return self._covered.copy()

    @property
    def num_covered(self) -> int:
        return int(self._covered.sum())

    @property
    def coverage(self) -> float:
        """Current VC(X) of all added tests."""
        return self.num_covered / self._total

    @property
    def num_tests(self) -> int:
        """Number of tests added so far."""
        return self._num_tests

    def reset(self) -> None:
        self._covered[:] = False
        self._num_tests = 0

    # -- queries -----------------------------------------------------------
    def mask_for(self, x: np.ndarray) -> np.ndarray:
        """Activation mask of a sample under this tracker's criterion."""
        return activation_mask(self._model, x, self.criterion)

    def marginal_gain(self, mask: np.ndarray) -> float:
        """Coverage increase ``VC(X + x) − VC(X)`` for a candidate mask (Eq. 7)."""
        mask = self._check_mask(mask)
        newly = np.count_nonzero(mask & ~self._covered)
        return newly / self._total

    def marginal_gain_of_sample(self, x: np.ndarray) -> float:
        """Marginal gain of a raw sample (computes its mask first)."""
        return self.marginal_gain(self.mask_for(x))

    # -- updates -----------------------------------------------------------
    def add_mask(self, mask: np.ndarray) -> float:
        """Union a candidate mask into the covered set; returns the gain."""
        mask = self._check_mask(mask)
        gain = self.marginal_gain(mask)
        self._covered |= mask
        self._num_tests += 1
        return gain

    def add_sample(self, x: np.ndarray) -> float:
        """Compute the sample's mask and union it in; returns the gain."""
        return self.add_mask(self.mask_for(x))

    def add_batch(self, batch: np.ndarray, engine: Optional[Engine] = None) -> float:
        """Union a whole batch of samples in one engine pass; returns the
        total coverage gain of the batch."""
        masks = activation_masks(self._model, batch, self.criterion, engine)
        before = self.num_covered
        self._covered |= masks.any(axis=0)
        self._num_tests += int(masks.shape[0])
        return (self.num_covered - before) / self._total

    def uncovered_indices(self) -> np.ndarray:
        """Flat indices of parameters not yet activated by any added test."""
        return np.flatnonzero(~self._covered)

    def _check_mask(self, mask: np.ndarray) -> np.ndarray:
        mask = np.asarray(mask, dtype=bool).ravel()
        if mask.size != self._total:
            raise ValueError(
                f"mask has {mask.size} entries, expected {self._total} "
                "(one per scalar parameter)"
            )
        return mask


class ActivationMaskCache:
    """Precomputed activation masks for a candidate pool.

    Algorithm 1 scans the training set every iteration; recomputing
    ``∇θ F(x)`` for each candidate each iteration would be quadratic in
    backward passes.  Each candidate's mask only depends on the (fixed) model,
    so the cache computes them once — in chunked batched passes through the
    execution engine — and the greedy loop becomes pure NumPy.
    """

    def __init__(
        self,
        model: Sequential,
        images: np.ndarray,
        criterion: Optional[ActivationCriterion] = None,
        log_every: int = 0,  # retained for API compatibility; batching made it moot
        engine: Optional[Engine] = None,
    ) -> None:
        images = np.asarray(images)
        if images.ndim != len(model.input_shape or ()) + 1:
            raise ValueError(
                f"images must be a batch with per-sample shape {model.input_shape}, "
                f"got array of shape {images.shape}"
            )
        self.criterion = criterion or default_criterion_for(model)
        self._images = images
        if images.shape[0] == 0:
            self._masks = np.zeros((0, model.num_parameters()), dtype=bool)
        else:
            logger.debug("mask cache: batching %d candidates", images.shape[0])
            self._masks = activation_masks(model, images, self.criterion, engine)

    def __len__(self) -> int:
        return int(self._masks.shape[0])

    @property
    def images(self) -> np.ndarray:
        return self._images

    @property
    def masks(self) -> np.ndarray:
        """``(num_candidates, num_parameters)`` boolean mask matrix."""
        return self._masks

    def mask(self, index: int) -> np.ndarray:
        return self._masks[index]

    def sample(self, index: int) -> np.ndarray:
        return self._images[index]

    def per_sample_coverage(self) -> np.ndarray:
        """VC(x) of every cached candidate."""
        return self._masks.mean(axis=1)

    def marginal_gains(self, covered: np.ndarray) -> np.ndarray:
        """Marginal gain of every candidate against a covered mask.

        Vectorised version of Eq. 7 over the whole pool: counts, per
        candidate, how many of its activated parameters are not yet covered.
        """
        covered = np.asarray(covered, dtype=bool).ravel()
        if covered.size != self._masks.shape[1]:
            raise ValueError(
                f"covered mask has {covered.size} entries, expected {self._masks.shape[1]}"
            )
        new_bits = self._masks & ~covered[None, :]
        return new_bits.sum(axis=1) / self._masks.shape[1]


__all__ = [
    "activation_mask",
    "activation_masks",
    "validation_coverage",
    "set_validation_coverage",
    "mean_validation_coverage",
    "mean_validation_coverage_reference",
    "average_sample_coverage",
    "CoverageTracker",
    "ActivationMaskCache",
]
