"""Synthetic dataset substrate.

The paper evaluates on MNIST, CIFAR-10, ImageNet (as an off-distribution
probe set) and Gaussian-noise images.  None of those are available offline,
so this subpackage synthesises stand-ins that preserve the properties the
experiments actually use — see DESIGN.md §2 for the substitution rationale.

Loaders register in the ``datasets`` namespace of the cross-subsystem
:mod:`repro.registry`.  The ``mnist``/``cifar`` entries additionally carry
an *experiment recipe* in their entry metadata (which zoo model to train,
default epochs, a width scale) — :func:`repro.analysis.prepare_experiment`
resolves both the loader and the model through the registry, so a registered
third-party dataset with a recipe becomes trainable (and campaign-sweepable)
by name.
"""

from repro.registry import register

from repro.data.datasets import Dataset, normalize_images
from repro.data.imagenet_proxy import generate_imagenet_proxy
from repro.data.noise import generate_noise_images, generate_uniform_noise_images
from repro.data.synth_digits import (
    generate_digits,
    load_synth_mnist,
    render_digit,
)
from repro.data.synth_objects import (
    generate_objects,
    load_synth_cifar,
    render_object,
)

# -- registry entries --------------------------------------------------------
# train/test experiment loaders: factory(train_size, test_size, rng=...);
# the metadata is the experiment recipe consumed by prepare_experiment
register(
    "datasets",
    "mnist",
    load_synth_mnist,
    metadata={"model": "mnist", "epochs": 8, "width_scale": 1.0},
    summary="synthetic MNIST stand-in (train/test pair, 28x28 grayscale)",
)
register(
    "datasets",
    "cifar",
    load_synth_cifar,
    metadata={"model": "cifar", "epochs": 12, "width_scale": 0.5},
    summary="synthetic CIFAR-10 stand-in (train/test pair, 32x32 colour)",
)
# raw single-population generators (no experiment recipe): probe sets for
# coverage studies and benchmark pools
register(
    "datasets",
    "digits",
    generate_digits,
    summary="one balanced synthetic-digit population (benchmark pools)",
)
register(
    "datasets",
    "noise",
    generate_noise_images,
    summary="Gaussian-noise images (the Fig. 2 noise population)",
)
register(
    "datasets",
    "imagenet",
    generate_imagenet_proxy,
    summary="off-distribution natural-looking images (the Fig. 2 probe set)",
)

__all__ = [
    "Dataset",
    "normalize_images",
    "generate_imagenet_proxy",
    "generate_noise_images",
    "generate_uniform_noise_images",
    "generate_digits",
    "load_synth_mnist",
    "render_digit",
    "generate_objects",
    "load_synth_cifar",
    "render_object",
]
