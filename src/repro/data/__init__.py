"""Synthetic dataset substrate.

The paper evaluates on MNIST, CIFAR-10, ImageNet (as an off-distribution
probe set) and Gaussian-noise images.  None of those are available offline,
so this subpackage synthesises stand-ins that preserve the properties the
experiments actually use — see DESIGN.md §2 for the substitution rationale.
"""

from repro.data.datasets import Dataset, normalize_images
from repro.data.imagenet_proxy import generate_imagenet_proxy
from repro.data.noise import generate_noise_images, generate_uniform_noise_images
from repro.data.synth_digits import (
    generate_digits,
    load_synth_mnist,
    render_digit,
)
from repro.data.synth_objects import (
    generate_objects,
    load_synth_cifar,
    render_object,
)

__all__ = [
    "Dataset",
    "normalize_images",
    "generate_imagenet_proxy",
    "generate_noise_images",
    "generate_uniform_noise_images",
    "generate_digits",
    "load_synth_mnist",
    "render_digit",
    "generate_objects",
    "load_synth_cifar",
    "render_object",
]
