"""Dataset containers, splits and batching.

Images are stored channels-first (``(N, C, H, W)``) as ``float64`` in
``[0, 1]``; labels are integer class indices.  All the generators in this
subpackage return :class:`Dataset` objects, so the models, coverage code and
test generators share one representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import RngLike, as_generator


@dataclass
class Dataset:
    """An in-memory labelled image dataset.

    Attributes
    ----------
    images: ``(N, C, H, W)`` float64 array with values in ``[0, 1]``.
    labels: ``(N,)`` integer class indices.
    class_names: optional human-readable class names.
    name: dataset identifier used in reports.
    """

    images: np.ndarray
    labels: np.ndarray
    class_names: List[str] = field(default_factory=list)
    name: str = "dataset"

    def __post_init__(self) -> None:
        self.images = np.asarray(self.images, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.images.ndim != 4:
            raise ValueError(
                f"images must have shape (N, C, H, W), got {self.images.shape}"
            )
        if self.labels.ndim != 1:
            raise ValueError(f"labels must be 1-D, got shape {self.labels.shape}")
        if self.images.shape[0] != self.labels.shape[0]:
            raise ValueError(
                f"image count {self.images.shape[0]} does not match label count "
                f"{self.labels.shape[0]}"
            )
        if self.class_names and self.labels.size:
            if self.labels.max() >= len(self.class_names):
                raise ValueError(
                    "labels reference classes beyond the provided class_names"
                )

    # -- basic protocol -------------------------------------------------------
    def __len__(self) -> int:
        return int(self.images.shape[0])

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.images[index], int(self.labels[index])

    @property
    def sample_shape(self) -> Tuple[int, int, int]:
        """Per-sample shape ``(C, H, W)``."""
        return tuple(self.images.shape[1:])  # type: ignore[return-value]

    @property
    def num_classes(self) -> int:
        if self.class_names:
            return len(self.class_names)
        return int(self.labels.max()) + 1 if len(self) else 0

    # -- derivation -----------------------------------------------------------
    def subset(self, indices: Sequence[int], name: Optional[str] = None) -> "Dataset":
        """New dataset containing the selected indices (copies)."""
        idx = np.asarray(indices, dtype=np.int64)
        return Dataset(
            images=self.images[idx].copy(),
            labels=self.labels[idx].copy(),
            class_names=list(self.class_names),
            name=name or f"{self.name}/subset",
        )

    def take(self, n: int, rng: RngLike = None, name: Optional[str] = None) -> "Dataset":
        """Random sample of ``n`` items without replacement."""
        if n > len(self):
            raise ValueError(f"cannot take {n} samples from a dataset of {len(self)}")
        gen = as_generator(rng)
        idx = gen.choice(len(self), size=n, replace=False)
        return self.subset(idx, name=name or f"{self.name}/take{n}")

    def split(
        self, train_fraction: float = 0.8, rng: RngLike = None
    ) -> Tuple["Dataset", "Dataset"]:
        """Random train/test split."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        gen = as_generator(rng)
        perm = gen.permutation(len(self))
        cut = int(round(train_fraction * len(self)))
        if cut == 0 or cut == len(self):
            raise ValueError("split produces an empty partition")
        return (
            self.subset(perm[:cut], name=f"{self.name}/train"),
            self.subset(perm[cut:], name=f"{self.name}/test"),
        )

    def shuffled(self, rng: RngLike = None) -> "Dataset":
        """Shuffled copy."""
        gen = as_generator(rng)
        return self.subset(gen.permutation(len(self)), name=self.name)

    def class_counts(self) -> np.ndarray:
        """Number of samples per class."""
        return np.bincount(self.labels, minlength=self.num_classes)

    def batches(
        self, batch_size: int, shuffle: bool = False, rng: RngLike = None
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(images, labels)`` minibatches."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        order = np.arange(len(self))
        if shuffle:
            order = as_generator(rng).permutation(len(self))
        for start in range(0, len(self), batch_size):
            idx = order[start : start + batch_size]
            yield self.images[idx], self.labels[idx]

    def merged_with(self, other: "Dataset", name: Optional[str] = None) -> "Dataset":
        """Concatenate two datasets with compatible shapes and classes."""
        if self.sample_shape != other.sample_shape:
            raise ValueError(
                f"sample shapes differ: {self.sample_shape} vs {other.sample_shape}"
            )
        return Dataset(
            images=np.concatenate([self.images, other.images], axis=0),
            labels=np.concatenate([self.labels, other.labels], axis=0),
            class_names=list(self.class_names) or list(other.class_names),
            name=name or f"{self.name}+{other.name}",
        )


def normalize_images(images: np.ndarray) -> np.ndarray:
    """Clip images into ``[0, 1]`` (defensive; generators already do this)."""
    return np.clip(np.asarray(images, dtype=np.float64), 0.0, 1.0)


__all__ = ["Dataset", "normalize_images"]
