"""Out-of-distribution "natural image" proxy set (the ImageNet bar of Fig. 2).

Figure 2 of the paper compares the average per-sample validation coverage of
three image populations: Gaussian noise, ImageNet images, and the model's own
training set.  ImageNet plays the role of *natural images drawn from a
different distribution than the training set* — structured, but off-task.

Without ImageNet available offline, this module synthesises images with
natural-image-like statistics (smooth regions, edges, textures, composite
objects) from generative families that differ from both synthetic training
distributions.  That preserves the property Fig. 2 measures: more structure
than noise, less task-aligned than the training set.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.datasets import Dataset
from repro.utils.rng import RngLike, as_generator


def _smooth_noise(
    gen: np.random.Generator, size: int, octaves: int = 3
) -> np.ndarray:
    """Multi-octave value noise: coarse random grids upsampled and summed."""
    out = np.zeros((size, size), dtype=np.float64)
    amplitude = 1.0
    total = 0.0
    for octave in range(octaves):
        cells = max(2, 2 ** (octave + 1))
        coarse = gen.uniform(0.0, 1.0, size=(cells, cells))
        # bilinear upsample to full resolution
        xs = np.linspace(0, cells - 1, size)
        x0 = np.floor(xs).astype(int)
        x1 = np.minimum(x0 + 1, cells - 1)
        wx = xs - x0
        rows = coarse[:, x0] * (1 - wx) + coarse[:, x1] * wx
        ys = np.linspace(0, cells - 1, size)
        y0 = np.floor(ys).astype(int)
        y1 = np.minimum(y0 + 1, cells - 1)
        wy = (ys - y0)[:, None]
        fine = rows[y0, :] * (1 - wy) + rows[y1, :] * wy
        out += amplitude * fine
        total += amplitude
        amplitude *= 0.5
    return out / total


def _render_scene(gen: np.random.Generator, sample_shape: Tuple[int, int, int]) -> np.ndarray:
    """One structured, off-distribution image in the requested shape."""
    channels, size, _ = sample_shape
    # layered textures with channel-correlated colouring
    base = _smooth_noise(gen, size, octaves=3)
    detail = _smooth_noise(gen, size, octaves=4)
    ys, xs = np.mgrid[0:size, 0:size]
    px, py = (xs + 0.5) / size, (ys + 0.5) / size

    # a couple of random "object" patches (ellipses with texture)
    scene = 0.55 * base + 0.25 * detail
    num_objects = int(gen.integers(1, 4))
    for _ in range(num_objects):
        cx, cy = gen.uniform(0.2, 0.8, size=2)
        sx, sy = gen.uniform(0.08, 0.3, size=2)
        angle = gen.uniform(0, np.pi)
        dx = (px - cx) * np.cos(angle) + (py - cy) * np.sin(angle)
        dy = -(px - cx) * np.sin(angle) + (py - cy) * np.cos(angle)
        mask = ((dx / sx) ** 2 + (dy / sy) ** 2) < 1.0
        scene = np.where(mask, gen.uniform(0.2, 1.0) * (0.6 + 0.4 * detail), scene)

    if channels == 1:
        image = scene[None, :, :]
    else:
        tint = gen.uniform(0.4, 1.0, size=channels)
        shift = gen.uniform(-0.15, 0.15, size=channels)
        image = np.stack([np.clip(scene * t + s, 0, 1) for t, s in zip(tint, shift)])
    image = image + gen.normal(0.0, 0.03, size=image.shape)
    return np.clip(image, 0.0, 1.0)


def generate_imagenet_proxy(
    num_samples: int,
    sample_shape: Tuple[int, int, int],
    rng: RngLike = None,
    name: str = "imagenet-proxy",
) -> Dataset:
    """Generate ``num_samples`` off-distribution natural-looking images.

    Labels are dummy zeros — Fig. 2 only measures coverage, never accuracy,
    on this population.
    """
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    if len(sample_shape) != 3:
        raise ValueError(f"sample_shape must be (C, H, W), got {sample_shape}")
    gen = as_generator(rng)
    images = np.zeros((num_samples, *sample_shape), dtype=np.float64)
    for i in range(num_samples):
        images[i] = _render_scene(gen, sample_shape)
    labels = np.zeros(num_samples, dtype=np.int64)
    return Dataset(images=images, labels=labels, name=name)


__all__ = ["generate_imagenet_proxy"]
