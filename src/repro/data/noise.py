"""Gaussian-noise image sets (the "noisy images" population of Fig. 2)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.datasets import Dataset
from repro.utils.rng import RngLike, as_generator


def generate_noise_images(
    num_samples: int,
    sample_shape: Tuple[int, int, int],
    rng: RngLike = None,
    mean: float = 0.5,
    std: float = 0.25,
    name: str = "noise",
) -> Dataset:
    """Generate pure Gaussian-noise images clipped to ``[0, 1]``.

    These carry none of the structure the models were trained on, so they are
    expected to activate the fewest parameters (left-most bars of Fig. 2).
    Labels are dummy zeros — the coverage metric never reads them.
    """
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    if len(sample_shape) != 3:
        raise ValueError(f"sample_shape must be (C, H, W), got {sample_shape}")
    if std <= 0:
        raise ValueError("std must be positive")
    gen = as_generator(rng)
    images = gen.normal(mean, std, size=(num_samples, *sample_shape))
    images = np.clip(images, 0.0, 1.0)
    labels = np.zeros(num_samples, dtype=np.int64)
    return Dataset(images=images, labels=labels, name=name)


def generate_uniform_noise_images(
    num_samples: int,
    sample_shape: Tuple[int, int, int],
    rng: RngLike = None,
    name: str = "uniform-noise",
) -> Dataset:
    """Uniform-noise variant, useful for robustness checks of the Fig. 2 trend."""
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    gen = as_generator(rng)
    images = gen.uniform(0.0, 1.0, size=(num_samples, *sample_shape))
    labels = np.zeros(num_samples, dtype=np.int64)
    return Dataset(images=images, labels=labels, name=name)


__all__ = ["generate_noise_images", "generate_uniform_noise_images"]
