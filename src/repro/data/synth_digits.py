"""Procedurally generated MNIST-like digit images.

The paper trains its first model on MNIST.  Without the real dataset offline,
this module renders 28×28 grey-scale digit images from stroke templates: each
digit class is a small set of line segments in a unit square, drawn with a
random stroke thickness, randomly translated and scaled, and corrupted with
pixel noise.  The result is a 10-class image problem on which the Table-I
style CNN trains to high accuracy — the property the paper's experiments rely
on (high accuracy ⇒ most parameters participate for training inputs).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.data.datasets import Dataset
from repro.utils.rng import RngLike, as_generator

IMAGE_SIZE = 28

#: stroke templates per digit, as line segments ((x0, y0), (x1, y1)) in the
#: unit square with the origin at the top-left corner.
_DIGIT_STROKES: Dict[int, List[Tuple[Tuple[float, float], Tuple[float, float]]]] = {
    0: [
        ((0.3, 0.2), (0.7, 0.2)),
        ((0.7, 0.2), (0.7, 0.8)),
        ((0.7, 0.8), (0.3, 0.8)),
        ((0.3, 0.8), (0.3, 0.2)),
    ],
    1: [
        ((0.5, 0.15), (0.5, 0.85)),
        ((0.38, 0.28), (0.5, 0.15)),
    ],
    2: [
        ((0.3, 0.25), (0.7, 0.25)),
        ((0.7, 0.25), (0.7, 0.5)),
        ((0.7, 0.5), (0.3, 0.8)),
        ((0.3, 0.8), (0.7, 0.8)),
    ],
    3: [
        ((0.3, 0.2), (0.7, 0.2)),
        ((0.7, 0.2), (0.7, 0.5)),
        ((0.7, 0.5), (0.4, 0.5)),
        ((0.7, 0.5), (0.7, 0.8)),
        ((0.7, 0.8), (0.3, 0.8)),
    ],
    4: [
        ((0.35, 0.2), (0.35, 0.55)),
        ((0.35, 0.55), (0.7, 0.55)),
        ((0.65, 0.2), (0.65, 0.85)),
    ],
    5: [
        ((0.7, 0.2), (0.3, 0.2)),
        ((0.3, 0.2), (0.3, 0.5)),
        ((0.3, 0.5), (0.7, 0.5)),
        ((0.7, 0.5), (0.7, 0.8)),
        ((0.7, 0.8), (0.3, 0.8)),
    ],
    6: [
        ((0.65, 0.2), (0.35, 0.35)),
        ((0.35, 0.35), (0.35, 0.8)),
        ((0.35, 0.8), (0.65, 0.8)),
        ((0.65, 0.8), (0.65, 0.55)),
        ((0.65, 0.55), (0.35, 0.55)),
    ],
    7: [
        ((0.3, 0.2), (0.7, 0.2)),
        ((0.7, 0.2), (0.45, 0.85)),
    ],
    8: [
        ((0.35, 0.2), (0.65, 0.2)),
        ((0.65, 0.2), (0.65, 0.5)),
        ((0.65, 0.5), (0.35, 0.5)),
        ((0.35, 0.5), (0.35, 0.2)),
        ((0.35, 0.5), (0.35, 0.8)),
        ((0.35, 0.8), (0.65, 0.8)),
        ((0.65, 0.8), (0.65, 0.5)),
    ],
    9: [
        ((0.65, 0.5), (0.35, 0.5)),
        ((0.35, 0.5), (0.35, 0.25)),
        ((0.35, 0.25), (0.65, 0.25)),
        ((0.65, 0.25), (0.65, 0.8)),
        ((0.65, 0.8), (0.4, 0.8)),
    ],
}

CLASS_NAMES = [str(d) for d in range(10)]


def _render_segment(
    canvas: np.ndarray,
    p0: Tuple[float, float],
    p1: Tuple[float, float],
    thickness: float,
) -> None:
    """Draw an anti-aliased line segment onto ``canvas`` (in place).

    Pixels receive intensity proportional to a Gaussian of their distance to
    the segment, giving soft MNIST-like strokes.
    """
    size = canvas.shape[0]
    ys, xs = np.mgrid[0:size, 0:size]
    # pixel centres in unit coordinates
    px = (xs + 0.5) / size
    py = (ys + 0.5) / size

    x0, y0 = p0
    x1, y1 = p1
    dx, dy = x1 - x0, y1 - y0
    seg_len_sq = dx * dx + dy * dy
    if seg_len_sq < 1e-12:
        dist = np.hypot(px - x0, py - y0)
    else:
        t = ((px - x0) * dx + (py - y0) * dy) / seg_len_sq
        t = np.clip(t, 0.0, 1.0)
        cx = x0 + t * dx
        cy = y0 + t * dy
        dist = np.hypot(px - cx, py - cy)
    intensity = np.exp(-0.5 * (dist / max(thickness, 1e-3)) ** 2)
    np.maximum(canvas, intensity, out=canvas)


def render_digit(
    digit: int,
    rng: RngLike = None,
    size: int = IMAGE_SIZE,
    jitter: float = 0.06,
    thickness_range: Tuple[float, float] = (0.03, 0.055),
    noise_std: float = 0.05,
) -> np.ndarray:
    """Render one digit image of shape ``(1, size, size)`` with values in [0, 1].

    Parameters
    ----------
    digit: class index 0-9.
    jitter: maximum random translation (in unit coordinates) applied to the
        whole glyph, plus per-endpoint wobble of half that magnitude.
    thickness_range: stroke thickness is drawn uniformly from this range.
    noise_std: standard deviation of additive Gaussian pixel noise.
    """
    if digit not in _DIGIT_STROKES:
        raise ValueError(f"digit must be in 0..9, got {digit}")
    gen = as_generator(rng)
    canvas = np.zeros((size, size), dtype=np.float64)

    offset = gen.uniform(-jitter, jitter, size=2)
    scale = gen.uniform(0.85, 1.1)
    thickness = gen.uniform(*thickness_range)

    for p0, p1 in _DIGIT_STROKES[digit]:
        wobble0 = gen.uniform(-jitter / 2, jitter / 2, size=2)
        wobble1 = gen.uniform(-jitter / 2, jitter / 2, size=2)
        q0 = (
            0.5 + (p0[0] - 0.5) * scale + offset[0] + wobble0[0],
            0.5 + (p0[1] - 0.5) * scale + offset[1] + wobble0[1],
        )
        q1 = (
            0.5 + (p1[0] - 0.5) * scale + offset[0] + wobble1[0],
            0.5 + (p1[1] - 0.5) * scale + offset[1] + wobble1[1],
        )
        _render_segment(canvas, q0, q1, thickness)

    if noise_std > 0:
        canvas = canvas + gen.normal(0.0, noise_std, size=canvas.shape)
    canvas = np.clip(canvas, 0.0, 1.0)
    return canvas[None, :, :]


def generate_digits(
    num_samples: int,
    rng: RngLike = None,
    size: int = IMAGE_SIZE,
    noise_std: float = 0.05,
    name: str = "synth-digits",
) -> Dataset:
    """Generate a balanced MNIST-like dataset of ``num_samples`` images."""
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    gen = as_generator(rng)
    images = np.zeros((num_samples, 1, size, size), dtype=np.float64)
    labels = np.zeros(num_samples, dtype=np.int64)
    for i in range(num_samples):
        digit = i % 10
        labels[i] = digit
        images[i] = render_digit(digit, rng=gen, size=size, noise_std=noise_std)
    perm = gen.permutation(num_samples)
    return Dataset(
        images=images[perm], labels=labels[perm], class_names=CLASS_NAMES, name=name
    )


def load_synth_mnist(
    train_size: int = 800,
    test_size: int = 200,
    rng: RngLike = None,
) -> Tuple[Dataset, Dataset]:
    """Generate a train/test pair playing the role MNIST plays in the paper."""
    gen = as_generator(rng)
    train = generate_digits(train_size, rng=gen, name="synth-mnist/train")
    test = generate_digits(test_size, rng=gen, name="synth-mnist/test")
    return train, test


__all__ = [
    "IMAGE_SIZE",
    "CLASS_NAMES",
    "render_digit",
    "generate_digits",
    "load_synth_mnist",
]
