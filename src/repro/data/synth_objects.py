"""Procedurally generated CIFAR-like colour object images.

The paper's second model is a ReLU CNN trained on CIFAR-10 (32×32 RGB natural
images, 10 classes).  This module synthesises a 10-class colour-image problem
of comparable difficulty profile: each class is a parametric shape/texture
family rendered with random colours, positions, sizes and backgrounds, plus
pixel noise.  The task is intentionally harder than the digit task (colour,
clutter, intra-class variation), so the trained model lands in the
"good-but-not-perfect accuracy" regime that CIFAR-10 occupies in the paper.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.data.datasets import Dataset
from repro.utils.rng import RngLike, as_generator

IMAGE_SIZE = 32

CLASS_NAMES = [
    "disk",
    "square",
    "triangle",
    "cross",
    "ring",
    "hstripes",
    "vstripes",
    "checker",
    "diagonal",
    "blob",
]


def _coordinate_grid(size: int) -> Tuple[np.ndarray, np.ndarray]:
    ys, xs = np.mgrid[0:size, 0:size]
    return (xs + 0.5) / size, (ys + 0.5) / size


def _random_color(gen: np.random.Generator, min_brightness: float = 0.35) -> np.ndarray:
    """A random RGB colour that is bright enough to contrast with backgrounds."""
    color = gen.uniform(0.0, 1.0, size=3)
    if color.max() < min_brightness:
        color = color + (min_brightness - color.max())
    return np.clip(color, 0.0, 1.0)


def _shape_mask(
    class_index: int, size: int, gen: np.random.Generator
) -> np.ndarray:
    """Binary/soft mask of the class's shape, randomly placed and sized."""
    px, py = _coordinate_grid(size)
    cx = gen.uniform(0.35, 0.65)
    cy = gen.uniform(0.35, 0.65)
    radius = gen.uniform(0.18, 0.3)
    name = CLASS_NAMES[class_index]

    if name == "disk":
        return (np.hypot(px - cx, py - cy) < radius).astype(np.float64)
    if name == "square":
        half = radius * 0.9
        return (
            (np.abs(px - cx) < half) & (np.abs(py - cy) < half)
        ).astype(np.float64)
    if name == "triangle":
        # upright triangle: inside if below the two slanted edges and above base
        base = cy + radius
        apex = cy - radius
        width = radius * 1.2
        inside = (
            (py < base)
            & (py > apex)
            & (np.abs(px - cx) < width * (py - apex) / (base - apex + 1e-9))
        )
        return inside.astype(np.float64)
    if name == "cross":
        arm = radius * 0.45
        return (
            ((np.abs(px - cx) < arm) & (np.abs(py - cy) < radius * 1.3))
            | ((np.abs(py - cy) < arm) & (np.abs(px - cx) < radius * 1.3))
        ).astype(np.float64)
    if name == "ring":
        dist = np.hypot(px - cx, py - cy)
        return ((dist < radius) & (dist > radius * 0.55)).astype(np.float64)
    if name == "hstripes":
        freq = gen.integers(3, 6)
        phase = gen.uniform(0, np.pi)
        return (np.sin(2 * np.pi * freq * py + phase) > 0).astype(np.float64)
    if name == "vstripes":
        freq = gen.integers(3, 6)
        phase = gen.uniform(0, np.pi)
        return (np.sin(2 * np.pi * freq * px + phase) > 0).astype(np.float64)
    if name == "checker":
        freq = gen.integers(3, 5)
        return (
            (np.sin(2 * np.pi * freq * px) * np.sin(2 * np.pi * freq * py)) > 0
        ).astype(np.float64)
    if name == "diagonal":
        slope = gen.uniform(0.7, 1.4) * (1 if gen.random() < 0.5 else -1)
        offset = gen.uniform(-0.2, 0.2)
        dist = np.abs(py - (slope * (px - 0.5) + 0.5 + offset)) / np.sqrt(1 + slope**2)
        return (dist < 0.08).astype(np.float64)
    if name == "blob":
        # anisotropic Gaussian blob
        sx = gen.uniform(0.1, 0.22)
        sy = gen.uniform(0.1, 0.22)
        return np.exp(-(((px - cx) / sx) ** 2 + ((py - cy) / sy) ** 2) / 2.0)
    raise ValueError(f"unknown class index {class_index}")


def render_object(
    class_index: int,
    rng: RngLike = None,
    size: int = IMAGE_SIZE,
    noise_std: float = 0.08,
) -> np.ndarray:
    """Render one ``(3, size, size)`` image of the given class with values in [0, 1]."""
    if not 0 <= class_index < len(CLASS_NAMES):
        raise ValueError(
            f"class_index must be in 0..{len(CLASS_NAMES) - 1}, got {class_index}"
        )
    gen = as_generator(rng)
    px, py = _coordinate_grid(size)

    # background: a random colour gradient
    bg_a = _random_color(gen, min_brightness=0.1) * 0.6
    bg_b = _random_color(gen, min_brightness=0.1) * 0.6
    direction = gen.uniform(0, 2 * np.pi)
    ramp = (np.cos(direction) * px + np.sin(direction) * py + 1.0) / 2.0
    background = bg_a[:, None, None] + (bg_b - bg_a)[:, None, None] * ramp[None, :, :]

    mask = _shape_mask(class_index, size, gen)
    fg_color = _random_color(gen)
    foreground = fg_color[:, None, None] * mask[None, :, :]

    image = background * (1.0 - mask[None, :, :]) + foreground
    if noise_std > 0:
        image = image + gen.normal(0.0, noise_std, size=image.shape)
    return np.clip(image, 0.0, 1.0)


def generate_objects(
    num_samples: int,
    rng: RngLike = None,
    size: int = IMAGE_SIZE,
    noise_std: float = 0.08,
    name: str = "synth-objects",
) -> Dataset:
    """Generate a balanced CIFAR-like dataset of ``num_samples`` images."""
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    gen = as_generator(rng)
    images = np.zeros((num_samples, 3, size, size), dtype=np.float64)
    labels = np.zeros(num_samples, dtype=np.int64)
    for i in range(num_samples):
        cls = i % len(CLASS_NAMES)
        labels[i] = cls
        images[i] = render_object(cls, rng=gen, size=size, noise_std=noise_std)
    perm = gen.permutation(num_samples)
    return Dataset(
        images=images[perm], labels=labels[perm], class_names=CLASS_NAMES, name=name
    )


def load_synth_cifar(
    train_size: int = 800,
    test_size: int = 200,
    rng: RngLike = None,
) -> Tuple[Dataset, Dataset]:
    """Generate a train/test pair playing the role CIFAR-10 plays in the paper."""
    gen = as_generator(rng)
    train = generate_objects(train_size, rng=gen, name="synth-cifar/train")
    test = generate_objects(test_size, rng=gen, name="synth-cifar/test")
    return train, test


__all__ = [
    "IMAGE_SIZE",
    "CLASS_NAMES",
    "render_object",
    "generate_objects",
    "load_synth_cifar",
]
