"""Batched execution engine: the vectorised forward/backward hot path.

This subsystem is the library's answer to "make coverage measurement, test
generation, attacks and validation run as fast as the hardware allows": one
:class:`~repro.engine.engine.Engine` per model batches every gradient/mask
query across whole candidate pools, memoizes immutable results keyed by
``(parameter digest, array fingerprint)``, and routes all execution through a
pluggable :class:`~repro.engine.backend.ExecutionBackend` so alternative
executors (multiprocessing, other array libraries) can be added without
touching the consumers.

Layering: ``repro.engine`` depends only on ``repro.nn`` (plus a lazy default
criterion lookup); ``repro.coverage``, ``repro.testgen``, ``repro.attacks``,
``repro.validation`` and ``repro.analysis`` all consume it.
"""

from repro.engine.backend import (
    BackendSpec,
    ExecutionBackend,
    NumpyBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.engine.cache import (
    DEFAULT_CACHE_BYTES,
    DEFAULT_CACHE_ENTRIES,
    BatchResultCache,
    CacheStats,
    array_fingerprint,
)
from repro.engine.engine import (
    DEFAULT_BATCH_SIZE,
    Engine,
    neuron_layer_indices,
    resolve_engine,
)

__all__ = [
    # backends
    "BackendSpec",
    "ExecutionBackend",
    "NumpyBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    # cache
    "DEFAULT_CACHE_BYTES",
    "DEFAULT_CACHE_ENTRIES",
    "BatchResultCache",
    "CacheStats",
    "array_fingerprint",
    # engine
    "DEFAULT_BATCH_SIZE",
    "Engine",
    "neuron_layer_indices",
    "resolve_engine",
]
