"""Batched execution engine: the vectorised forward/backward hot path.

This subsystem is the library's answer to "make coverage measurement, test
generation, attacks and validation run as fast as the hardware allows": one
:class:`~repro.engine.engine.Engine` per model batches every gradient/mask
query across whole candidate pools, memoizes immutable results keyed by
``(parameter digest, array fingerprint)``, and routes all execution through a
pluggable :class:`~repro.engine.backend.ExecutionBackend`.  Three backends
ship: the in-process :class:`~repro.engine.backend.NumpyBackend` (default);
the multi-core :class:`~repro.engine.parallel.ParallelBackend`, which shards
chunks across a persistent worker pool with shared-memory transport; and the
:class:`~repro.engine.model_axis.ModelAxisBackend`, which fuses sets of
same-architecture models (the detection experiments' perturbed copies) into
one batched dispatch per layer along a leading model axis.  Selecting a
backend is the only call-site change either optimisation needs: the engine's
``stacked_forward`` groups models by the backend's advertised
``model_axis_capacity`` and falls back to a bit-identical per-copy loop on
backends without native support.

Layering: ``repro.engine`` depends only on ``repro.nn`` (plus a lazy default
criterion lookup); ``repro.coverage``, ``repro.testgen``, ``repro.attacks``,
``repro.validation`` and ``repro.analysis`` all consume it.
"""

from repro.engine.backend import (
    BackendSpec,
    ExecutionBackend,
    NumpyBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.engine.cache import (
    DEFAULT_CACHE_BYTES,
    DEFAULT_CACHE_ENTRIES,
    BatchResultCache,
    CacheStats,
    array_fingerprint,
)
from repro.engine.engine import (
    DEFAULT_BATCH_SIZE,
    Engine,
    neuron_layer_indices,
    resolve_engine,
)
from repro.engine.model_axis import ModelAxisBackend
from repro.engine.parallel import ParallelBackend, default_worker_count

__all__ = [
    # backends
    "BackendSpec",
    "ExecutionBackend",
    "ModelAxisBackend",
    "NumpyBackend",
    "ParallelBackend",
    "available_backends",
    "default_worker_count",
    "get_backend",
    "register_backend",
    # cache
    "DEFAULT_CACHE_BYTES",
    "DEFAULT_CACHE_ENTRIES",
    "BatchResultCache",
    "CacheStats",
    "array_fingerprint",
    # engine
    "DEFAULT_BATCH_SIZE",
    "Engine",
    "neuron_layer_indices",
    "resolve_engine",
]
