"""Pluggable execution backends for the batched engine.

The :class:`~repro.engine.engine.Engine` never touches a model's forward or
backward passes directly — it goes through an :class:`ExecutionBackend`.  The
default :class:`NumpyBackend` simply delegates to the model's own NumPy
implementation; the seam exists so future work can add multiprocessing,
sharded or alternative array backends (the ROADMAP's scaling directions)
without another cross-cutting rewrite of the coverage/testgen/attack
consumers.

Backends are registered by name through :func:`register_backend` and resolved
with :func:`get_backend`, which accepts a name, a backend instance or a
backend class.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Type, Union

import numpy as np

from repro.nn.losses import Loss, get_loss
from repro.nn.model import Sequential
from repro.registry import registry as _registry


def threshold_and_pack(grads: np.ndarray, epsilon: float) -> np.ndarray:
    """Gradient matrix → packed activation-mask words.

    The single thresholding definition — delegated to
    :meth:`repro.coverage.activation.ActivationCriterion.activated` — shared
    by the default backend implementation and the parallel workers, so the
    activation rule can never diverge between transport paths.
    """
    from repro.coverage.activation import ActivationCriterion
    from repro.coverage.bitmap import pack_bool

    return pack_bool(ActivationCriterion(epsilon=epsilon).activated(grads))


def pack_neuron_outputs(
    outputs: List[np.ndarray],
    num_samples: int,
    threshold: float,
    layer_indices: Tuple[int, ...],
) -> np.ndarray:
    """Per-layer forward outputs → packed neuron-mask words.

    Shared by the default backend implementation and the parallel workers.
    """
    from repro.coverage.bitmap import pack_bool

    parts = [
        (outputs[i] > threshold).reshape(num_samples, -1) for i in layer_indices
    ]
    return pack_bool(np.concatenate(parts, axis=1))


class ExecutionBackend:
    """Abstract executor of a model's batched forward/backward primitives.

    All methods take the model explicitly so one backend instance can serve
    several engines (backends are stateless policy objects, not model
    wrappers).
    """

    #: registry name; subclasses must override
    name: str = "backend"

    @property
    def model_axis_capacity(self) -> int:
        """Models fused per stacked dispatch (0 = no native model-axis path).

        Backends advertising a positive capacity execute
        :meth:`stacked_forward` / :meth:`stacked_forward_collect` /
        :meth:`stacked_packed_masks` with genuinely fused weight stacks, and
        the detection/campaign runners group their perturbed copies into
        batches of this size.  The default implementations below loop the
        models one at a time and stack the results, so every backend
        supports the stacked API with identical semantics either way.
        """
        return 0

    @property
    def parallelism(self) -> int:
        """Number of shards a batch is split across (1 = no sharding).

        The engine multiplies its chunk size by this, so each worker of a
        sharded backend still processes ``batch_size`` samples per dispatch.
        """
        return 1

    @property
    def cache_stats(self):
        """Transport-level cache counters (``None`` for stateless backends).

        Sharded backends report how often the published model could be
        reused versus re-shipped; the engine merges these into its
        :attr:`~repro.engine.engine.Engine.stats`.
        """
        return None

    def close(self) -> None:
        """Release any worker pools / shared resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        # context-managed use guarantees worker processes and shared-memory
        # segments are reaped even when a dispatch raised mid-flight
        self.close()

    def forward(self, model: Sequential, x: np.ndarray) -> np.ndarray:
        """Inference-mode logits for a batch."""
        raise NotImplementedError

    def forward_collect(self, model: Sequential, x: np.ndarray) -> List[np.ndarray]:
        """Every layer's output for a batch (neuron-coverage primitive)."""
        raise NotImplementedError

    def output_gradients(
        self, model: Sequential, x: np.ndarray, scalarization: str
    ) -> np.ndarray:
        """Per-sample flat parameter gradients of the scalarised output,
        shape ``(N, num_parameters)``."""
        raise NotImplementedError

    def input_gradients(
        self,
        model: Sequential,
        x: np.ndarray,
        targets: np.ndarray,
        loss: Union[str, Loss],
    ) -> Tuple[float, np.ndarray]:
        """Loss value and gradient of the loss with respect to the input batch."""
        raise NotImplementedError

    def loss_parameter_gradients(
        self,
        model: Sequential,
        x: np.ndarray,
        targets: np.ndarray,
        loss: Union[str, Loss],
    ) -> Tuple[float, np.ndarray]:
        """Loss value and flat parameter gradients of a loss, summed over the
        batch.

        Runs in inference mode (no dropout): the engine serves analysis and
        attacks, not training — the :class:`~repro.models.training.Trainer`
        keeps its own training-mode loop.
        """
        raise NotImplementedError

    # -- packed mask primitives ---------------------------------------------
    def packed_masks(
        self, model: Sequential, x: np.ndarray, scalarization: str, epsilon: float
    ) -> np.ndarray:
        """Packed per-parameter activation masks: uint64 words, shape
        ``(N, ceil(P / 64))``.

        Row ``i`` is the little-endian bit-packing of
        ``|∇θ F(x_i)| > epsilon`` (strict non-zero when ``epsilon == 0``).
        The default derives from :meth:`output_gradients`; sharded backends
        override it to threshold *and pack inside the workers*, so only the
        1/8-size word matrix crosses the process boundary.
        """
        return threshold_and_pack(self.output_gradients(model, x, scalarization), epsilon)

    def packed_neuron_masks(
        self,
        model: Sequential,
        x: np.ndarray,
        threshold: float,
        layer_indices: Tuple[int, ...],
    ) -> np.ndarray:
        """Packed per-neuron activation masks: uint64 words, shape
        ``(N, ceil(num_neurons / 64))``.

        Concatenates, per sample, the thresholded post-activation outputs of
        the given layers and packs them.  Overridable for the same transport
        reason as :meth:`packed_masks`.
        """
        return pack_neuron_outputs(
            self.forward_collect(model, x), x.shape[0], threshold, layer_indices
        )

    # -- model-axis (stacked) primitives ------------------------------------
    def stacked_forward(
        self,
        models: List[Sequential],
        x: np.ndarray,
        base: Optional[Sequential] = None,
    ) -> np.ndarray:
        """Logits for every model of a same-architecture set, shape
        ``(M, N, num_classes)``.

        Slice ``m`` must equal ``forward(models[m], x)`` bit for bit.  The
        default loops the models; backends with a positive
        :attr:`model_axis_capacity` fuse them into one dispatch per layer.
        ``base``, when given, is the unperturbed victim the models were
        derived from — fused backends share its activation trunk up to each
        copy's first divergent layer (equal parameters on equal inputs are
        bit-identical, so the shortcut is unobservable); the default loop
        ignores it.
        """
        return np.stack([self.forward(model, x) for model in models])

    def stacked_forward_collect(
        self, models: List[Sequential], x: np.ndarray
    ) -> List[np.ndarray]:
        """Every layer's output for every model: a list of ``(M, N, ...)``
        arrays, one per layer, matching :meth:`forward_collect` per slice."""
        collected = [self.forward_collect(model, x) for model in models]
        return [np.stack(layer_outs) for layer_outs in zip(*collected)]

    def stacked_packed_masks(
        self,
        models: List[Sequential],
        x: np.ndarray,
        scalarization: str,
        epsilon: float,
    ) -> np.ndarray:
        """Packed activation masks for every model, shape ``(M, N, W)``.

        Slice ``m`` must equal ``packed_masks(models[m], x, ...)``."""
        return np.stack(
            [self.packed_masks(model, x, scalarization, epsilon) for model in models]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.__class__.__name__}()"


class NumpyBackend(ExecutionBackend):
    """Default backend: the model's own single-process NumPy implementation."""

    name = "numpy"

    def forward(self, model: Sequential, x: np.ndarray) -> np.ndarray:
        return model.forward(x, training=False)

    def forward_collect(self, model: Sequential, x: np.ndarray) -> List[np.ndarray]:
        return model.forward_collect(x)

    def output_gradients(
        self, model: Sequential, x: np.ndarray, scalarization: str
    ) -> np.ndarray:
        return model.output_gradients_batch(x, scalarization)

    def input_gradients(
        self,
        model: Sequential,
        x: np.ndarray,
        targets: np.ndarray,
        loss: Union[str, Loss],
    ) -> Tuple[float, np.ndarray]:
        return model.input_gradient(x, targets, loss)

    def loss_parameter_gradients(
        self,
        model: Sequential,
        x: np.ndarray,
        targets: np.ndarray,
        loss: Union[str, Loss],
    ) -> Tuple[float, np.ndarray]:
        loss_fn = get_loss(loss)
        model.zero_grad()
        logits = model.forward(x, training=False)
        value, grad_logits = loss_fn.value_and_grad(logits, targets)
        model.backward(grad_logits)
        flat = model.parameter_view().flat_grads()
        model.zero_grad()
        return value, flat


_BACKENDS: Dict[str, Type[ExecutionBackend]] = {}

BackendSpec = Union[str, ExecutionBackend, Type[ExecutionBackend]]


def register_backend(cls: Type[ExecutionBackend]) -> Type[ExecutionBackend]:
    """Register a backend class under its ``name`` (usable as a decorator).

    The class is also published to the ``backends`` namespace of the
    cross-subsystem :mod:`repro.registry`, so declarative drivers and the
    ``python -m repro registry`` listing see engine backends alongside
    strategies, attacks, criteria, datasets and models.
    """
    name = cls.name
    if not name or name == ExecutionBackend.name:
        raise ValueError(f"backend class {cls.__name__} must define a unique name")
    _BACKENDS[name] = cls
    doc = (cls.__doc__ or "").strip()
    _registry.register(
        "backends", name, cls, summary=doc.splitlines()[0] if doc else ""
    )
    return cls


def available_backends() -> List[str]:
    """Names of all registered backends."""
    return sorted(_BACKENDS)


def get_backend(spec: BackendSpec = "numpy") -> ExecutionBackend:
    """Resolve a backend from a name, instance or class."""
    if isinstance(spec, ExecutionBackend):
        return spec
    if isinstance(spec, type) and issubclass(spec, ExecutionBackend):
        return spec()
    try:
        return _BACKENDS[spec]()
    except KeyError as exc:
        raise ValueError(
            f"unknown backend {spec!r}; choose from {available_backends()}"
        ) from exc


register_backend(NumpyBackend)


__all__ = [
    "ExecutionBackend",
    "NumpyBackend",
    "BackendSpec",
    "pack_neuron_outputs",
    "register_backend",
    "available_backends",
    "get_backend",
    "threshold_and_pack",
]
