"""Memoization layer for the batched execution engine.

The engine repeatedly evaluates the *same* immutable quantities — forward
logits, per-sample output-gradient matrices, activation masks — for the same
(model, batch) pairs: the greedy selection loop, the combined method's
switch-point probe and the ablation sweeps all revisit the candidate pool.
This module provides the two pieces that make those revisits free:

* :func:`array_fingerprint` — a content hash of an ndarray (dtype, shape and
  raw bytes), used together with the model's parameter digest to key results;
* :class:`BatchResultCache` — a small bounded LRU mapping from those keys to
  computed arrays, with hit/miss statistics for observability.

Keys include the model's parameter digest, so a cache never returns results
computed against parameters that have since been perturbed (entries for the
old parameters simply stop matching and age out of the LRU).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Hashable, Optional, Tuple

import numpy as np

#: default number of memoized results kept per engine
DEFAULT_CACHE_ENTRIES = 128

#: default cap on the total ndarray bytes a cache may pin (256 MiB); large
#: per-sample gradient matrices are evicted LRU-first once the budget is hit
DEFAULT_CACHE_BYTES = 256 * 1024 * 1024


def array_fingerprint(array: np.ndarray) -> str:
    """Content fingerprint of an array: SHA-1 over dtype, shape and bytes.

    Two arrays get the same fingerprint exactly when they compare equal
    elementwise with identical dtype and shape.  The array is made contiguous
    if needed; the cost is one linear pass over the data, which is orders of
    magnitude cheaper than the forward/backward passes the fingerprint
    memoizes.
    """
    arr = np.ascontiguousarray(array)
    hasher = hashlib.sha1()
    hasher.update(str(arr.dtype).encode("utf-8"))
    hasher.update(repr(arr.shape).encode("utf-8"))
    hasher.update(arr.tobytes())
    return hasher.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of a :class:`BatchResultCache`.

    Also used for the transport-level caches of sharded backends (model
    publications reused vs re-shipped); :meth:`merge` folds several counters
    into one so :attr:`Engine.stats` can report a single merged view across
    the memo cache and every worker-facing cache.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: fault-tolerance counters (see :mod:`repro.faults`): dispatches retried
    #: after a transient failure, worker pools respawned, and circuit-breaker
    #: backend downgrades — zero everywhere outside failure scenarios
    retries: int = 0
    restarts: int = 0
    downgrades: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def merge(self, *others: "CacheStats") -> "CacheStats":
        """A new counter summing this one with ``others`` (inputs untouched)."""
        merged = CacheStats(
            self.hits,
            self.misses,
            self.evictions,
            self.retries,
            self.restarts,
            self.downgrades,
        )
        for other in others:
            merged.hits += other.hits
            merged.misses += other.misses
            merged.evictions += other.evictions
            merged.retries += other.retries
            merged.restarts += other.restarts
            merged.downgrades += other.downgrades
        return merged

    def __add__(self, other: "CacheStats") -> "CacheStats":
        if not isinstance(other, CacheStats):
            return NotImplemented
        return self.merge(other)


def _value_nbytes(value: Any) -> int:
    """Approximate resident size of a cached value (ndarray-aware)."""
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (tuple, list)):
        return sum(_value_nbytes(v) for v in value)
    return 0


class BatchResultCache:
    """LRU cache from hashable keys to computed results, bounded both by
    entry count and by total ndarray bytes.

    The byte bound matters more than the entry count in practice: one
    memoized per-sample gradient matrix for a large candidate pool can be
    hundreds of megabytes, so a count-only bound could pin gigabytes.

    Values are stored as-is (no copies); callers must treat returned arrays
    as read-only.  The engine enforces this by setting ``writeable=False`` on
    arrays it caches.

    The cache is **thread-safe**: lookups, insertions and evictions run
    under an internal lock, so engines shared across the serving layer's
    worker threads (:mod:`repro.serve`) can never corrupt the LRU order or
    the byte accounting.  The lock bounds bookkeeping only — the expensive
    compute happens outside the cache, so two threads missing the same key
    may both compute it (last write wins; results are deterministic, so the
    duplicates are identical).
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_CACHE_ENTRIES,
        max_bytes: int = DEFAULT_CACHE_BYTES,
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._nbytes = 0
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Total ndarray bytes currently pinned by the cache."""
        return self._nbytes

    def get(self, key: Hashable) -> Optional[Any]:
        """Look up a key, refreshing its LRU position; ``None`` on miss."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) an entry, evicting least-recently-used entries
        until both the entry-count and byte budgets are satisfied.

        A single value larger than ``max_bytes`` is not cached at all (it
        would only evict everything else and then be evicted next)."""
        size = _value_nbytes(value)
        if size > self.max_bytes:
            return
        with self._lock:
            if key in self._entries:
                self._nbytes -= _value_nbytes(self._entries[key])
            self._entries[key] = value
            self._entries.move_to_end(key)
            self._nbytes += size
            while len(self._entries) > self.max_entries or self._nbytes > self.max_bytes:
                _, evicted = self._entries.popitem(last=False)
                self._nbytes -= _value_nbytes(evicted)
                self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._nbytes = 0


__all__ = [
    "DEFAULT_CACHE_ENTRIES",
    "array_fingerprint",
    "CacheStats",
    "BatchResultCache",
]
