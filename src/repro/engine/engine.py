"""The batched execution engine.

Every experiment in the reproduction — coverage measurement (Fig. 2), greedy
test selection (Alg. 1), gradient-based generation (Alg. 2) and the
detection-rate sweeps (Tables II/III) — ultimately needs one of a small set
of quantities: forward logits, per-sample parameter gradients of the
scalarised output, activation masks, neuron masks, input gradients.  The
:class:`Engine` computes all of them *batched*, so NumPy amortizes each layer
operation across the whole candidate pool instead of re-dispatching per
image, and memoizes the immutable ones so revisits (the greedy loop, the
combined method's switch probe, the ablation sweeps) are free.

Key properties:

* **Batched** — one forward/backward over ``N`` samples instead of ``N``
  single-sample passes; large pools are processed in chunks of
  ``batch_size`` to bound transient memory.
* **Memoizing** — results are cached keyed by ``(operation, parameter
  digest, array fingerprint, options)``.  Because the model's parameter
  digest is part of the key, perturbing the model (as the attacks do) can
  never yield stale results; entries for old parameters simply stop
  matching.
* **Backend-pluggable** — all execution goes through an
  :class:`~repro.engine.backend.ExecutionBackend`; the default
  :class:`~repro.engine.backend.NumpyBackend` runs the model's own NumPy
  passes in-process.
* **Model-axis batched** — :meth:`Engine.stacked_forward` evaluates many
  same-architecture models (the detection experiments' perturbed copies) on
  one batch.  The model-axis dispatch is chosen per backend: when
  ``backend.model_axis_capacity > 0`` (the ``model_axis`` backend), copies
  are grouped up to that capacity and each group rides one fused dispatch
  per layer through :class:`~repro.nn.stacked.StackedSequential`; a zero
  capacity (numpy/parallel) falls back to a per-copy loop with bit-identical
  results.  ``DetectionExperiment`` and the campaign runner switch onto this
  query automatically when their backend advertises the capability.

Use :class:`Engine` whenever the same model is queried for more than a
handful of samples; use raw ``Model.forward`` for one-off single-sample
queries where the engine's hashing overhead is not worth paying.
"""

from __future__ import annotations

import hashlib
import os
import warnings
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.engine.backend import BackendSpec, ExecutionBackend, get_backend
from repro.engine.cache import (
    DEFAULT_CACHE_BYTES,
    DEFAULT_CACHE_ENTRIES,
    BatchResultCache,
    CacheStats,
    array_fingerprint,
)
from repro.faults import inject
from repro.faults.policy import FaultPolicy, RetryController
from repro.nn.dtypes import DtypePolicy, DtypeSpec
from repro.nn.layers import ActivationLayer, Conv2D, Dense
from repro.nn.losses import Loss
from repro.nn.model import SCALARIZATIONS, Sequential
from repro.nn.serialization import parameter_digest
from repro.utils.logging import get_logger

logger = get_logger("engine")

#: default chunk size for processing large candidate pools
DEFAULT_BATCH_SIZE = 64


def resolve_engine(
    model: Sequential,
    criterion: Optional[object] = None,
    engine: Optional["Engine"] = None,
    cache: bool = True,
) -> "Engine":
    """Return the caller's engine after checking ownership, or build one.

    The single shared implementation of the "optional ``engine`` parameter"
    convention: a provided engine must be bound to ``model``; otherwise a
    fresh engine is built.  Callers constructing an engine for a single
    query should pass ``cache=False`` — memoizing a one-shot result would
    only pay hashing costs for keys that can never be hit again.
    """
    if engine is not None:
        if engine.model is not model:
            raise ValueError("engine is bound to a different model")
        return engine
    return Engine(model, criterion=criterion, cache=cache)


def neuron_layer_indices(model: Sequential) -> List[int]:
    """Indices of layers whose outputs count as neurons.

    "Neurons" are the scalar post-activation outputs of every layer that has
    parameters or applies a non-linearity (convolution feature-map cells,
    dense units, standalone activations); pooling/flatten outputs introduce
    no new neurons.  This is the single definition shared by the engine and
    :mod:`repro.coverage.neuron_coverage`.
    """
    indices = [
        i
        for i, layer in enumerate(model.layers)
        if isinstance(layer, (Conv2D, Dense, ActivationLayer))
    ]
    if not indices:
        raise ValueError("model has no neuron-bearing layers")
    return indices


class Engine:
    """Batched, memoizing executor of a model's coverage-relevant queries.

    Parameters
    ----------
    model:
        The built model this engine serves.  The engine never mutates it
        (parameter gradients are read out per sample, not accumulated).
    criterion:
        Default activation criterion for :meth:`activation_masks`; resolved
        with :func:`repro.coverage.activation.default_criterion_for` when
        omitted.
    backend:
        Backend name, instance or class; see :mod:`repro.engine.backend`.
        Sharded backends (``"parallel"``) multiply the effective chunk size
        by their worker count so every worker still processes ``batch_size``
        samples per dispatch.
    dtype:
        Compute-dtype policy (``None``/``"float64"`` default, or
        ``"float32"`` for halved memory traffic at documented tolerances —
        see :mod:`repro.nn.dtypes`).  Under float32 the engine runs passes
        against a float32 shadow copy of the model, re-cast whenever the
        caller's parameters change; the caller's model is never touched.
    batch_size:
        Chunk size used when a query's batch is larger; bounds the transient
        memory of im2col buffers and per-sample gradient stacks.
    cache:
        Whether to memoize results.  Disable for models whose parameters
        change on every call (e.g. inside attack loops) to skip the hashing
        work.
    cache_entries:
        LRU entry capacity of the memo cache.
    cache_bytes:
        LRU byte budget of the memo cache (per-sample gradient matrices for
        large pools dominate; least-recently-used entries are evicted once
        the budget is exceeded).
    memory_budget_bytes:
        Default transient-buffer cap for the streaming packed-mask queries
        (:meth:`packed_activation_masks` / :meth:`packed_neuron_masks`);
        per-call ``memory_budget_bytes`` arguments override it.  ``None``
        leaves chunking governed by ``batch_size`` alone.  When masks spill
        to disk, the same budget also bounds the mmap window the greedy
        selection streams through.
    spill_dir:
        Default directory for disk-spilled packed-mask stores
        (:class:`~repro.coverage.bitmap.MmapMaskMatrix`); per-call
        ``spill_dir`` arguments override it.  ``None`` (default) keeps
        packed masks in RAM.
    fault_policy:
        :class:`~repro.faults.FaultPolicy` (or its dict form) making every
        backend dispatch fault-tolerant: transient failures (I/O errors,
        worker crashes, dispatch timeouts) are retried with deterministic
        backoff, and ``breaker_threshold`` consecutive failures trip a
        circuit breaker that swaps the backend for the policy's serial
        ``downgrade_backend`` — recorded in :attr:`stats` (``downgrades``)
        and :attr:`fault_events`.  ``None`` (default) dispatches directly
        with zero added overhead.
    """

    def __init__(
        self,
        model: Sequential,
        criterion: Optional[object] = None,
        backend: BackendSpec = "numpy",
        dtype: DtypeSpec = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        cache: bool = True,
        cache_entries: int = DEFAULT_CACHE_ENTRIES,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        memory_budget_bytes: Optional[int] = None,
        spill_dir: Optional[Union[str, Path]] = None,
        fault_policy: Union[FaultPolicy, Dict[str, object], None] = None,
    ) -> None:
        if not model.built:
            raise ValueError("Engine requires a built model")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if memory_budget_bytes is not None and memory_budget_bytes <= 0:
            raise ValueError("memory_budget_bytes must be positive")
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self.model = model
        if criterion is None:
            # imported lazily: repro.coverage depends on repro.engine, not
            # the other way around
            from repro.coverage.activation import default_criterion_for

            criterion = default_criterion_for(model)
        self.criterion = criterion
        self.backend: ExecutionBackend = get_backend(backend)
        self.dtype_policy = DtypePolicy.resolve(dtype)
        self.batch_size = int(batch_size)
        self.memory_budget_bytes = memory_budget_bytes
        self._cache: Optional[BatchResultCache] = (
            BatchResultCache(cache_entries, cache_bytes) if cache else None
        )
        # float32 shadow copy of the model, rebuilt when the caller's
        # parameters change (tracked by digest); None under the default policy
        self._shadow_model: Optional[Sequential] = None
        self._shadow_digest: Optional[str] = None
        self.fault_policy = FaultPolicy.coerce(fault_policy)
        self._faults: Optional[RetryController] = (
            RetryController(self.fault_policy) if self.fault_policy else None
        )

    # -- cache plumbing ------------------------------------------------------
    @property
    def cache_enabled(self) -> bool:
        return self._cache is not None

    @property
    def stats(self) -> CacheStats:
        """Merged hit/miss statistics of the memo cache and the backend.

        Sharded backends contribute their transport-level counters (model
        publications reused vs re-shipped), merged into one view so callers
        observing cache behaviour under sharding need no backend-specific
        code.  Zeros when memoization is disabled and the backend is
        stateless.
        """
        memo = self._cache.stats if self._cache is not None else CacheStats()
        backend_stats = self.backend.cache_stats
        merged = memo if backend_stats is None else memo.merge(backend_stats)
        if self._faults is not None:
            fault_stats = self._faults.stats
            merged = merged.merge(
                CacheStats(
                    retries=fault_stats.retries, downgrades=fault_stats.downgrades
                )
            )
        return merged

    @property
    def fault_events(self) -> List[Dict[str, object]]:
        """Structured fault-tolerance log: transient failures, breaker trips,
        and backend downgrades (empty without a fault policy)."""
        return list(self._faults.events) if self._faults is not None else []

    # -- fault-tolerant dispatch --------------------------------------------
    def _backend_call(self, op: str, *args, **kwargs):
        """Invoke a backend primitive under the engine's fault policy.

        Without a policy this is a plain attribute call plus one injection
        guard — the fault-free hot path stays unmeasurable (gated in
        ``benchmarks/bench_faults.py``).  With a policy, transient failures
        are retried with deterministic backoff and the circuit breaker can
        downgrade to the policy's serial fallback backend mid-query.
        """
        faults = self._faults
        if faults is None:
            if inject.active():
                inject.check("engine.dispatch", op=op, backend=self.backend.name)
            return getattr(self.backend, op)(*args, **kwargs)
        if inject.active():
            # an injection plan is live: take the full controller path so
            # injected engine.dispatch faults are retried like real ones
            return self._retry_call(op, args, kwargs, None)
        # inlined happy path — the controller frame is only paid when a
        # dispatch actually raises
        try:
            result = getattr(self.backend, op)(*args, **kwargs)
        except Exception as exc:
            return self._retry_call(op, args, kwargs, exc)
        faults.consecutive_failures = 0
        return result

    def _retry_call(self, op: str, args, kwargs, pending):
        def attempt():
            if inject.active():
                inject.check("engine.dispatch", op=op, backend=self.backend.name)
            return getattr(self.backend, op)(*args, **kwargs)

        downgrade = None
        target = self.fault_policy.downgrade_backend
        if target is not None and self.backend.name != target:
            downgrade = self._downgrade_backend
        return self._faults.run(attempt, key=op, downgrade=downgrade, pending=pending)

    def _downgrade_backend(self, exc: BaseException) -> None:
        """Breaker action: swap in the policy's serial fallback backend.

        The failing backend is *not* closed — one backend instance may serve
        several engines, and a shared pool must not be torn down because one
        engine's breaker tripped.  Owners release it as usual via
        ``close()``/GC.
        """
        target = self.fault_policy.downgrade_backend
        previous = self.backend.name
        self.backend = get_backend(target)
        self._faults.events.append(
            {
                "event": "downgrade",
                "from": previous,
                "to": target,
                "reason": f"{type(exc).__name__}: {exc}",
            }
        )
        logger.warning(
            "circuit breaker tripped: downgrading backend %s -> %s (%s)",
            previous,
            target,
            exc,
        )

    def invalidate(self) -> None:
        """Drop all memoized results.

        Not required for correctness after the model's parameters change —
        keys embed the parameter digest, so stale entries can never be
        returned — but frees their memory immediately.
        """
        if self._cache is not None:
            self._cache.clear()

    def _memoized(self, op: str, batch: np.ndarray, extra: tuple, compute):
        return self._memoized_for(
            op, parameter_digest(self.model), batch, extra, compute
        )

    def _memoized_for(self, op: str, digest_key, batch: np.ndarray, extra: tuple, compute):
        """Memoize under an explicit parameter-digest key.

        The single-model queries key by this engine's model digest; the
        stacked queries key by the *tuple* of digests of the models in the
        stack, so a repeated stacked query over the same copies is a cache
        hit while any reordering or perturbation of the set is a miss.
        """
        if self._cache is None:
            return compute()
        key = (op, digest_key, array_fingerprint(batch), extra)
        value = self._cache.get(key)
        if value is None:
            value = compute()
            if isinstance(value, np.ndarray):
                value.setflags(write=False)
            self._cache.put(key, value)
        return value

    # -- batching plumbing ---------------------------------------------------
    def _as_batch(self, batch: np.ndarray) -> np.ndarray:
        batch = np.asarray(batch)
        expected = self.model.input_shape or ()
        if batch.ndim == len(expected):
            # promote a single sample to a batch of one
            batch = batch[None, ...]
        if batch.ndim != len(expected) + 1 or tuple(batch.shape[1:]) != tuple(expected):
            raise ValueError(
                f"batch must have per-sample shape {expected}, got array of "
                f"shape {batch.shape}"
            )
        if batch.shape[0] == 0:
            raise ValueError("cannot execute an empty batch")
        # cast/contiguize only when needed: a conforming pool array is
        # returned as-is, so repeated queries on the same pool never pay a
        # per-call copy (pinned by a no-copy assertion in the test suite)
        return self.dtype_policy.asarray(batch)

    def _chunks(self, n: int, max_chunk: Optional[int] = None) -> Iterator[slice]:
        # sharded backends split every dispatched chunk across their workers,
        # so scale the chunk size to keep each worker at batch_size samples
        step = self.batch_size * max(1, self.backend.parallelism)
        if max_chunk is not None:
            step = max(1, min(step, max_chunk))
        for start in range(0, n, step):
            yield slice(start, min(start + step, n))

    def _budgeted_chunk_rows(
        self, memory_budget_bytes: Optional[int], per_row_bytes: Optional[int] = None
    ) -> Optional[int]:
        """Largest chunk row count whose transient dense buffers fit a budget.

        ``per_row_bytes`` is the query's per-sample transient cost; defaults
        to one float64 gradient row (``P × 8`` bytes), the dominant buffer of
        the parameter-mask queries.  A per-call ``None`` falls back to the
        engine-level :attr:`memory_budget_bytes` default.
        """
        if memory_budget_bytes is None:
            memory_budget_bytes = self.memory_budget_bytes
        if memory_budget_bytes is None:
            return None
        if memory_budget_bytes <= 0:
            raise ValueError("memory_budget_bytes must be positive")
        if per_row_bytes is None:
            per_row_bytes = self.model.num_parameters() * 8
        rows = int(memory_budget_bytes) // max(1, per_row_bytes)
        if rows < 1:
            warnings.warn(
                f"memory_budget_bytes={int(memory_budget_bytes)} is smaller "
                f"than one sample's transient buffers ({per_row_bytes} bytes "
                "per row); chunking at one sample per chunk, which will "
                f"exceed the budget by up to {per_row_bytes - int(memory_budget_bytes)} "
                "bytes",
                RuntimeWarning,
                stacklevel=3,
            )
            return 1
        return rows

    def _activation_volume(self) -> int:
        """Scalars per sample that ``forward_collect`` keeps resident.

        The transient cost of the neuron-mask queries: every layer's output
        is collected, so (unlike the gradient queries) it scales with
        feature-map sizes, not parameter count — for conv layers the two
        differ by orders of magnitude (weight sharing).
        """
        shape = self.model.input_shape or ()
        total = 0
        for layer in self.model.layers:
            shape = layer.output_shape(shape)
            total += int(np.prod(shape))
        return total

    def _execution_model(self) -> Sequential:
        """The model the backend should run: the caller's, or its shadow.

        Under the default float64 policy this is the caller's model itself.
        Under float32 it is a cast copy, re-cast whenever the caller's
        parameter digest changes (attack loops perturb parameters between
        calls; results must always reflect the current values).
        """
        if self.dtype_policy.is_default:
            return self.model
        digest = parameter_digest(self.model)
        if self._shadow_model is None or self._shadow_digest != digest:
            self._shadow_model = self.dtype_policy.cast_model(self.model)
            self._shadow_digest = digest
        return self._shadow_model

    # -- forward queries -----------------------------------------------------
    def forward(self, batch: np.ndarray) -> np.ndarray:
        """Inference-mode logits for a batch, chunked and memoized."""
        batch = self._as_batch(batch)

        def compute() -> np.ndarray:
            model = self._execution_model()
            return np.concatenate(
                [
                    self._backend_call("forward", model, batch[s])
                    for s in self._chunks(batch.shape[0])
                ],
                axis=0,
            )

        return self._memoized("forward", batch, (), compute)

    def predict_classes(self, batch: np.ndarray) -> np.ndarray:
        """Predicted class index per sample (through the memoized forward)."""
        return np.argmax(self.forward(batch), axis=1)

    # -- model-axis queries --------------------------------------------------
    def stacked_forward(
        self, models: Sequence[Sequential], batch: np.ndarray
    ) -> np.ndarray:
        """Logits of many same-architecture models on one batch: ``(M, N, C)``.

        The Tables II/III inner loop as a single query: ``models`` are the
        perturbed copies of one victim (same architecture, different weight
        values) and slice ``m`` of the result equals
        ``Engine(models[m]).forward(batch)`` bit for bit.  Backends with a
        positive :attr:`~repro.engine.backend.ExecutionBackend.model_axis_capacity`
        fuse up to that many copies per dispatch (one batched matmul per
        layer); others fall back to a per-model loop with identical results.
        Memoization keys on the *tuple* of parameter digests, so revisiting
        the same set of copies is a cache hit.
        """
        models = list(models)
        if not models:
            raise ValueError("stacked_forward needs at least one model")
        batch = self._as_batch(batch)
        for model in models:
            if not model.built:
                raise ValueError("stacked_forward requires built models")
            if tuple(model.input_shape or ()) != tuple(self.model.input_shape or ()):
                raise ValueError(
                    "stacked models must share this engine's input shape"
                )
        digests = tuple(parameter_digest(model) for model in models)

        def compute() -> np.ndarray:
            if self.dtype_policy.is_default:
                run = models
            else:
                run = [self.dtype_policy.cast_model(model) for model in models]
            # the engine's own model is the unperturbed base the copies were
            # derived from: fused backends share its activation trunk up to
            # each copy's first divergent layer
            base = self._execution_model()
            capacity = self.backend.model_axis_capacity or len(run)
            outputs = []
            for start in range(0, len(run), capacity):
                group = run[start : start + capacity]
                outputs.append(
                    np.concatenate(
                        [
                            self._backend_call(
                                "stacked_forward", group, batch[s], base=base
                            )
                            for s in self._chunks(batch.shape[0])
                        ],
                        axis=1,
                    )
                )
            return np.concatenate(outputs, axis=0)

        return self._memoized_for("stacked_forward", digests, batch, (), compute)

    # -- gradient queries ----------------------------------------------------
    def output_gradients(
        self, batch: np.ndarray, scalarization: Optional[str] = None
    ) -> np.ndarray:
        """Per-sample flat parameter gradients ``∇θ F(x_i)``, shape ``(N, P)``.

        Row ``i`` matches ``model.output_gradients(batch[i])`` to floating-
        point equivalence, computed in one batched backward pass per chunk.
        """
        batch = self._as_batch(batch)
        scal = scalarization or getattr(self.criterion, "scalarization", "sum")
        if scal not in SCALARIZATIONS:
            raise ValueError(
                f"unknown scalarization {scal!r}; choose from {SCALARIZATIONS}"
            )

        def compute() -> np.ndarray:
            model = self._execution_model()
            return np.concatenate(
                [
                    self._backend_call("output_gradients", model, batch[s], scal)
                    for s in self._chunks(batch.shape[0])
                ],
                axis=0,
            )

        # "max" and "predicted" both seed the backward pass with a one-hot at
        # the argmax logit, so their gradient matrices are identical — share
        # one cache entry
        key_scal = "max" if scal == "predicted" else scal
        return self._memoized("output_gradients", batch, (key_scal,), compute)

    def input_gradients(
        self,
        batch: np.ndarray,
        targets: np.ndarray,
        loss: Union[str, Loss] = "cross_entropy",
    ) -> Tuple[float, np.ndarray]:
        """Loss value and input-gradient batch (Algorithm 2 / GDA primitive).

        Not chunked (batch losses normalise by ``N``) and not memoized: the
        synthesis loop feeds a fresh input every step, so hashing would be
        pure overhead.
        """
        batch = self._as_batch(batch)
        return self._backend_call(
            "input_gradients", self._execution_model(), batch, targets, loss
        )

    def loss_parameter_gradients(
        self,
        batch: np.ndarray,
        targets: np.ndarray,
        loss: Union[str, Loss] = "cross_entropy",
    ) -> Tuple[float, np.ndarray]:
        """Loss value and flat parameter gradients of a training loss.

        Summed over the batch (ordinary training semantics); used by the GDA
        attack, which perturbs the model between calls — hence no memoization.
        """
        batch = self._as_batch(batch)
        return self._backend_call(
            "loss_parameter_gradients", self._execution_model(), batch, targets, loss
        )

    # -- mask queries --------------------------------------------------------
    def activation_masks(
        self, batch: np.ndarray, criterion: Optional[object] = None
    ) -> np.ndarray:
        """Boolean per-parameter activation masks, shape ``(N, P)``.

        Row ``i`` equals ``activation_mask(model, batch[i], criterion)``.
        Gradients are thresholded chunk by chunk, so peak memory is one
        chunk's float64 gradients plus the boolean mask matrix — the full
        ``(N, P)`` float64 matrix is never materialized (callers that need
        it, like the ε-ablation sweep, use :meth:`output_gradients`
        directly).  If that gradient matrix happens to be memoized already,
        it is re-thresholded instead of recomputed.
        """
        crit = criterion or self.criterion
        batch = self._as_batch(batch)
        scal = getattr(crit, "scalarization", "sum")
        if scal not in SCALARIZATIONS:
            raise ValueError(
                f"unknown scalarization {scal!r}; choose from {SCALARIZATIONS}"
            )
        key_scal = "max" if scal == "predicted" else scal
        if self._cache is not None:
            grads_key = (
                "output_gradients",
                parameter_digest(self.model),
                array_fingerprint(batch),
                (key_scal,),
            )
            grads = self._cache.get(grads_key)
            if grads is not None:
                return crit.activated(grads)

        def compute() -> np.ndarray:
            model = self._execution_model()
            return np.concatenate(
                [
                    crit.activated(
                        self._backend_call("output_gradients", model, batch[s], scal)
                    )
                    for s in self._chunks(batch.shape[0])
                ],
                axis=0,
            )

        epsilon = getattr(crit, "epsilon", None)
        return self._memoized("activation_masks", batch, (key_scal, epsilon), compute)

    def packed_activation_masks(
        self,
        batch: np.ndarray,
        criterion: Optional[object] = None,
        memory_budget_bytes: Optional[int] = None,
        spill_dir: Optional[Union[str, Path]] = None,
    ):
        """Packed per-parameter activation masks as a
        :class:`~repro.coverage.bitmap.MaskMatrix` (1/8 the dense bytes).

        Row ``i`` packs exactly ``activation_mask(model, batch[i],
        criterion)`` — packing is lossless, so dense and packed consumers see
        bit-identical masks.  Masks are built *streaming*: each chunk's
        gradients are thresholded and packed, then dropped, so peak transient
        memory is one chunk's float64 gradients plus the packed matrix.
        ``memory_budget_bytes`` caps that transient chunk (the full
        ``(N, P)`` dense matrix is never materialized either way).

        With ``spill_dir`` (per-call, or the engine-level default) the packed
        words are written chunk by chunk straight into an on-disk
        :class:`~repro.coverage.bitmap.MmapMaskMatrix` store instead of
        concatenating in RAM, and the returned matrix streams greedy-
        selection queries through windows bounded by the same memory budget.
        The store is keyed by (model parameters, batch, criterion), so a
        repeated query maps the existing file without recomputing; torn or
        truncated files from interrupted runs are detected and rebuilt.

        Plain :class:`~repro.coverage.activation.ActivationCriterion`
        thresholds are pushed down to the backend, which may pack inside its
        workers (the parallel backend ships 1/8-size results); criteria with
        a custom ``activated`` run through a generic dense-chunk fallback.
        """
        from repro.coverage.activation import ActivationCriterion
        from repro.coverage.bitmap import MaskMatrix, pack_bool

        crit = criterion or self.criterion
        batch = self._as_batch(batch)
        scal = getattr(crit, "scalarization", "sum")
        if scal not in SCALARIZATIONS:
            raise ValueError(
                f"unknown scalarization {scal!r}; choose from {SCALARIZATIONS}"
            )
        key_scal = "max" if scal == "predicted" else scal
        epsilon = getattr(crit, "epsilon", None)
        nbits = self.model.num_parameters()
        max_chunk = self._budgeted_chunk_rows(memory_budget_bytes)
        plain = type(crit) is ActivationCriterion

        spill = Path(spill_dir) if spill_dir is not None else self.spill_dir
        if spill is not None:

            def spill_chunks():
                model = self._execution_model()
                for s in self._chunks(batch.shape[0], max_chunk):
                    if plain:
                        yield self._backend_call(
                            "packed_masks", model, batch[s], scal, crit.epsilon
                        )
                    else:
                        yield pack_bool(
                            crit.activated(
                                self._backend_call("output_gradients", model, batch[s], scal)
                            )
                        )

            return self._spilled_masks(
                spill,
                "packed_activation_masks",
                batch,
                (key_scal, epsilon),
                nbits,
                spill_chunks,
                memory_budget_bytes,
            )

        # a memoized dense gradient (or mask) matrix for this batch makes
        # packing a pure re-threshold — reuse it instead of recomputing.
        # Thresholding runs chunk by chunk so the reuse path honours the
        # memory budget too (the full (N, P) boolean matrix is never built)
        if self._cache is not None:
            digest = parameter_digest(self.model)
            fingerprint = array_fingerprint(batch)
            grads = self._cache.get(
                ("output_gradients", digest, fingerprint, (key_scal,))
            )
            if grads is not None:
                words = np.concatenate(
                    [
                        pack_bool(crit.activated(grads[s]))
                        for s in self._chunks(grads.shape[0], max_chunk)
                    ],
                    axis=0,
                )
                return MaskMatrix(nbits, words)
            dense = self._cache.get(
                ("activation_masks", digest, fingerprint, (key_scal, epsilon))
            )
            if dense is not None:
                return MaskMatrix(nbits, pack_bool(dense))

        def compute() -> np.ndarray:
            model = self._execution_model()
            rows = []
            for s in self._chunks(batch.shape[0], max_chunk):
                if plain:
                    rows.append(
                        self._backend_call(
                            "packed_masks", model, batch[s], scal, crit.epsilon
                        )
                    )
                else:
                    rows.append(
                        pack_bool(
                            crit.activated(
                                self._backend_call("output_gradients", model, batch[s], scal)
                            )
                        )
                    )
            return np.concatenate(rows, axis=0)

        words = self._memoized(
            "packed_activation_masks", batch, (key_scal, epsilon), compute
        )
        return MaskMatrix(nbits, words)

    def packed_neuron_masks(
        self,
        batch: np.ndarray,
        threshold: float = 0.0,
        memory_budget_bytes: Optional[int] = None,
        spill_dir: Optional[Union[str, Path]] = None,
    ):
        """Packed per-neuron activation masks as a
        :class:`~repro.coverage.bitmap.MaskMatrix`.

        Row ``i`` packs exactly ``neuron_activation_mask(model, batch[i],
        threshold)``; chunks are thresholded and packed streaming, like
        :meth:`packed_activation_masks` — including its ``spill_dir``
        disk-backed store option.
        """
        from repro.coverage.bitmap import MaskMatrix
        from repro.coverage.neuron_coverage import count_neurons

        batch = self._as_batch(batch)
        threshold = float(threshold)
        indices = tuple(neuron_layer_indices(self.model))
        nbits = count_neurons(self.model)
        # the transient here is forward_collect's per-layer outputs, not a
        # gradient row — budget by activation volume (for conv models the
        # difference is orders of magnitude)
        max_chunk = self._budgeted_chunk_rows(
            memory_budget_bytes, per_row_bytes=self._activation_volume() * 8
        )

        spill = Path(spill_dir) if spill_dir is not None else self.spill_dir
        if spill is not None:

            def spill_chunks():
                model = self._execution_model()
                for s in self._chunks(batch.shape[0], max_chunk):
                    yield self._backend_call(
                        "packed_neuron_masks", model, batch[s], threshold, indices
                    )

            return self._spilled_masks(
                spill,
                "packed_neuron_masks",
                batch,
                (threshold,),
                nbits,
                spill_chunks,
                memory_budget_bytes,
            )

        def compute() -> np.ndarray:
            model = self._execution_model()
            return np.concatenate(
                [
                    self._backend_call(
                        "packed_neuron_masks", model, batch[s], threshold, indices
                    )
                    for s in self._chunks(batch.shape[0], max_chunk)
                ],
                axis=0,
            )

        words = self._memoized("packed_neuron_masks", batch, (threshold,), compute)
        return MaskMatrix(nbits, words)

    def _spilled_masks(
        self,
        spill_dir: Path,
        op: str,
        batch: np.ndarray,
        extra: tuple,
        nbits: int,
        chunks,
        memory_budget_bytes: Optional[int],
    ):
        """Build (or remap) a disk-backed packed-mask store for a query.

        The store file is content-addressed by (operation, parameter digest,
        batch fingerprint, options, nbits): a repeated query memory-maps the
        existing file instead of recomputing — the disk **is** the memo for
        spilled queries, so the in-RAM memo cache is bypassed.  Torn,
        truncated, or unreadable stores (interrupted runs, partial copies,
        I/O faults) are **quarantined** to a ``quarantine/`` sidecar
        directory for post-mortem inspection and rebuilt from scratch — a
        corrupt store is self-healing, never fatal.
        """
        from repro.coverage.bitmap import MmapMaskMatrix, MmapMaskWriter, quarantine_store

        budget = (
            memory_budget_bytes
            if memory_budget_bytes is not None
            else self.memory_budget_bytes
        )
        key = repr(
            (op, parameter_digest(self.model), array_fingerprint(batch), extra, nbits)
        )
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:32]
        path = spill_dir / f"{op}-{digest}.masks"
        if path.exists():
            try:
                matrix = MmapMaskMatrix.open(path, memory_budget_bytes=budget)
            except (ValueError, OSError) as exc:
                sidecar = quarantine_store(path)
                logger.warning(
                    "quarantined corrupt spill store %s -> %s (%s); rebuilding",
                    path,
                    sidecar,
                    exc,
                )
            else:
                if matrix.nbits == nbits and len(matrix) == batch.shape[0]:
                    # refresh the mtime: ``gc-spill`` treats it as the
                    # last-use marker when sweeping unreferenced stores
                    os.utime(path, None)
                    return matrix
                # a readable store that answers a different query is not
                # corruption — a content-address collision after a code
                # change — so rebuild in place without quarantining
                logger.warning("spill store %s does not match the query; rebuilding", path)
                path.unlink()
        with MmapMaskWriter(path, nbits) as writer:
            for words in chunks():
                writer.append(words)
            return writer.close(memory_budget_bytes=budget)

    def neuron_masks(self, batch: np.ndarray, threshold: float = 0.0) -> np.ndarray:
        """Boolean per-neuron activation masks, shape ``(N, num_neurons)``.

        Row ``i`` equals ``neuron_activation_mask(model, batch[i], threshold)``
        — the DeepXplore-style criterion over every neuron-bearing layer's
        post-activation outputs, computed layer-batched.
        """
        batch = self._as_batch(batch)
        threshold = float(threshold)
        indices = neuron_layer_indices(self.model)

        def compute() -> np.ndarray:
            model = self._execution_model()
            rows = []
            for s in self._chunks(batch.shape[0]):
                chunk = batch[s]
                outputs = self._backend_call("forward_collect", model, chunk)
                parts = [
                    (outputs[i] > threshold).reshape(chunk.shape[0], -1)
                    for i in indices
                ]
                rows.append(np.concatenate(parts, axis=1))
            return np.concatenate(rows, axis=0)

        return self._memoized("neuron_masks", batch, (threshold,), compute)

    # -- coverage aggregates -------------------------------------------------
    def per_sample_coverage(
        self, batch: np.ndarray, criterion: Optional[object] = None
    ) -> np.ndarray:
        """``VC(x_i)`` of every sample in the batch (Eq. 3, vectorised).

        Runs on packed masks: per-sample popcount over ``nbits`` — exactly
        equal to the dense row means at 1/8 the resident memory.
        """
        return self.packed_activation_masks(batch, criterion).fractions()

    def mean_validation_coverage(
        self, batch: np.ndarray, criterion: Optional[object] = None
    ) -> float:
        """``mean_i VC(x_i)`` — the Fig. 2 quantity — in one batched pass."""
        return float(self.per_sample_coverage(batch, criterion).mean())

    def union_mask(
        self, batch: np.ndarray, criterion: Optional[object] = None
    ) -> np.ndarray:
        """Parameters activated by at least one sample of the batch.

        An empty batch is a valid (empty) test set: it activates nothing, so
        the result is all-False — matching
        :func:`repro.coverage.parameter_coverage.set_validation_coverage`.
        """
        if np.asarray(batch).shape[:1] == (0,):
            return np.zeros(self.model.num_parameters(), dtype=bool)
        return self.activation_masks(batch, criterion).any(axis=0)

    def set_validation_coverage(
        self, batch: np.ndarray, criterion: Optional[object] = None
    ) -> float:
        """``VC(X)`` of the whole batch as a test set (Eq. 4-5, vectorised).

        Computed on packed masks (word-wise union + popcount); exactly equal
        to ``union_mask(batch).mean()`` without materialising the dense
        matrix.  ``0.0`` for an empty batch, like the module-level function.
        """
        if np.asarray(batch).shape[:1] == (0,):
            return 0.0
        return self.packed_activation_masks(batch, criterion).union().fraction

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Engine(model={self.model.name!r}, backend={self.backend.name!r}, "
            f"dtype={self.dtype_policy.name!r}, batch_size={self.batch_size}, "
            f"cache={self.cache_enabled})"
        )


__all__ = ["DEFAULT_BATCH_SIZE", "Engine", "neuron_layer_indices", "resolve_engine"]
