"""Model-axis batched backend: one dispatch per layer for many models.

The detection experiments evaluate hundreds of perturbed copies of one model
on the same stacked fingerprint batch — the classic batched-multi-model
inference shape.  :class:`ModelAxisBackend` serves the stacked primitives of
:class:`~repro.engine.backend.ExecutionBackend` through
:class:`~repro.nn.stacked.StackedSequential`: each layer's weights are
stacked along a leading model axis and the whole set rides one batched
matmul / grouped im2col per layer, instead of re-dispatching every layer
once per copy.

The big win is **trunk sharing**: when the unperturbed victim is known (the
engine always passes it), each copy is grouped by the first layer at which
its parameters diverge from the victim's.  Layers before that point produce
bitwise the *same* activations the victim produces, so the victim's forward
trunk is computed once and every copy only re-runs its divergent suffix —
for the attacks' sparse perturbations that skips most of the network for
copies perturbed late (the classifier head, the single-bias attack's most
effective placement).

Per-model results are **bit-identical** to the numpy backend (shared
activations are equal by parameter equality, and the stacked GEMMs
decompose into the same per-model GEMMs; see :mod:`repro.nn.stacked`), so
detection tables and greedy selections are byte-for-byte unchanged — only
faster.  Single-model queries delegate to the plain numpy path, making this
backend a drop-in replacement anywhere a backend name is accepted.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.engine.backend import (
    NumpyBackend,
    register_backend,
    threshold_and_pack,
)
from repro.faults import inject
from repro.nn.model import Sequential
from repro.nn.stacked import StackedSequential


def first_divergence(base: Sequential, model: Sequential) -> int:
    """Index of the first layer whose parameters differ from ``base``'s.

    Returns ``len(base.layers)`` when every parameter is bitwise equal —
    the model *is* the base, observably.
    """
    for idx, layer in enumerate(base.layers):
        for ours, theirs in zip(layer.parameters(), model.layers[idx].parameters()):
            if not np.array_equal(ours.value, theirs.value):
                return idx
    return len(base.layers)

#: default number of models fused per stacked dispatch; bounds the resident
#: weight stacks and per-layer activation tensors to ``max_models ×`` one
#: model's footprint
DEFAULT_MAX_MODELS = 16


@register_backend
class ModelAxisBackend(NumpyBackend):
    """Batched model-axis backend: fuses same-architecture model sets."""

    name = "model_axis"

    def __init__(self, max_models: int = DEFAULT_MAX_MODELS) -> None:
        if max_models <= 0:
            raise ValueError("max_models must be positive")
        self.max_models = int(max_models)

    @property
    def model_axis_capacity(self) -> int:
        return self.max_models

    # Restacking weights per call costs O(M · P) copies — noise next to the
    # forward/backward work the stack then amortises across the batch.
    def stacked_forward(
        self,
        models: List[Sequential],
        x: np.ndarray,
        base: Optional[Sequential] = None,
    ) -> np.ndarray:
        models = list(models)
        if inject.active():
            inject.check("model_axis.stacked_forward", models=len(models))
        if base is None:
            return StackedSequential(models).forward(x)

        # group the copies by the first layer where they diverge from the
        # base; the base trunk up to each group's split is computed once and
        # is bitwise what every copy of the group would have computed
        groups: Dict[int, List[int]] = {}
        for i, model in enumerate(models):
            groups.setdefault(first_divergence(base, model), []).append(i)
        deepest = max(groups)
        trunk: Dict[int, np.ndarray] = {}
        out = x
        for idx in range(min(deepest, len(base.layers))):
            if idx in groups:
                trunk[idx] = out
            out = base.layers[idx].forward(out)
        trunk[deepest] = out  # input to the deepest split (logits if beyond)

        result: Optional[np.ndarray] = None
        for split, indices in sorted(groups.items()):
            if split >= len(base.layers):
                # bitwise the base itself: its logits serve every such copy
                group_out = np.broadcast_to(out, (len(indices), *out.shape))
            else:
                group = StackedSequential(
                    [models[i] for i in indices], start=split
                )
                group_out = group.forward(trunk[split])
            if result is None:
                result = np.empty(
                    (len(models), *group_out.shape[1:]), dtype=group_out.dtype
                )
            result[indices] = group_out
        return result

    def stacked_forward_collect(
        self, models: List[Sequential], x: np.ndarray
    ) -> List[np.ndarray]:
        return StackedSequential(models).forward_collect(x)

    def stacked_packed_masks(
        self,
        models: List[Sequential],
        x: np.ndarray,
        scalarization: str,
        epsilon: float,
    ) -> np.ndarray:
        grads = StackedSequential(models).output_gradients_batch(x, scalarization)
        return threshold_and_pack(grads, epsilon)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ModelAxisBackend(max_models={self.max_models})"


__all__ = ["DEFAULT_MAX_MODELS", "ModelAxisBackend", "first_divergence"]
