"""Multi-core sharded execution backend.

:class:`ParallelBackend` splits every batch the engine dispatches into
contiguous shards and evaluates them on a persistent pool of worker
processes.  Two transport decisions keep the per-call overhead small enough
for the engine's chunked access pattern:

* **Shared-memory array transport** — the input batch is written once into a
  :mod:`multiprocessing.shared_memory` segment; each worker maps the segment
  and copies out only its own shard, so the batch is never pickled through
  the task pipe (and never copied once per worker).
* **Model publication by parameter digest** — the model is pickled into a
  shared-memory segment once per :func:`~repro.nn.serialization
  .parameter_digest`.  Workers rebuild it on first sight of a digest and keep
  it in a small per-process cache, so repeated engine calls against the same
  parameters ship a 64-character digest instead of the weights.  Perturbing
  the model (as the attacks do) changes the digest and triggers exactly one
  re-publication.  Publication reuse is counted in :attr:`cache_stats`, which
  the engine merges into its own statistics.

Loss-based queries (``input_gradients``, ``loss_parameter_gradients``) are
recombined across shards as a weighted mean (weight = shard size), which is
exact for every built-in loss because they all normalise by the batch size.

Results come back through the ordinary pool result pipe: they are shard-sized
and consumed immediately, so pinning them in shared memory would buy nothing.

The pool is lazy (constructing a backend costs nothing until the first
dispatch) and persistent; call :meth:`close` — or let garbage collection /
interpreter shutdown do it — to terminate the workers and unlink the shared
segments.  One backend instance can serve many engines; share it to share
the pool::

    backend = ParallelBackend(workers=4)
    engine = Engine(model, backend=backend)
    ...
    backend.close()
"""

from __future__ import annotations

import os
import pickle
import signal
import time
from collections import OrderedDict
from multiprocessing import get_context, shared_memory
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.engine.backend import ExecutionBackend, register_backend
from repro.engine.cache import CacheStats
from repro.faults import inject
from repro.faults.errors import DispatchTimeoutError, WorkerCrashError, is_transient
from repro.faults.policy import FaultPolicy
from repro.nn.losses import Loss, get_loss
from repro.nn.model import Sequential
from repro.nn.serialization import parameter_digest
from repro.utils.logging import get_logger

logger = get_logger("engine.parallel")

#: how many distinct parameter digests stay published (and resident in each
#: worker) at once; attack loops alternate between a handful of models
DEFAULT_MAX_PUBLISHED = 4

#: supervision poll interval while a dispatch is in flight; bounds how long
#: a dead worker goes undetected without adding measurable latency to
#: healthy dispatches (the wait returns as soon as results are ready)
SUPERVISION_POLL_S = 0.05


def default_worker_count() -> int:
    """Worker count matching the cores this process may actually use."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

#: per-worker cache of rebuilt models, keyed by parameter digest; sized to
#: match DEFAULT_MAX_PUBLISHED so parent and workers evict in lockstep
_WORKER_MODELS: "OrderedDict[str, Sequential]" = OrderedDict()
_WORKER_MODEL_SLOTS = DEFAULT_MAX_PUBLISHED

#: whether an attach in this worker must be unregistered from the resource
#: tracker again (set by the pool initializer).  CPython < 3.13 registers
#: segments on *attach* as well as create: forked workers share the parent's
#: tracker (set-semantics make the re-register harmless, and unregistering
#: would strip the parent's own registration), while spawned workers own a
#: private tracker that would unlink the parent's live segments at worker
#: exit unless the attach registration is removed.
_UNREGISTER_ON_ATTACH = False


def _worker_init(unregister_on_attach: bool) -> None:
    global _UNREGISTER_ON_ATTACH
    _UNREGISTER_ON_ATTACH = unregister_on_attach


def _attach_readonly(name: str) -> shared_memory.SharedMemory:
    """Map a parent-owned segment without adopting ownership of it."""
    shm = shared_memory.SharedMemory(name=name)
    if _UNREGISTER_ON_ATTACH:  # pragma: no cover - spawn-only path
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:
            pass
    return shm


def _worker_model(digest: str, model_shm: str, model_size: int) -> Sequential:
    model = _WORKER_MODELS.get(digest)
    if model is not None:
        _WORKER_MODELS.move_to_end(digest)
        return model
    shm = _attach_readonly(model_shm)
    try:
        model = pickle.loads(bytes(shm.buf[:model_size]))
    finally:
        shm.close()
    _WORKER_MODELS[digest] = model
    while len(_WORKER_MODELS) > _WORKER_MODEL_SLOTS:
        _WORKER_MODELS.popitem(last=False)
    return model


def _worker_shard(
    batch_shm: str, shape: Tuple[int, ...], dtype: str, start: int, stop: int
) -> np.ndarray:
    """Copy this worker's shard out of the shared batch segment.

    The copy (shard-sized, not batch-sized) lets the segment be closed
    immediately — layer caches may hold views of the input across calls, and
    those must never dangle into an unmapped segment.
    """
    shm = _attach_readonly(batch_shm)
    try:
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
        return np.array(view[start:stop])
    finally:
        shm.close()


def _worker_run(task: tuple) -> Any:
    """Execute one shard task; module-level so every start method can pickle it."""
    op, digest, model_shm, model_size, batch_shm, shape, dtype, start, stop, options = task
    model = _worker_model(digest, model_shm, model_size)
    x = _worker_shard(batch_shm, shape, dtype, start, stop)
    if op == "forward":
        return model.forward(x, training=False)
    if op == "forward_collect":
        return model.forward_collect(x)
    if op == "output_gradients":
        return model.output_gradients_batch(x, options)
    if op == "packed_masks":
        from repro.engine.backend import threshold_and_pack

        scalarization, epsilon = options
        return threshold_and_pack(
            model.output_gradients_batch(x, scalarization), epsilon
        )
    if op == "packed_neuron_masks":
        from repro.engine.backend import pack_neuron_outputs

        threshold, layer_indices = options
        return pack_neuron_outputs(
            model.forward_collect(x), x.shape[0], threshold, layer_indices
        )
    if op == "input_gradients":
        targets, loss = options
        return model.input_gradient(x, targets, loss)
    if op == "loss_parameter_gradients":
        targets, loss = options
        loss_fn = get_loss(loss)
        model.zero_grad()
        logits = model.forward(x, training=False)
        value, grad_logits = loss_fn.value_and_grad(logits, targets)
        model.backward(grad_logits)
        flat = model.parameter_view().flat_grads()
        model.zero_grad()
        return value, flat
    raise ValueError(f"unknown parallel op {op!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


def _signal_pool_workers(pool, *sigs: int) -> list:
    """Send ``sigs`` to every current pool worker; returns the processes."""
    procs = list(getattr(pool, "_pool", []) or [])
    for proc in procs:
        pid = proc.pid
        if pid is None:
            continue
        for sig in sigs:
            try:
                os.kill(pid, sig)
            except (ProcessLookupError, PermissionError):  # pragma: no cover
                break
    return procs


def _terminate_pool(pool) -> None:
    """Terminate/join a pool whose workers may be dead, stopped, or hung.

    ``Pool.terminate`` alone relies on a handshake: sentinels are fed to
    the blocked workers so they release the task-queue reader lock, after
    which its ``_help_stuff_finish`` can acquire it.  A worker that died
    (or was SIGKILLed, or sits SIGSTOPped) while blocked on the queue never
    completes that handshake and teardown deadlocks.  Workers are stateless
    shard evaluators, so the unconditional path is both safe and immune:
    stop the worker handler from respawning, hard-kill and reap every
    worker, then release the queue locks the dead workers took with them —
    with no live worker left, releasing on their behalf cannot race another
    reader — and only then run the ordinary terminate/join.
    """
    try:
        from multiprocessing.pool import TERMINATE

        pool._worker_handler._state = TERMINATE
    except Exception:  # pragma: no cover - interpreter internals moved
        pass
    procs = _signal_pool_workers(pool, signal.SIGCONT, signal.SIGKILL)
    for proc in procs:
        proc.join()
    for lock in (
        getattr(pool._inqueue, "_rlock", None),
        getattr(pool._outqueue, "_wlock", None),
    ):
        if lock is None:  # pragma: no cover - win32 write pipes
            continue
        try:
            lock.release()
        except Exception:
            pass  # nobody held it

    pool.terminate()
    pool.join()


def _release_resources(resources: dict) -> None:
    """Terminate the pool and unlink all owned segments (idempotent).

    Each step is individually guarded: a pool that died mid-flight must not
    prevent the published shared-memory segments from being unlinked (that
    is exactly how ``/dev/shm`` blocks used to leak after a failed run).
    """
    pool = resources.pop("pool", None)
    if pool is not None:
        try:
            _terminate_pool(pool)
        except Exception:  # pragma: no cover - teardown must not raise
            logger.exception("worker pool teardown failed; continuing cleanup")
    for shm, _size in resources.pop("published", {}).values():
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
    resources["pool"] = None
    resources["published"] = OrderedDict()


@register_backend
class ParallelBackend(ExecutionBackend):
    """Shard batches across a persistent multiprocessing worker pool.

    Parameters
    ----------
    workers:
        Worker process count; defaults to the cores available to this
        process.  ``workers=1`` is valid (useful for testing the transport)
        but pays process overhead for no parallelism.
    start_method:
        ``multiprocessing`` start method; defaults to ``"fork"`` where
        available (cheap worker startup) and the platform default elsewhere.
    max_published:
        How many model publications (distinct parameter digests) to keep
        alive at once.
    fault_policy:
        :class:`~repro.faults.FaultPolicy` (or its dict form) governing
        worker supervision: a dispatch whose workers die — or that exceeds
        ``dispatch_timeout_s`` — kills and respawns the pool and requeues
        every in-flight shard, up to ``max_retries`` times.  Supervision is
        always on; passing ``None`` uses the default policy.

    Every dispatch is supervised: instead of blocking in ``pool.map`` (which
    hangs forever when a worker holding a task is SIGKILLed), results are
    awaited with a poll loop that also checks worker liveness against a
    snapshot of the processes taken at dispatch time.  Shard tasks are pure
    functions of (model digest, batch window), so requeueing after a respawn
    is always safe.
    """

    name = "parallel"

    def __init__(
        self,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
        max_published: int = DEFAULT_MAX_PUBLISHED,
        fault_policy: Union[FaultPolicy, Dict[str, object], None] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be at least 1")
        if max_published < 1:
            raise ValueError("max_published must be at least 1")
        self.fault_policy = FaultPolicy.coerce(fault_policy) or FaultPolicy()
        self.workers = int(workers) if workers is not None else default_worker_count()
        if start_method is None:
            import multiprocessing

            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._start_method = start_method
        self.max_published = int(max_published)
        self._stats = CacheStats()
        # pool + publications live in a plain dict so the weakref finalizer
        # can release them without keeping the backend itself alive
        self._resources: dict = {"pool": None, "published": OrderedDict()}
        import weakref

        self._finalizer = weakref.finalize(self, _release_resources, self._resources)

    # -- ExecutionBackend surface -------------------------------------------
    @property
    def parallelism(self) -> int:
        return self.workers

    @property
    def cache_stats(self) -> CacheStats:
        """Model-publication reuse counters (hit = weights were not re-shipped)."""
        return self._stats

    def close(self) -> None:
        """Terminate the workers and unlink every published segment."""
        _release_resources(self._resources)

    # -- pool / publication plumbing ----------------------------------------
    def _pool(self):
        pool = self._resources["pool"]
        if pool is None:
            ctx = get_context(self._start_method)
            pool = ctx.Pool(
                processes=self.workers,
                initializer=_worker_init,
                initargs=(self._start_method != "fork",),
            )
            self._resources["pool"] = pool
            logger.debug(
                "started %d worker processes (start method %s)",
                self.workers,
                self._start_method,
            )
        return pool

    def _publish(self, model: Sequential) -> Tuple[str, str, int]:
        """Ensure ``model`` is published; returns (digest, shm name, size)."""
        published: OrderedDict = self._resources["published"]
        digest = parameter_digest(model)
        entry = published.get(digest)
        if entry is not None:
            published.move_to_end(digest)
            self._stats.hits += 1
        else:
            payload = pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
            shm = shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
            shm.buf[: len(payload)] = payload
            entry = (shm, len(payload))
            published[digest] = entry
            self._stats.misses += 1
            while len(published) > self.max_published:
                _, (old_shm, _old_size) = published.popitem(last=False)
                old_shm.close()
                old_shm.unlink()
                self._stats.evictions += 1
        shm, size = entry
        return digest, shm.name, size

    @staticmethod
    def _shard_bounds(n: int, shards: int) -> List[Tuple[int, int]]:
        """Contiguous, balanced, non-empty shard index ranges."""
        shards = max(1, min(shards, n))
        edges = np.linspace(0, n, shards + 1).round().astype(int)
        return [(int(a), int(b)) for a, b in zip(edges[:-1], edges[1:]) if b > a]

    def _respawn(self, reason: str) -> None:
        """Tear down the worker pool (hard-killing hung workers) for relaunch.

        The next :meth:`_pool` call starts fresh workers; published model
        segments stay alive, so respawned workers rebuild their model caches
        lazily from shared memory with no re-publication cost.
        """
        pool = self._resources["pool"]
        if pool is not None:
            _terminate_pool(pool)
            self._resources["pool"] = None
        self._stats.restarts += 1
        logger.warning("respawning worker pool: %s", reason)

    def _apply_injected_fault(self, fault) -> None:
        """Execute a ``kill_worker``/``stall_worker`` fault from the chaos plan.

        ``fault.worker`` indexes the current worker processes; a negative
        index targets *every* worker — the deterministic way to force the
        crash-detection + respawn path (killing one worker often heals
        transparently via the pool's own repopulation and work stealing).
        """
        procs = list(self._pool()._pool)
        targets = procs if fault.worker < 0 else [procs[fault.worker % len(procs)]]
        sig = signal.SIGKILL if fault.action == "kill_worker" else signal.SIGSTOP
        for target in targets:
            logger.warning(
                "injected fault: sending %s to worker pid %s",
                signal.Signals(sig).name,
                target.pid,
            )
            os.kill(target.pid, sig)

    def _await_results(self, async_result, procs, timeout_s: Optional[float]) -> list:
        """Await a dispatch with liveness supervision.

        Raises :class:`WorkerCrashError` the moment any worker from the
        dispatch-time snapshot dies with results still pending (``Pool``
        transparently replaces dead workers, but the dead worker's task is
        lost and a bare ``map`` would block forever), and
        :class:`DispatchTimeoutError` when ``timeout_s`` elapses — the hung
        case, e.g. a stopped or livelocked worker.
        """
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        while True:
            async_result.wait(SUPERVISION_POLL_S)
            if async_result.ready():
                return async_result.get()
            dead = [p for p in procs if not p.is_alive()]
            if dead:
                raise WorkerCrashError(
                    f"{len(dead)} worker(s) died mid-dispatch "
                    f"(pids {[p.pid for p in dead]})"
                )
            if deadline is not None and time.monotonic() > deadline:
                raise DispatchTimeoutError(
                    f"dispatch exceeded the {timeout_s:g}s timeout"
                )

    def _dispatch(
        self,
        op: str,
        model: Sequential,
        x: np.ndarray,
        options: Any = None,
        per_shard_options: Optional[Sequence[Any]] = None,
    ) -> Tuple[List[Any], List[Tuple[int, int]]]:
        """Run ``op`` over balanced shards of ``x``; returns (results, bounds)."""
        if x.shape[0] == 0:
            raise ValueError("cannot execute an empty batch")
        digest, model_shm, model_size = self._publish(model)
        bounds = self._shard_bounds(x.shape[0], self.workers)
        xc = np.ascontiguousarray(x)
        batch_shm = shared_memory.SharedMemory(create=True, size=max(1, xc.nbytes))
        try:
            np.ndarray(xc.shape, dtype=xc.dtype, buffer=batch_shm.buf)[:] = xc
            tasks = [
                (
                    op,
                    digest,
                    model_shm,
                    model_size,
                    batch_shm.name,
                    xc.shape,
                    xc.dtype.str,
                    start,
                    stop,
                    per_shard_options[i] if per_shard_options is not None else options,
                )
                for i, (start, stop) in enumerate(bounds)
            ]
            results = self._supervised_run(op, tasks)
        finally:
            batch_shm.close()
            batch_shm.unlink()
        return results, bounds

    def _supervised_run(self, op: str, tasks: List[tuple]) -> list:
        """Execute ``tasks`` on the pool, respawning + requeueing on failure."""
        policy = self.fault_policy
        attempts = 0
        while True:
            if inject.active():
                fault = inject.check("parallel.dispatch", op=op)
                if fault is not None:
                    self._apply_injected_fault(fault)
            pool = self._pool()
            procs = list(pool._pool)
            async_result = pool.map_async(_worker_run, tasks)
            try:
                return self._await_results(
                    async_result, procs, policy.dispatch_timeout_s
                )
            except Exception as exc:
                # crashes/timeouts invalidate the pool; a transient error
                # raised *inside* a worker leaves it healthy, but respawning
                # is cheap and gives the retry a clean slate either way
                if not is_transient(exc):
                    raise
                if attempts >= policy.max_retries:
                    self._respawn(f"giving up after {attempts + 1} attempts: {exc}")
                    raise
                attempts += 1
                self._respawn(f"requeueing {len(tasks)} shard(s): {exc}")
                time.sleep(policy.backoff_delay(attempts, key=f"parallel.{op}"))

    # -- batched primitives --------------------------------------------------
    def forward(self, model: Sequential, x: np.ndarray) -> np.ndarray:
        results, _ = self._dispatch("forward", model, x)
        return np.concatenate(results, axis=0)

    def forward_collect(self, model: Sequential, x: np.ndarray) -> List[np.ndarray]:
        results, _ = self._dispatch("forward_collect", model, x)
        # results: one list of per-layer outputs per shard -> concat per layer
        return [np.concatenate(parts, axis=0) for parts in zip(*results)]

    def output_gradients(
        self, model: Sequential, x: np.ndarray, scalarization: str
    ) -> np.ndarray:
        results, _ = self._dispatch("output_gradients", model, x, scalarization)
        return np.concatenate(results, axis=0)

    def packed_masks(
        self, model: Sequential, x: np.ndarray, scalarization: str, epsilon: float
    ) -> np.ndarray:
        # thresholding + packing happen inside the workers: each shard ships
        # back ceil(P/64) uint64 words per sample instead of P float64
        # gradients — a 64x smaller result pickle
        results, _ = self._dispatch(
            "packed_masks", model, x, (scalarization, float(epsilon))
        )
        return np.concatenate(results, axis=0)

    def packed_neuron_masks(
        self,
        model: Sequential,
        x: np.ndarray,
        threshold: float,
        layer_indices: Tuple[int, ...],
    ) -> np.ndarray:
        results, _ = self._dispatch(
            "packed_neuron_masks", model, x, (float(threshold), tuple(layer_indices))
        )
        return np.concatenate(results, axis=0)

    def input_gradients(
        self,
        model: Sequential,
        x: np.ndarray,
        targets: np.ndarray,
        loss: Union[str, Loss],
    ) -> Tuple[float, np.ndarray]:
        targets = np.asarray(targets)
        bounds = self._shard_bounds(x.shape[0], self.workers)
        shard_opts = [(targets[a:b], loss) for a, b in bounds]
        results, bounds = self._dispatch(
            "input_gradients", model, x, per_shard_options=shard_opts
        )
        n = x.shape[0]
        # every built-in loss is a batch mean, so the full-batch value and
        # gradient are the shard results reweighted by shard size
        value = sum(v * (b - a) for (v, _), (a, b) in zip(results, bounds)) / n
        grad = np.concatenate(
            [g * ((b - a) / n) for (_, g), (a, b) in zip(results, bounds)], axis=0
        )
        return float(value), grad

    def loss_parameter_gradients(
        self,
        model: Sequential,
        x: np.ndarray,
        targets: np.ndarray,
        loss: Union[str, Loss],
    ) -> Tuple[float, np.ndarray]:
        targets = np.asarray(targets)
        bounds = self._shard_bounds(x.shape[0], self.workers)
        shard_opts = [(targets[a:b], loss) for a, b in bounds]
        results, bounds = self._dispatch(
            "loss_parameter_gradients", model, x, per_shard_options=shard_opts
        )
        n = x.shape[0]
        value = sum(v * (b - a) for (v, _), (a, b) in zip(results, bounds)) / n
        flat = sum(g * ((b - a) / n) for (_, g), (a, b) in zip(results, bounds))
        return float(value), np.asarray(flat)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParallelBackend(workers={self.workers}, "
            f"start_method={self._start_method!r})"
        )


__all__ = ["DEFAULT_MAX_PUBLISHED", "ParallelBackend", "default_worker_count"]
