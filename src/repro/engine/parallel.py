"""Multi-core sharded execution backend.

:class:`ParallelBackend` splits every batch the engine dispatches into
contiguous shards and evaluates them on a persistent pool of worker
processes.  Two transport decisions keep the per-call overhead small enough
for the engine's chunked access pattern:

* **Shared-memory array transport** — the input batch is written once into a
  :mod:`multiprocessing.shared_memory` segment; each worker maps the segment
  and copies out only its own shard, so the batch is never pickled through
  the task pipe (and never copied once per worker).
* **Model publication by parameter digest** — the model is pickled into a
  shared-memory segment once per :func:`~repro.nn.serialization
  .parameter_digest`.  Workers rebuild it on first sight of a digest and keep
  it in a small per-process cache, so repeated engine calls against the same
  parameters ship a 64-character digest instead of the weights.  Perturbing
  the model (as the attacks do) changes the digest and triggers exactly one
  re-publication.  Publication reuse is counted in :attr:`cache_stats`, which
  the engine merges into its own statistics.

Loss-based queries (``input_gradients``, ``loss_parameter_gradients``) are
recombined across shards as a weighted mean (weight = shard size), which is
exact for every built-in loss because they all normalise by the batch size.

Results come back through the ordinary pool result pipe: they are shard-sized
and consumed immediately, so pinning them in shared memory would buy nothing.

The pool is lazy (constructing a backend costs nothing until the first
dispatch) and persistent; call :meth:`close` — or let garbage collection /
interpreter shutdown do it — to terminate the workers and unlink the shared
segments.  One backend instance can serve many engines; share it to share
the pool::

    backend = ParallelBackend(workers=4)
    engine = Engine(model, backend=backend)
    ...
    backend.close()
"""

from __future__ import annotations

import os
import pickle
from collections import OrderedDict
from multiprocessing import get_context, shared_memory
from typing import Any, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.engine.backend import ExecutionBackend, register_backend
from repro.engine.cache import CacheStats
from repro.nn.losses import Loss, get_loss
from repro.nn.model import Sequential
from repro.nn.serialization import parameter_digest
from repro.utils.logging import get_logger

logger = get_logger("engine.parallel")

#: how many distinct parameter digests stay published (and resident in each
#: worker) at once; attack loops alternate between a handful of models
DEFAULT_MAX_PUBLISHED = 4


def default_worker_count() -> int:
    """Worker count matching the cores this process may actually use."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

#: per-worker cache of rebuilt models, keyed by parameter digest; sized to
#: match DEFAULT_MAX_PUBLISHED so parent and workers evict in lockstep
_WORKER_MODELS: "OrderedDict[str, Sequential]" = OrderedDict()
_WORKER_MODEL_SLOTS = DEFAULT_MAX_PUBLISHED

#: whether an attach in this worker must be unregistered from the resource
#: tracker again (set by the pool initializer).  CPython < 3.13 registers
#: segments on *attach* as well as create: forked workers share the parent's
#: tracker (set-semantics make the re-register harmless, and unregistering
#: would strip the parent's own registration), while spawned workers own a
#: private tracker that would unlink the parent's live segments at worker
#: exit unless the attach registration is removed.
_UNREGISTER_ON_ATTACH = False


def _worker_init(unregister_on_attach: bool) -> None:
    global _UNREGISTER_ON_ATTACH
    _UNREGISTER_ON_ATTACH = unregister_on_attach


def _attach_readonly(name: str) -> shared_memory.SharedMemory:
    """Map a parent-owned segment without adopting ownership of it."""
    shm = shared_memory.SharedMemory(name=name)
    if _UNREGISTER_ON_ATTACH:  # pragma: no cover - spawn-only path
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:
            pass
    return shm


def _worker_model(digest: str, model_shm: str, model_size: int) -> Sequential:
    model = _WORKER_MODELS.get(digest)
    if model is not None:
        _WORKER_MODELS.move_to_end(digest)
        return model
    shm = _attach_readonly(model_shm)
    try:
        model = pickle.loads(bytes(shm.buf[:model_size]))
    finally:
        shm.close()
    _WORKER_MODELS[digest] = model
    while len(_WORKER_MODELS) > _WORKER_MODEL_SLOTS:
        _WORKER_MODELS.popitem(last=False)
    return model


def _worker_shard(
    batch_shm: str, shape: Tuple[int, ...], dtype: str, start: int, stop: int
) -> np.ndarray:
    """Copy this worker's shard out of the shared batch segment.

    The copy (shard-sized, not batch-sized) lets the segment be closed
    immediately — layer caches may hold views of the input across calls, and
    those must never dangle into an unmapped segment.
    """
    shm = _attach_readonly(batch_shm)
    try:
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
        return np.array(view[start:stop])
    finally:
        shm.close()


def _worker_run(task: tuple) -> Any:
    """Execute one shard task; module-level so every start method can pickle it."""
    op, digest, model_shm, model_size, batch_shm, shape, dtype, start, stop, options = task
    model = _worker_model(digest, model_shm, model_size)
    x = _worker_shard(batch_shm, shape, dtype, start, stop)
    if op == "forward":
        return model.forward(x, training=False)
    if op == "forward_collect":
        return model.forward_collect(x)
    if op == "output_gradients":
        return model.output_gradients_batch(x, options)
    if op == "packed_masks":
        from repro.engine.backend import threshold_and_pack

        scalarization, epsilon = options
        return threshold_and_pack(
            model.output_gradients_batch(x, scalarization), epsilon
        )
    if op == "packed_neuron_masks":
        from repro.engine.backend import pack_neuron_outputs

        threshold, layer_indices = options
        return pack_neuron_outputs(
            model.forward_collect(x), x.shape[0], threshold, layer_indices
        )
    if op == "input_gradients":
        targets, loss = options
        return model.input_gradient(x, targets, loss)
    if op == "loss_parameter_gradients":
        targets, loss = options
        loss_fn = get_loss(loss)
        model.zero_grad()
        logits = model.forward(x, training=False)
        value, grad_logits = loss_fn.value_and_grad(logits, targets)
        model.backward(grad_logits)
        flat = model.parameter_view().flat_grads()
        model.zero_grad()
        return value, flat
    raise ValueError(f"unknown parallel op {op!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


def _release_resources(resources: dict) -> None:
    """Terminate the pool and unlink all owned segments (idempotent)."""
    pool = resources.pop("pool", None)
    if pool is not None:
        pool.terminate()
        pool.join()
    for shm, _size in resources.pop("published", {}).values():
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
    resources["pool"] = None
    resources["published"] = OrderedDict()


@register_backend
class ParallelBackend(ExecutionBackend):
    """Shard batches across a persistent multiprocessing worker pool.

    Parameters
    ----------
    workers:
        Worker process count; defaults to the cores available to this
        process.  ``workers=1`` is valid (useful for testing the transport)
        but pays process overhead for no parallelism.
    start_method:
        ``multiprocessing`` start method; defaults to ``"fork"`` where
        available (cheap worker startup) and the platform default elsewhere.
    max_published:
        How many model publications (distinct parameter digests) to keep
        alive at once.
    """

    name = "parallel"

    def __init__(
        self,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
        max_published: int = DEFAULT_MAX_PUBLISHED,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be at least 1")
        if max_published < 1:
            raise ValueError("max_published must be at least 1")
        self.workers = int(workers) if workers is not None else default_worker_count()
        if start_method is None:
            import multiprocessing

            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._start_method = start_method
        self.max_published = int(max_published)
        self._stats = CacheStats()
        # pool + publications live in a plain dict so the weakref finalizer
        # can release them without keeping the backend itself alive
        self._resources: dict = {"pool": None, "published": OrderedDict()}
        import weakref

        self._finalizer = weakref.finalize(self, _release_resources, self._resources)

    # -- ExecutionBackend surface -------------------------------------------
    @property
    def parallelism(self) -> int:
        return self.workers

    @property
    def cache_stats(self) -> CacheStats:
        """Model-publication reuse counters (hit = weights were not re-shipped)."""
        return self._stats

    def close(self) -> None:
        """Terminate the workers and unlink every published segment."""
        _release_resources(self._resources)

    # -- pool / publication plumbing ----------------------------------------
    def _pool(self):
        pool = self._resources["pool"]
        if pool is None:
            ctx = get_context(self._start_method)
            pool = ctx.Pool(
                processes=self.workers,
                initializer=_worker_init,
                initargs=(self._start_method != "fork",),
            )
            self._resources["pool"] = pool
            logger.debug(
                "started %d worker processes (start method %s)",
                self.workers,
                self._start_method,
            )
        return pool

    def _publish(self, model: Sequential) -> Tuple[str, str, int]:
        """Ensure ``model`` is published; returns (digest, shm name, size)."""
        published: OrderedDict = self._resources["published"]
        digest = parameter_digest(model)
        entry = published.get(digest)
        if entry is not None:
            published.move_to_end(digest)
            self._stats.hits += 1
        else:
            payload = pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
            shm = shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
            shm.buf[: len(payload)] = payload
            entry = (shm, len(payload))
            published[digest] = entry
            self._stats.misses += 1
            while len(published) > self.max_published:
                _, (old_shm, _old_size) = published.popitem(last=False)
                old_shm.close()
                old_shm.unlink()
                self._stats.evictions += 1
        shm, size = entry
        return digest, shm.name, size

    @staticmethod
    def _shard_bounds(n: int, shards: int) -> List[Tuple[int, int]]:
        """Contiguous, balanced, non-empty shard index ranges."""
        shards = max(1, min(shards, n))
        edges = np.linspace(0, n, shards + 1).round().astype(int)
        return [(int(a), int(b)) for a, b in zip(edges[:-1], edges[1:]) if b > a]

    def _dispatch(
        self,
        op: str,
        model: Sequential,
        x: np.ndarray,
        options: Any = None,
        per_shard_options: Optional[Sequence[Any]] = None,
    ) -> Tuple[List[Any], List[Tuple[int, int]]]:
        """Run ``op`` over balanced shards of ``x``; returns (results, bounds)."""
        if x.shape[0] == 0:
            raise ValueError("cannot execute an empty batch")
        digest, model_shm, model_size = self._publish(model)
        bounds = self._shard_bounds(x.shape[0], self.workers)
        xc = np.ascontiguousarray(x)
        batch_shm = shared_memory.SharedMemory(create=True, size=max(1, xc.nbytes))
        try:
            np.ndarray(xc.shape, dtype=xc.dtype, buffer=batch_shm.buf)[:] = xc
            tasks = [
                (
                    op,
                    digest,
                    model_shm,
                    model_size,
                    batch_shm.name,
                    xc.shape,
                    xc.dtype.str,
                    start,
                    stop,
                    per_shard_options[i] if per_shard_options is not None else options,
                )
                for i, (start, stop) in enumerate(bounds)
            ]
            results = self._pool().map(_worker_run, tasks)
        finally:
            batch_shm.close()
            batch_shm.unlink()
        return results, bounds

    # -- batched primitives --------------------------------------------------
    def forward(self, model: Sequential, x: np.ndarray) -> np.ndarray:
        results, _ = self._dispatch("forward", model, x)
        return np.concatenate(results, axis=0)

    def forward_collect(self, model: Sequential, x: np.ndarray) -> List[np.ndarray]:
        results, _ = self._dispatch("forward_collect", model, x)
        # results: one list of per-layer outputs per shard -> concat per layer
        return [np.concatenate(parts, axis=0) for parts in zip(*results)]

    def output_gradients(
        self, model: Sequential, x: np.ndarray, scalarization: str
    ) -> np.ndarray:
        results, _ = self._dispatch("output_gradients", model, x, scalarization)
        return np.concatenate(results, axis=0)

    def packed_masks(
        self, model: Sequential, x: np.ndarray, scalarization: str, epsilon: float
    ) -> np.ndarray:
        # thresholding + packing happen inside the workers: each shard ships
        # back ceil(P/64) uint64 words per sample instead of P float64
        # gradients — a 64x smaller result pickle
        results, _ = self._dispatch(
            "packed_masks", model, x, (scalarization, float(epsilon))
        )
        return np.concatenate(results, axis=0)

    def packed_neuron_masks(
        self,
        model: Sequential,
        x: np.ndarray,
        threshold: float,
        layer_indices: Tuple[int, ...],
    ) -> np.ndarray:
        results, _ = self._dispatch(
            "packed_neuron_masks", model, x, (float(threshold), tuple(layer_indices))
        )
        return np.concatenate(results, axis=0)

    def input_gradients(
        self,
        model: Sequential,
        x: np.ndarray,
        targets: np.ndarray,
        loss: Union[str, Loss],
    ) -> Tuple[float, np.ndarray]:
        targets = np.asarray(targets)
        bounds = self._shard_bounds(x.shape[0], self.workers)
        shard_opts = [(targets[a:b], loss) for a, b in bounds]
        results, bounds = self._dispatch(
            "input_gradients", model, x, per_shard_options=shard_opts
        )
        n = x.shape[0]
        # every built-in loss is a batch mean, so the full-batch value and
        # gradient are the shard results reweighted by shard size
        value = sum(v * (b - a) for (v, _), (a, b) in zip(results, bounds)) / n
        grad = np.concatenate(
            [g * ((b - a) / n) for (_, g), (a, b) in zip(results, bounds)], axis=0
        )
        return float(value), grad

    def loss_parameter_gradients(
        self,
        model: Sequential,
        x: np.ndarray,
        targets: np.ndarray,
        loss: Union[str, Loss],
    ) -> Tuple[float, np.ndarray]:
        targets = np.asarray(targets)
        bounds = self._shard_bounds(x.shape[0], self.workers)
        shard_opts = [(targets[a:b], loss) for a, b in bounds]
        results, bounds = self._dispatch(
            "loss_parameter_gradients", model, x, per_shard_options=shard_opts
        )
        n = x.shape[0]
        value = sum(v * (b - a) for (v, _), (a, b) in zip(results, bounds)) / n
        flat = sum(g * ((b - a) / n) for (_, g), (a, b) in zip(results, bounds))
        return float(value), np.asarray(flat)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParallelBackend(workers={self.workers}, "
            f"start_method={self._start_method!r})"
        )


__all__ = ["DEFAULT_MAX_PUBLISHED", "ParallelBackend", "default_worker_count"]
