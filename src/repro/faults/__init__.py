"""Fault-tolerant execution layer: policies, retries, and chaos injection.

Three pieces, deliberately dependency-free so every subsystem can import
them without cycles:

* :mod:`repro.faults.errors` — the transient/logic failure taxonomy.
* :mod:`repro.faults.policy` — :class:`FaultPolicy` (retries, deterministic
  seeded backoff, dispatch timeout, circuit breaker) and the
  :class:`RetryController` that enforces it.
* :mod:`repro.faults.inject` — the deterministic fault-plan API driving
  ``tests/test_faults.py``: kill worker N at dispatch K, raise IOError on
  the Jth mmap window read, add latency to a named layer's forward.
"""

from repro.faults.errors import (
    CampaignAbortedError,
    CircuitOpenError,
    DispatchTimeoutError,
    FaultError,
    WorkerCrashError,
    is_transient,
)
from repro.faults.inject import Fault, FaultPlan
from repro.faults.policy import FaultPolicy, FaultStats, RetryController

__all__ = [
    "CampaignAbortedError",
    "CircuitOpenError",
    "DispatchTimeoutError",
    "Fault",
    "FaultError",
    "FaultPlan",
    "FaultPolicy",
    "FaultStats",
    "RetryController",
    "WorkerCrashError",
    "is_transient",
]
