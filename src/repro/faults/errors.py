"""Exception taxonomy for the fault-tolerant execution layer.

Two families matter operationally:

* **Transient** failures — a worker died, a dispatch timed out, an I/O
  window tore — are retried under a :class:`~repro.faults.FaultPolicy`
  and, past the circuit-breaker threshold, trigger a backend downgrade.
* **Logic** failures — bad shapes, unknown ops, assertion-grade bugs —
  propagate immediately: retrying a deterministic error only hides it.

:func:`is_transient` encodes the split in one place so the engine, the
parallel backend, and the campaign runner agree on what is retryable.
"""

from __future__ import annotations


class FaultError(RuntimeError):
    """Base class for failures raised by the fault-tolerance layer itself."""


class WorkerCrashError(FaultError):
    """A pool worker died mid-dispatch (killed, OOMed, or segfaulted)."""


class DispatchTimeoutError(FaultError):
    """A dispatch exceeded the policy's ``dispatch_timeout_s`` budget."""


class CircuitOpenError(FaultError):
    """The breaker tripped and no downgrade target was configured."""


class CampaignAbortedError(FaultError):
    """Quarantined-scenario count exceeded the campaign's failure budget."""


#: exception types retried under a :class:`FaultPolicy`; everything else is
#: treated as a logic error and propagates on the first occurrence
TRANSIENT_TYPES = (
    OSError,  # covers IOError, ConnectionError, and shared-memory errors
    TimeoutError,
    WorkerCrashError,
    DispatchTimeoutError,
)


def is_transient(exc: BaseException) -> bool:
    """True when ``exc`` is worth retrying under a fault policy."""
    return isinstance(exc, TRANSIENT_TYPES)


__all__ = [
    "CampaignAbortedError",
    "CircuitOpenError",
    "DispatchTimeoutError",
    "FaultError",
    "TRANSIENT_TYPES",
    "WorkerCrashError",
    "is_transient",
]
