"""Deterministic fault injection for the chaos suite.

A :class:`FaultPlan` is an ordered list of :class:`Fault` entries, each
bound to a named **site** in the stack and a schedule over that site's
hit counter.  Activating a plan (``with inject.activate(plan):``) arms a
module-global pointer that instrumented code consults via
:func:`check`; with no plan active the instrumentation reduces to one
``is not None`` test (:func:`active`), keeping the fault-free hot path
unmeasurable.

Sites currently instrumented:

================== ====================================== =================
site               where                                   context keys
================== ====================================== =================
``engine.dispatch``   every ``Engine`` backend call        ``op, backend``
``parallel.dispatch`` ``ParallelBackend._dispatch`` entry  ``op``
``mmap.window``       each ``MmapMaskMatrix`` window read  ``path, window``
``layer.forward``     per-layer in ``Sequential.forward``  ``layer, index, model``
``campaign.scenario`` per attack group in the runner       ``model, attack``
``campaign.shard``    per pulled unit in a shard worker    ``shard, model, attack``
``model_axis.stacked_forward`` each fused stacked dispatch ``models``
================== ====================================== =================

Scheduling is per-fault and deterministic: each time :func:`check` runs
for a matching site/context the fault's hit counter advances, and the
fault fires when the 0-based ordinal is in ``at``, or divisible by
``every``, capped by ``times``.  ``raise`` and ``latency`` actions are
executed by :func:`check` itself; site-specific actions
(``kill_worker``/``stall_worker``) are returned to the caller, which
knows how to apply them (the parallel backend signals the target pid).
"""

from __future__ import annotations

import builtins
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Type, Union

ACTIONS = ("raise", "latency", "kill_worker", "stall_worker")


@dataclass
class Fault:
    """One scheduled fault at one site; mutable hit/fire counters ride along."""

    site: str
    action: str = "raise"
    exception: Union[str, Type[BaseException]] = "IOError"
    message: str = "injected fault"
    latency_s: float = 0.0
    worker: int = 0
    match: Dict[str, object] = field(default_factory=dict)
    at: Optional[Tuple[int, ...]] = None
    every: Optional[int] = None
    times: Optional[int] = None
    hits: int = 0
    fires: int = 0

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.every is not None and self.every < 1:
            raise ValueError("every must be >= 1")
        if self.at is not None:
            self.at = tuple(int(i) for i in self.at)

    def matches(self, ctx: Dict[str, object]) -> bool:
        return all(ctx.get(key) == value for key, value in self.match.items())

    def scheduled(self, ordinal: int) -> bool:
        if self.times is not None and self.fires >= self.times:
            return False
        if self.at is not None:
            return ordinal in self.at
        if self.every is not None:
            return ordinal % self.every == 0
        return True

    def build_exception(self) -> BaseException:
        exc_type = self.exception
        if isinstance(exc_type, str):
            resolved = getattr(builtins, exc_type, None)
            if resolved is None or not (
                isinstance(resolved, type) and issubclass(resolved, BaseException)
            ):
                raise ValueError(f"unknown exception type {exc_type!r}")
            exc_type = resolved
        return exc_type(self.message)


class FaultPlan:
    """An ordered set of faults plus a log of every firing (site + context)."""

    def __init__(self) -> None:
        self.faults: List[Fault] = []
        self.log: List[Dict[str, object]] = []

    def add(self, fault: Fault) -> Fault:
        self.faults.append(fault)
        return fault

    # -- builders ---------------------------------------------------------
    def raise_error(
        self,
        site: str,
        exception: Union[str, Type[BaseException]] = "IOError",
        *,
        message: str = "injected fault",
        at: Optional[Tuple[int, ...]] = None,
        every: Optional[int] = None,
        times: Optional[int] = None,
        **match: object,
    ) -> Fault:
        return self.add(
            Fault(
                site=site,
                action="raise",
                exception=exception,
                message=message,
                at=at,
                every=every,
                times=times,
                match=match,
            )
        )

    def latency(
        self,
        site: str,
        seconds: float,
        *,
        at: Optional[Tuple[int, ...]] = None,
        every: Optional[int] = None,
        times: Optional[int] = None,
        **match: object,
    ) -> Fault:
        return self.add(
            Fault(
                site=site,
                action="latency",
                latency_s=float(seconds),
                at=at,
                every=every,
                times=times,
                match=match,
            )
        )

    def kill_worker(
        self,
        worker: int = 0,
        *,
        site: str = "parallel.dispatch",
        at: Optional[Tuple[int, ...]] = None,
        every: Optional[int] = None,
        times: Optional[int] = None,
        **match: object,
    ) -> Fault:
        return self.add(
            Fault(
                site=site,
                action="kill_worker",
                worker=worker,
                at=at,
                every=every,
                times=times,
                match=match,
            )
        )

    def stall_worker(
        self,
        worker: int = 0,
        *,
        site: str = "parallel.dispatch",
        at: Optional[Tuple[int, ...]] = None,
        every: Optional[int] = None,
        times: Optional[int] = None,
        **match: object,
    ) -> Fault:
        return self.add(
            Fault(
                site=site,
                action="stall_worker",
                worker=worker,
                at=at,
                every=every,
                times=times,
                match=match,
            )
        )

    # -- evaluation -------------------------------------------------------
    def consume(self, site: str, ctx: Dict[str, object]) -> Optional[Fault]:
        """Advance hit counters for ``site``; return the first fault that fires.

        Every matching fault's counter advances on every call (so multiple
        faults at one site keep independent, reproducible schedules), but at
        most one fault fires per check.
        """
        fired: Optional[Fault] = None
        for fault in self.faults:
            if fault.site != site or not fault.matches(ctx):
                continue
            ordinal = fault.hits
            fault.hits += 1
            if fired is None and fault.scheduled(ordinal):
                fault.fires += 1
                fired = fault
                self.log.append(
                    {"site": site, "action": fault.action, "ordinal": ordinal, **ctx}
                )
        return fired

    def fired(self, site: Optional[str] = None) -> int:
        """Total firings, optionally restricted to one site."""
        return sum(1 for entry in self.log if site is None or entry["site"] == site)


_PLAN: Optional[FaultPlan] = None


def active() -> bool:
    """Cheap guard for instrumentation sites: is any plan armed?"""
    return _PLAN is not None


@contextmanager
def activate(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm ``plan`` for the duration of the block (plans do not nest)."""
    global _PLAN
    if _PLAN is not None:
        raise RuntimeError("a fault plan is already active")
    _PLAN = plan
    try:
        yield plan
    finally:
        _PLAN = None


def check(site: str, **ctx: object) -> Optional[Fault]:
    """Consult the active plan at ``site``.

    ``raise`` faults raise here; ``latency`` faults sleep here and return
    ``None``; site-specific actions are returned for the caller to apply.
    Returns ``None`` (fast) when no plan is active or nothing fires.
    """
    plan = _PLAN
    if plan is None:
        return None
    fault = plan.consume(site, ctx)
    if fault is None:
        return None
    if fault.action == "latency":
        time.sleep(fault.latency_s)
        return None
    if fault.action == "raise":
        raise fault.build_exception()
    return fault


__all__ = ["ACTIONS", "Fault", "FaultPlan", "activate", "active", "check"]
