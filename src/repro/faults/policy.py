"""Retry/backoff policy and the retry controller that enforces it.

:class:`FaultPolicy` is a frozen value object: every knob that shapes how
the stack reacts to a transient failure, serializable to/from the plain
dict that rides on :class:`repro.api.RunConfig` and campaign CLI flags.
Backoff is **deterministic**: the jitter term is derived from SHA-256 of
``(seed, key, attempt)``, so two runs of the same plan sleep the same
schedule — a property the chaos suite leans on.

:class:`RetryController` executes callables under a policy: transient
errors (per :func:`repro.faults.errors.is_transient`) are retried with
backoff; ``breaker_threshold`` *consecutive* transient failures trip the
circuit breaker, which invokes the caller-supplied downgrade hook (the
engine swaps in its serial fallback backend) instead of failing the
query.  Logic errors always propagate immediately.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Callable, Dict, List, Optional, TypeVar, Union

from repro.faults.errors import CircuitOpenError, is_transient

T = TypeVar("T")


@dataclass(frozen=True)
class FaultPolicy:
    """Knobs governing retries, backoff, timeouts, and the circuit breaker.

    ``backoff_delay(attempt)`` grows geometrically from ``backoff_base_s``
    by ``backoff_factor``, scaled by ``1 + backoff_jitter * u`` with ``u``
    drawn deterministically from the policy seed.  ``dispatch_timeout_s``
    bounds a single parallel dispatch (``None`` = wait forever for results,
    though dead workers are still detected by liveness polling).  After
    ``breaker_threshold`` consecutive transient failures the breaker trips
    and the engine downgrades to ``downgrade_backend`` (``None`` disables
    downgrade and surfaces :class:`CircuitOpenError` semantics instead).
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5
    dispatch_timeout_s: Optional[float] = None
    breaker_threshold: int = 3
    downgrade_backend: Optional[str] = "numpy"
    seed: int = 0

    def validate(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.backoff_jitter < 0:
            raise ValueError("backoff_jitter must be >= 0")
        if self.dispatch_timeout_s is not None and self.dispatch_timeout_s <= 0:
            raise ValueError("dispatch_timeout_s must be positive or None")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")

    def backoff_delay(self, attempt: int, key: str = "") -> float:
        """Deterministic sleep before retry ``attempt`` (1-based) of ``key``."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        if self.backoff_jitter <= 0 or base <= 0:
            return base
        digest = hashlib.sha256(f"{self.seed}|{key}|{attempt}".encode()).digest()
        unit = int.from_bytes(digest[:8], "big") / 2**64
        return base * (1.0 + self.backoff_jitter * unit)

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPolicy":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown FaultPolicy field(s): {', '.join(unknown)}")
        policy = cls(**data)  # type: ignore[arg-type]
        policy.validate()
        return policy

    @classmethod
    def coerce(
        cls, value: Union["FaultPolicy", Dict[str, object], None]
    ) -> Optional["FaultPolicy"]:
        """Normalize a policy spec: instance → itself, dict → parsed, None → None."""
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, dict):
            return cls.from_dict(value)
        raise TypeError(f"cannot build a FaultPolicy from {type(value).__name__}")

    def with_overrides(self, **overrides: object) -> "FaultPolicy":
        policy = replace(self, **overrides)  # type: ignore[arg-type]
        policy.validate()
        return policy


@dataclass
class FaultStats:
    """Counters the retry layer accumulates; merged into ``Engine.stats``."""

    retries: int = 0
    failures: int = 0
    breaker_trips: int = 0
    downgrades: int = 0

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)


@dataclass
class RetryController:
    """Runs callables under a :class:`FaultPolicy` with breaker semantics.

    The breaker counts *consecutive* transient failures across calls (a
    success resets it).  When it trips, the ``downgrade`` hook passed to
    :meth:`run` is invoked once — after which the controller keeps
    retrying on the (presumably healthier) downgraded path.  ``sleeper``
    is injectable so tests assert the exact backoff schedule without
    sleeping.
    """

    policy: FaultPolicy = field(default_factory=FaultPolicy)
    sleeper: Callable[[float], None] = time.sleep
    stats: FaultStats = field(default_factory=FaultStats)
    events: List[Dict[str, object]] = field(default_factory=list)
    consecutive_failures: int = 0
    downgraded: bool = False

    def run(
        self,
        fn: Callable[[], T],
        key: str = "dispatch",
        downgrade: Optional[Callable[[BaseException], None]] = None,
        pending: Optional[BaseException] = None,
    ) -> T:
        """Call ``fn`` under the policy until success or exhaustion.

        ``pending`` lets a caller that already attempted the work once (the
        engine's inlined fast path) hand over the exception instead of
        paying the controller frame on every fault-free call.
        """
        attempt = 0
        exc: Optional[BaseException] = pending
        while True:
            if exc is None:
                try:
                    result = fn()
                except Exception as raised:
                    exc = raised
                else:
                    self.consecutive_failures = 0
                    return result
            current, exc = exc, None
            if not is_transient(current):
                raise current
            self.stats.failures += 1
            self.consecutive_failures += 1
            self.events.append(
                {
                    "event": "transient_failure",
                    "key": key,
                    "error": type(current).__name__,
                    "message": str(current),
                }
            )
            if (
                not self.downgraded
                and self.consecutive_failures >= self.policy.breaker_threshold
            ):
                self.stats.breaker_trips += 1
                self.events.append({"event": "breaker_trip", "key": key})
                if downgrade is None:
                    raise CircuitOpenError(
                        f"circuit breaker tripped after "
                        f"{self.consecutive_failures} consecutive failures "
                        f"on {key!r}"
                    ) from current
                self.downgraded = True
                self.stats.downgrades += 1
                downgrade(current)
                attempt = 0
                continue
            if attempt >= self.policy.max_retries:
                raise current
            attempt += 1
            self.stats.retries += 1
            self.sleeper(self.policy.backoff_delay(attempt, key))


__all__ = ["FaultPolicy", "FaultStats", "RetryController"]
