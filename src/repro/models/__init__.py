"""Model zoo (Table-I architectures and toy variants) and training loops."""

from repro.models.training import Trainer, TrainingHistory, train_model
from repro.models.zoo import (
    build_model,
    cifar_cnn,
    cifar_cnn_scaled,
    mnist_cnn,
    mnist_cnn_scaled,
    small_cnn,
    small_mlp,
)

__all__ = [
    "Trainer",
    "TrainingHistory",
    "train_model",
    "build_model",
    "cifar_cnn",
    "cifar_cnn_scaled",
    "mnist_cnn",
    "mnist_cnn_scaled",
    "small_cnn",
    "small_mlp",
]
