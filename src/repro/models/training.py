"""Training loop for the zoo models.

The paper trains its models to 98.9 % (MNIST) and 84.26 % (CIFAR-10) test
accuracy before generating functional tests.  The :class:`Trainer` reproduces
that step on the synthetic datasets: minibatch SGD-family optimisation of the
softmax cross-entropy, accuracy tracking per epoch and optional early stopping
once a target accuracy is reached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.data.datasets import Dataset
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.metrics import accuracy
from repro.nn.model import Sequential
from repro.nn.optimizers import get_optimizer
from repro.utils.config import TrainingConfig
from repro.utils.logging import get_logger
from repro.utils.rng import as_generator

logger = get_logger("models.training")


@dataclass
class TrainingHistory:
    """Per-epoch record of the training run."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    test_accuracy: List[float] = field(default_factory=list)

    @property
    def epochs_run(self) -> int:
        return len(self.train_loss)

    @property
    def final_test_accuracy(self) -> float:
        if not self.test_accuracy:
            raise ValueError("no epochs have been recorded")
        return self.test_accuracy[-1]

    def to_dict(self) -> Dict[str, List[float]]:
        return {
            "train_loss": list(self.train_loss),
            "train_accuracy": list(self.train_accuracy),
            "test_accuracy": list(self.test_accuracy),
        }


class Trainer:
    """Minibatch trainer for :class:`~repro.nn.model.Sequential` classifiers."""

    def __init__(self, config: Optional[TrainingConfig] = None) -> None:
        self.config = config or TrainingConfig()
        self.config.validate()

    def fit(
        self,
        model: Sequential,
        train: Dataset,
        test: Optional[Dataset] = None,
    ) -> TrainingHistory:
        """Train ``model`` on ``train``; evaluate on ``test`` each epoch.

        Returns the per-epoch history.  If
        :attr:`TrainingConfig.early_stop_accuracy` is set, training stops once
        the evaluation accuracy reaches the target (using training accuracy
        when no test set is provided).
        """
        cfg = self.config
        if len(train) == 0:
            raise ValueError("training dataset is empty")
        optimizer = get_optimizer(cfg.optimizer, cfg.learning_rate, cfg.weight_decay)
        loss_fn = SoftmaxCrossEntropy()
        rng = as_generator(cfg.seed)
        history = TrainingHistory()

        for epoch in range(cfg.epochs):
            epoch_losses: List[float] = []
            correct = 0
            seen = 0
            for images, labels in train.batches(
                cfg.batch_size, shuffle=cfg.shuffle, rng=rng
            ):
                model.zero_grad()
                logits = model.forward(images, training=True)
                loss, grad = loss_fn.value_and_grad(logits, labels)
                model.backward(grad)
                optimizer.step(model.parameters())
                epoch_losses.append(loss)
                correct += int(np.sum(np.argmax(logits, axis=1) == labels))
                seen += len(labels)

            train_acc = correct / max(seen, 1)
            history.train_loss.append(float(np.mean(epoch_losses)))
            history.train_accuracy.append(float(train_acc))

            if test is not None and len(test):
                test_acc = accuracy(model.predict_classes(test.images), test.labels)
            else:
                test_acc = train_acc
            history.test_accuracy.append(float(test_acc))
            logger.info(
                "epoch %d/%d: loss=%.4f train_acc=%.3f eval_acc=%.3f",
                epoch + 1,
                cfg.epochs,
                history.train_loss[-1],
                train_acc,
                test_acc,
            )
            if (
                cfg.early_stop_accuracy is not None
                and test_acc >= cfg.early_stop_accuracy
            ):
                logger.info("early stop: accuracy target %.3f reached", cfg.early_stop_accuracy)
                break
        return history

    def evaluate(self, model: Sequential, dataset: Dataset) -> float:
        """Classification accuracy of ``model`` on ``dataset``."""
        if len(dataset) == 0:
            raise ValueError("cannot evaluate on an empty dataset")
        return accuracy(model.predict_classes(dataset.images), dataset.labels)


def train_model(
    model: Sequential,
    train: Dataset,
    test: Optional[Dataset] = None,
    config: Optional[TrainingConfig] = None,
) -> TrainingHistory:
    """Convenience wrapper: ``Trainer(config).fit(model, train, test)``."""
    return Trainer(config).fit(model, train, test)


__all__ = ["Trainer", "TrainingHistory", "train_model"]
