"""Model zoo: the Table-I architectures plus scaled and toy variants.

Table I of the paper defines two convolutional classifiers:

* **MNIST model** (Tanh activations): Conv(3,3,32)–Conv(3,3,32)–MaxPool(2,2)–
  Conv(3,3,64)–Conv(3,3,64)–MaxPool(2,2)–FC(128)–FC(10, softmax).
* **CIFAR-10 model** (ReLU activations): Conv(3,3,64)–Conv(3,3,64)–MaxPool–
  Conv(3,3,128)–Conv(3,3,128)–MaxPool–FC(512)–FC(10, softmax).

Full-width builders replicate those exactly.  The defaults used by tests,
examples and benchmarks shrink the channel counts with a ``width_multiplier``
so the whole evaluation runs on CPU in minutes; the layer topology, activation
choice (Tanh vs ReLU) and depth are unchanged, which is what the coverage and
detection behaviour depends on.
"""

from __future__ import annotations

from typing import Optional

from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D
from repro.nn.model import Sequential
from repro.registry import register
from repro.utils.rng import RngLike


#: default training learning rates per Table-I setup (the values
#: prepare_experiment uses; campaign specs inherit them per model axis)
MODEL_LEARNING_RATES = {"mnist": 2e-3, "cifar": 3e-3}


def _scaled(width: int, multiplier: float) -> int:
    """Scale a channel/unit count, never going below 2."""
    return max(2, int(round(width * multiplier)))


def mnist_cnn(
    width_multiplier: float = 1.0,
    input_size: int = 28,
    num_classes: int = 10,
    rng: RngLike = None,
    build: bool = True,
) -> Sequential:
    """The Table-I MNIST architecture (Tanh activations).

    ``width_multiplier=1.0`` gives the exact paper widths (32/32/64/64/128);
    smaller multipliers shrink every layer proportionally.
    """
    if width_multiplier <= 0:
        raise ValueError("width_multiplier must be positive")
    c1 = _scaled(32, width_multiplier)
    c2 = _scaled(64, width_multiplier)
    fc = _scaled(128, width_multiplier)
    model = Sequential(
        [
            Conv2D(c1, 3, padding="same", activation="tanh", name="conv1"),
            Conv2D(c1, 3, padding="same", activation="tanh", name="conv2"),
            MaxPool2D(2, name="pool1"),
            Conv2D(c2, 3, padding="same", activation="tanh", name="conv3"),
            Conv2D(c2, 3, padding="same", activation="tanh", name="conv4"),
            MaxPool2D(2, name="pool2"),
            Flatten(name="flatten"),
            Dense(fc, activation="tanh", name="fc1"),
            Dense(num_classes, activation=None, name="logits"),
        ],
        name=f"mnist_cnn_x{width_multiplier:g}",
    )
    if build:
        model.build((1, input_size, input_size), rng=rng)
    return model


def cifar_cnn(
    width_multiplier: float = 1.0,
    input_size: int = 32,
    num_classes: int = 10,
    rng: RngLike = None,
    build: bool = True,
) -> Sequential:
    """The Table-I CIFAR-10 architecture (ReLU activations).

    ``width_multiplier=1.0`` gives the exact paper widths (64/64/128/128/512).
    """
    if width_multiplier <= 0:
        raise ValueError("width_multiplier must be positive")
    c1 = _scaled(64, width_multiplier)
    c2 = _scaled(128, width_multiplier)
    fc = _scaled(512, width_multiplier)
    model = Sequential(
        [
            Conv2D(c1, 3, padding="same", activation="relu", name="conv1"),
            Conv2D(c1, 3, padding="same", activation="relu", name="conv2"),
            MaxPool2D(2, name="pool1"),
            Conv2D(c2, 3, padding="same", activation="relu", name="conv3"),
            Conv2D(c2, 3, padding="same", activation="relu", name="conv4"),
            MaxPool2D(2, name="pool2"),
            Flatten(name="flatten"),
            Dense(fc, activation="relu", name="fc1"),
            Dense(num_classes, activation=None, name="logits"),
        ],
        name=f"cifar_cnn_x{width_multiplier:g}",
    )
    if build:
        model.build((3, input_size, input_size), rng=rng)
    return model


def mnist_cnn_scaled(rng: RngLike = None) -> Sequential:
    """Default scaled MNIST-style model used by examples/benchmarks (×1/8 width)."""
    return mnist_cnn(width_multiplier=0.125, rng=rng)


def cifar_cnn_scaled(rng: RngLike = None) -> Sequential:
    """Default scaled CIFAR-style model used by examples/benchmarks (×1/16 width)."""
    return cifar_cnn(width_multiplier=0.0625, rng=rng)


def small_cnn(
    channels: int = 4,
    dense_units: int = 16,
    input_shape: tuple[int, int, int] = (1, 12, 12),
    num_classes: int = 10,
    activation: str = "relu",
    rng: RngLike = None,
) -> Sequential:
    """A deliberately tiny CNN for unit tests: one conv block + one hidden dense."""
    model = Sequential(
        [
            Conv2D(channels, 3, padding="same", activation=activation, name="conv1"),
            MaxPool2D(2, name="pool1"),
            Flatten(name="flatten"),
            Dense(dense_units, activation=activation, name="fc1"),
            Dense(num_classes, activation=None, name="logits"),
        ],
        name="small_cnn",
    )
    model.build(input_shape, rng=rng)
    return model


def small_mlp(
    input_features: int = 16,
    hidden_units: int = 32,
    num_classes: int = 4,
    activation: str = "relu",
    depth: int = 2,
    rng: RngLike = None,
) -> Sequential:
    """A small fully-connected classifier for fast tests and property checks."""
    if depth < 1:
        raise ValueError("depth must be at least 1")
    layers = []
    for i in range(depth):
        layers.append(Dense(hidden_units, activation=activation, name=f"fc{i + 1}"))
    layers.append(Dense(num_classes, activation=None, name="logits"))
    model = Sequential(layers, name="small_mlp")
    model.build((input_features,), rng=rng)
    return model


# -- registry entries --------------------------------------------------------
# every zoo builder is resolvable by name through the ``models`` namespace of
# the cross-subsystem registry (the basis of build_model and the datasets'
# experiment recipes)
register("models", "mnist", mnist_cnn, summary="Table-I MNIST CNN (Tanh)")
register("models", "cifar", cifar_cnn, summary="Table-I CIFAR-10 CNN (ReLU)")
register(
    "models",
    "mnist_scaled",
    mnist_cnn_scaled,
    summary="x1/8-width MNIST CNN (examples/benchmarks default)",
)
register(
    "models",
    "cifar_scaled",
    cifar_cnn_scaled,
    summary="x1/16-width CIFAR CNN (examples/benchmarks default)",
)
register("models", "small_cnn", small_cnn, summary="tiny one-block CNN for unit tests")
register("models", "small_mlp", small_mlp, summary="small MLP for fast property tests")


def build_model(name: str, rng: RngLike = None, **kwargs: object) -> Sequential:
    """Build a zoo model by name.

    Builtin names: ``mnist``, ``mnist_scaled``, ``cifar``, ``cifar_scaled``,
    ``small_cnn``, ``small_mlp``; resolution goes through the ``models``
    namespace of :mod:`repro.registry`, so registered third-party builders
    work here too.
    """
    from repro.registry import registry

    return registry.create("models", name, rng=rng, **kwargs)  # type: ignore[return-value]


__all__ = [
    "MODEL_LEARNING_RATES",
    "mnist_cnn",
    "cifar_cnn",
    "mnist_cnn_scaled",
    "cifar_cnn_scaled",
    "small_cnn",
    "small_mlp",
    "build_model",
]
