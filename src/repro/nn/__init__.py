"""From-scratch NumPy deep-learning substrate.

This subpackage replaces the TensorFlow/PyTorch dependency of the original
paper: it provides layers, activations, losses, optimisers and a
:class:`~repro.nn.model.Sequential` model with explicit forward/backward
passes.  Crucially for the paper's method it exposes

* parameter gradients of a scalarised output ``∇θ F(x)`` (validation
  coverage, Section IV-A),
* input gradients of a loss (gradient-based test generation, Section IV-C,
  and the GDA attack), and
* parameter gradients of a loss (training and the GDA attack).

Besides the single-sample queries, every layer implements
``backward_batch`` — a backward pass that keeps parameter gradients
*separate per sample* instead of summing them over the batch — and
:meth:`~repro.nn.model.Sequential.output_gradients_batch` builds the whole
``(N, num_parameters)`` gradient matrix in one pass.  These are the
primitives of the batched execution layer in :mod:`repro.engine`; use an
:class:`~repro.engine.Engine` (which adds chunking, memoization and backend
selection on top) rather than calling them or raw ``Model.forward``
directly whenever a model is queried repeatedly or for many samples.
"""

from repro.nn.dtypes import (
    FLOAT32_COVERAGE_ATOL,
    FLOAT32_FORWARD_ATOL,
    FLOAT32_GRADIENT_ATOL,
    FLOAT64_TOLERANCE,
    DtypePolicy,
)
from repro.nn.activations import (
    Activation,
    Identity,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
    get_activation,
    is_exact_zero_gradient,
)
from repro.nn.initializers import (
    constant,
    default_for_activation,
    get_initializer,
    he_normal,
    initialize,
    normal,
    ones,
    uniform,
    xavier_normal,
    xavier_uniform,
    zeros,
)
from repro.nn.layers import (
    ActivationLayer,
    AvgPool2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    Layer,
    MaxPool2D,
    col2im,
    im2col,
)
from repro.nn.losses import (
    Loss,
    MeanSquaredError,
    NegativeLogit,
    SoftmaxCrossEntropy,
    get_loss,
    one_hot,
)
from repro.nn.metrics import (
    accuracy,
    confusion_matrix,
    per_class_accuracy,
    top_k_accuracy,
)
from repro.nn.model import SCALARIZATIONS, Sequential
from repro.nn.stacked import StackedSequential
from repro.nn.optimizers import SGD, Adam, Momentum, Optimizer, StepDecay, get_optimizer
from repro.nn.serialization import (
    load_metadata,
    load_model_into,
    load_parameters,
    parameter_digest,
    save_model,
)
from repro.nn.tensor import Parameter, ParameterView
from repro.nn.workspace import WorkspacePool

__all__ = [
    # dtypes
    "DtypePolicy",
    "FLOAT64_TOLERANCE",
    "FLOAT32_FORWARD_ATOL",
    "FLOAT32_GRADIENT_ATOL",
    "FLOAT32_COVERAGE_ATOL",
    # workspaces
    "WorkspacePool",
    # activations
    "Activation",
    "Identity",
    "LeakyReLU",
    "ReLU",
    "Sigmoid",
    "Softmax",
    "Tanh",
    "get_activation",
    "is_exact_zero_gradient",
    # initializers
    "constant",
    "default_for_activation",
    "get_initializer",
    "he_normal",
    "initialize",
    "normal",
    "ones",
    "uniform",
    "xavier_normal",
    "xavier_uniform",
    "zeros",
    # layers
    "ActivationLayer",
    "AvgPool2D",
    "Conv2D",
    "Dense",
    "Dropout",
    "Flatten",
    "Layer",
    "MaxPool2D",
    "col2im",
    "im2col",
    # losses
    "Loss",
    "MeanSquaredError",
    "NegativeLogit",
    "SoftmaxCrossEntropy",
    "get_loss",
    "one_hot",
    # metrics
    "accuracy",
    "confusion_matrix",
    "per_class_accuracy",
    "top_k_accuracy",
    # model
    "SCALARIZATIONS",
    "Sequential",
    "StackedSequential",
    # optimizers
    "SGD",
    "Adam",
    "Momentum",
    "Optimizer",
    "StepDecay",
    "get_optimizer",
    # serialization
    "load_metadata",
    "load_model_into",
    "load_parameters",
    "parameter_digest",
    "save_model",
    # tensors
    "Parameter",
    "ParameterView",
]
