"""Activation functions with explicit forward/backward implementations.

Each activation is a small stateless object exposing ``forward`` and
``backward``.  The backward pass receives the upstream gradient together with
the cached forward inputs/outputs and returns the gradient with respect to the
activation input.

Saturation behaviour matters for this paper: ReLU produces *exactly* zero
gradients in its inactive region, whereas Tanh/Sigmoid produce merely small
gradients in their saturated regions — which is why the coverage metric uses an
ε-threshold for those activations (Section IV-A).
"""

from __future__ import annotations

from typing import Dict, Type

import numpy as np


class Activation:
    """Base class for elementwise activations."""

    #: name used by layer constructors and serialisation
    name: str = "identity"

    #: True when :meth:`backward` only reads ``y`` (never ``x``), so a fused
    #: layer may overwrite the pre-activation buffer in place and pass the
    #: output as both arguments.  Subclasses that need the pre-activation
    #: input in backward must leave this False.
    grad_from_output: bool = False

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def forward_inplace(self, x: np.ndarray) -> np.ndarray:
        """Apply the activation, reusing ``x`` as the output buffer when safe.

        Only called by fused layers on buffers they own (fresh matmul
        outputs), and only when :attr:`grad_from_output` is True — the
        pre-activation values are destroyed.  The default falls back to the
        allocating :meth:`forward`.
        """
        return self.forward(x)

    def backward(self, x: np.ndarray, y: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        """Gradient wrt the activation input.

        Parameters
        ----------
        x: the activation input as seen in the forward pass.
        y: the activation output computed in the forward pass.
        grad_out: upstream gradient with respect to ``y``.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.__class__.__name__}()"


class Identity(Activation):
    """Pass-through activation (used for linear output layers)."""

    name = "identity"
    grad_from_output = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, x: np.ndarray, y: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        return grad_out


class ReLU(Activation):
    """Rectified linear unit: ``max(0, x)``.

    The derivative is exactly zero for negative inputs — the source of the
    "inactive parameter" phenomenon the paper exploits and must cover.
    """

    name = "relu"
    # y > 0 exactly when x > 0 (x <= 0 clamps to y == 0, gradient 0 either
    # way), so backward works identically when x aliases y
    grad_from_output = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)

    def forward_inplace(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0, out=x)

    def backward(self, x: np.ndarray, y: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * (x > 0.0)


class LeakyReLU(Activation):
    """Leaky ReLU with configurable negative slope."""

    name = "leaky_relu"
    # the map is sign-preserving (slope >= 0), so the x > 0 test in backward
    # is equivalent to y > 0 and x may alias y
    grad_from_output = True

    def __init__(self, negative_slope: float = 0.01) -> None:
        if negative_slope < 0:
            raise ValueError("negative_slope must be non-negative")
        self.negative_slope = float(negative_slope)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.where(x > 0.0, x, self.negative_slope * x)

    def backward(self, x: np.ndarray, y: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        # dtype-preserving form (np.where over python-float branches would
        # always produce float64)
        return np.where(x > 0.0, grad_out, grad_out * self.negative_slope)


class Tanh(Activation):
    """Hyperbolic tangent.  Saturates for |x| >> 0 (gradient ≈ 0 but not 0)."""

    name = "tanh"
    grad_from_output = True  # backward reads only y

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def forward_inplace(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x, out=x)

    def backward(self, x: np.ndarray, y: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        # chained in place through one fresh buffer: large batched gradient
        # arrays make the extra temporaries of `grad_out * (1 - y * y)`
        # measurably expensive
        out = y * y
        np.subtract(1.0, out, out=out)
        out *= grad_out
        return out


class Sigmoid(Activation):
    """Logistic sigmoid.  Saturates for |x| >> 0."""

    name = "sigmoid"
    grad_from_output = True  # backward reads only y

    def forward(self, x: np.ndarray) -> np.ndarray:
        # numerically stable piecewise formulation; follows the input dtype
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        return out

    def forward_inplace(self, x: np.ndarray) -> np.ndarray:
        # each fancy-indexed assignment fully evaluates its right-hand side
        # before writing, so x can serve as its own output buffer
        pos = x >= 0
        x[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        x[~pos] = ex / (1.0 + ex)
        return x

    def backward(self, x: np.ndarray, y: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * y * (1.0 - y)


class Softmax(Activation):
    """Row-wise softmax over the last axis.

    Usually combined with the cross-entropy loss which fuses the two gradients;
    the standalone backward is still provided for completeness (it is needed
    when computing output gradients for coverage on post-softmax outputs).
    """

    name = "softmax"
    grad_from_output = True  # backward reads only y

    def forward(self, x: np.ndarray) -> np.ndarray:
        shifted = x - np.max(x, axis=-1, keepdims=True)
        e = np.exp(shifted)
        return e / np.sum(e, axis=-1, keepdims=True)

    def forward_inplace(self, x: np.ndarray) -> np.ndarray:
        x -= np.max(x, axis=-1, keepdims=True)
        np.exp(x, out=x)
        x /= np.sum(x, axis=-1, keepdims=True)
        return x

    def backward(self, x: np.ndarray, y: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        # J^T g for each row, where J = diag(y) - y y^T
        dot = np.sum(grad_out * y, axis=-1, keepdims=True)
        return y * (grad_out - dot)


_REGISTRY: Dict[str, Type[Activation]] = {
    cls.name: cls
    for cls in (Identity, ReLU, LeakyReLU, Tanh, Sigmoid, Softmax)
}


def get_activation(name_or_obj: str | Activation | None) -> Activation:
    """Resolve an activation by name or pass an instance through.

    ``None`` resolves to :class:`Identity`.
    """
    if name_or_obj is None:
        return Identity()
    if isinstance(name_or_obj, Activation):
        return name_or_obj
    try:
        return _REGISTRY[name_or_obj]()
    except KeyError as exc:
        raise ValueError(
            f"unknown activation {name_or_obj!r}; choose from {sorted(_REGISTRY)}"
        ) from exc


def is_exact_zero_gradient(activation: Activation | str) -> bool:
    """Whether an activation has regions of *exactly* zero gradient.

    ReLU does; Tanh/Sigmoid only saturate asymptotically, which is why the
    coverage criterion uses an ε-threshold for them (Section IV-A).
    """
    act = get_activation(activation)
    return isinstance(act, (ReLU,))


__all__ = [
    "Activation",
    "Identity",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Softmax",
    "get_activation",
    "is_exact_zero_gradient",
]
