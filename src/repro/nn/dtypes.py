"""Compute-dtype policy for the execution engine (float64 default, opt-in
float32).

Everything in the library computes in float64 by default — the coverage
criterion thresholds gradients near zero, and the paper-facing equivalence
tests pin batched results to the per-sample reference at 1e-8, which float32
cannot honour.  But the engine's throughput workloads (forward sweeps, mask
matrices over large candidate pools) are memory-bandwidth bound, and float32
halves both the bytes moved and the BLAS cycles.  :class:`DtypePolicy` makes
that trade-off explicit and opt-in:

* ``DtypePolicy("float64")`` (default) — bitwise-identical to the historical
  behaviour; equivalence to the per-sample reference holds to ``1e-8``.
* ``DtypePolicy("float32")`` — inputs are cast to float32 and the engine runs
  the passes against a float32 *shadow copy* of the model (cast once per
  parameter digest, never mutating the caller's float64 model).

Documented float32 equivalence tolerances (validated by
``tests/test_dtypes.py`` on both Table-I architectures):

=================================  =========================================
Quantity                           Agreement vs the float64 reference
=================================  =========================================
forward logits                     ``atol = 1e-4`` (values O(1))
per-sample output gradients        ``atol = 1e-4``
mean/set validation coverage       ``atol = 2e-2`` (threshold flips possible
                                   for gradients within float32 rounding of
                                   the criterion's ε)
=================================  =========================================

Loss-based queries (``input_gradients``, ``loss_parameter_gradients``) keep
their float64 loss arithmetic regardless of policy: the losses are shared
with training, where float64 reductions are part of the contract.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.nn.model import Sequential

#: equivalence tolerance of the float64 batched path vs the per-sample
#: reference (what the engine test-suite pins)
FLOAT64_TOLERANCE = 1e-8

#: documented float32-vs-float64 tolerances (see the module docstring)
FLOAT32_FORWARD_ATOL = 1e-4
FLOAT32_GRADIENT_ATOL = 1e-4
FLOAT32_COVERAGE_ATOL = 2e-2

#: dtypes a policy may select
SUPPORTED_DTYPES = (np.dtype(np.float64), np.dtype(np.float32))

DtypeSpec = Union[str, np.dtype, type, "DtypePolicy", None]


class DtypePolicy:
    """The compute dtype of an engine, plus its casting helpers.

    Policies are small immutable value objects; engines hold one and thread
    it through every batch ingestion and backend dispatch.
    """

    __slots__ = ("compute_dtype",)

    def __init__(self, compute_dtype: Union[str, np.dtype, type] = np.float64) -> None:
        dtype = np.dtype(compute_dtype)
        if dtype not in SUPPORTED_DTYPES:
            raise ValueError(
                f"unsupported compute dtype {dtype}; choose from "
                f"{[str(d) for d in SUPPORTED_DTYPES]}"
            )
        object.__setattr__(self, "compute_dtype", dtype)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("DtypePolicy is immutable")

    @classmethod
    def resolve(cls, spec: DtypeSpec) -> "DtypePolicy":
        """Coerce ``None`` / a dtype-like / a policy into a policy."""
        if spec is None:
            return cls(np.float64)
        if isinstance(spec, DtypePolicy):
            return spec
        return cls(spec)

    @property
    def name(self) -> str:
        return self.compute_dtype.name

    @property
    def is_default(self) -> bool:
        """True for the float64 policy (no shadow model, 1e-8 equivalence)."""
        return self.compute_dtype == np.dtype(np.float64)

    @property
    def coverage_tolerance(self) -> float:
        """Documented coverage agreement vs the float64 per-sample reference."""
        return FLOAT64_TOLERANCE if self.is_default else FLOAT32_COVERAGE_ATOL

    def asarray(self, x: np.ndarray) -> np.ndarray:
        """Cast to the compute dtype, copying only when actually needed.

        The fast path — a C-contiguous ndarray already of the compute dtype —
        returns the input object itself, so repeated engine calls on the same
        pool never pay a per-call copy.
        """
        if (
            isinstance(x, np.ndarray)
            and x.dtype == self.compute_dtype
            and x.flags["C_CONTIGUOUS"]
        ):
            return x
        return np.ascontiguousarray(x, dtype=self.compute_dtype)

    def cast_model(self, model: Sequential) -> Sequential:
        """A structural copy of ``model`` with parameters in the compute dtype.

        For the default policy this is the model itself (no copy).  The cast
        copy shares nothing with the original, so running passes on it never
        perturbs the caller's float64 parameters.
        """
        if self.is_default:
            return model
        shadow = model.copy()
        for param in shadow.parameters():
            param.value = param.value.astype(self.compute_dtype)
            param.grad = np.zeros_like(param.value)
        return shadow

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DtypePolicy) and other.compute_dtype == self.compute_dtype

    def __hash__(self) -> int:
        return hash(("DtypePolicy", self.compute_dtype))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DtypePolicy({self.name!r})"


__all__ = [
    "DtypePolicy",
    "DtypeSpec",
    "SUPPORTED_DTYPES",
    "FLOAT64_TOLERANCE",
    "FLOAT32_FORWARD_ATOL",
    "FLOAT32_GRADIENT_ATOL",
    "FLOAT32_COVERAGE_ATOL",
]
