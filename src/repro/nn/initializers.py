"""Weight initialisers for the NumPy neural-network substrate.

The initialisers follow the standard fan-in/fan-out heuristics: He
initialisation for ReLU-family activations and Xavier/Glorot for saturating
activations (Tanh, Sigmoid), matching how the paper's Table I models would be
initialised in a mainstream framework.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.utils.rng import RngLike, as_generator

Initializer = Callable[[Tuple[int, ...], np.random.Generator], np.ndarray]


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute fan-in / fan-out for dense and convolutional weight shapes.

    Dense weights are ``(in, out)``; convolution kernels are
    ``(out_channels, in_channels, kh, kw)``.
    """
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:
        out_c, in_c, kh, kw = shape
        receptive = kh * kw
        return in_c * receptive, out_c * receptive
    size = int(np.prod(shape)) if shape else 1
    return size, size


def zeros(shape: Tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    """All-zero initialiser (standard for biases)."""
    return np.zeros(shape, dtype=np.float64)


def ones(shape: Tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    """All-one initialiser."""
    return np.ones(shape, dtype=np.float64)


def constant(value: float) -> Initializer:
    """Return an initialiser filling tensors with ``value``."""

    def _init(shape: Tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
        return np.full(shape, float(value), dtype=np.float64)

    return _init


def normal(std: float = 0.01) -> Initializer:
    """Gaussian initialiser with the given standard deviation."""
    if std <= 0:
        raise ValueError("std must be positive")

    def _init(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return rng.normal(0.0, std, size=shape)

    return _init


def uniform(limit: float = 0.05) -> Initializer:
    """Uniform initialiser on ``[-limit, limit]``."""
    if limit <= 0:
        raise ValueError("limit must be positive")

    def _init(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(-limit, limit, size=shape)

    return _init


def he_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He (Kaiming) normal initialisation, suited to ReLU networks."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Xavier/Glorot uniform initialisation, suited to Tanh/Sigmoid networks."""
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Xavier/Glorot normal initialisation."""
    fan_in, fan_out = _fan_in_out(shape)
    std = np.sqrt(2.0 / max(fan_in + fan_out, 1))
    return rng.normal(0.0, std, size=shape)


_NAMED: dict[str, Initializer] = {
    "zeros": zeros,
    "ones": ones,
    "he_normal": he_normal,
    "xavier_uniform": xavier_uniform,
    "xavier_normal": xavier_normal,
}


def get_initializer(name_or_fn: str | Initializer) -> Initializer:
    """Resolve an initialiser by name or pass a callable through.

    Recognised names: ``zeros``, ``ones``, ``he_normal``, ``xavier_uniform``,
    ``xavier_normal``.
    """
    if callable(name_or_fn):
        return name_or_fn
    try:
        return _NAMED[name_or_fn]
    except KeyError as exc:
        raise ValueError(
            f"unknown initializer {name_or_fn!r}; choose from {sorted(_NAMED)}"
        ) from exc


def default_for_activation(activation: str) -> Initializer:
    """Pick a sensible default weight initialiser for an activation name."""
    if activation in {"relu", "leaky_relu"}:
        return he_normal
    return xavier_uniform


def initialize(
    shape: Tuple[int, ...],
    initializer: str | Initializer,
    rng: RngLike = None,
) -> np.ndarray:
    """Create an initialised tensor of the requested shape."""
    fn = get_initializer(initializer)
    return np.asarray(fn(tuple(shape), as_generator(rng)), dtype=np.float64)


__all__ = [
    "Initializer",
    "zeros",
    "ones",
    "constant",
    "normal",
    "uniform",
    "he_normal",
    "xavier_uniform",
    "xavier_normal",
    "get_initializer",
    "default_for_activation",
    "initialize",
]
