"""Neural-network layers with explicit forward/backward passes.

The layers operate on batches.  Image tensors use the ``(N, C, H, W)`` layout;
dense layers use ``(N, features)``.  Each layer caches what it needs during
``forward`` and consumes the cache in ``backward``, which

* accumulates gradients into its :class:`~repro.nn.tensor.Parameter` objects
  (needed by training, the GDA attack and the parameter-coverage metric), and
* returns the gradient with respect to the layer input (needed to chain the
  backward pass and, at the network input, by the gradient-based test
  generation of Algorithm 2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: alias for the ``(input_gradient, per_sample_parameter_gradients)`` pair
#: returned by :meth:`Layer.backward_batch`
BatchBackwardResult = Tuple["np.ndarray", List["np.ndarray"]]

import numpy as np

from repro.nn.activations import Activation, get_activation
from repro.nn.initializers import (
    Initializer,
    default_for_activation,
    get_initializer,
    zeros,
)
from repro.nn.tensor import Parameter
from repro.nn.workspace import WorkspacePool
from repro.utils.rng import RngLike, as_generator


class Layer:
    """Base class for all layers."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.built = False

    # -- shape handling ------------------------------------------------------
    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        """Create parameters for the given per-sample input shape."""
        self.built = True

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Per-sample output shape for a per-sample input shape."""
        return input_shape

    # -- computation -----------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward_batch(
        self, grad_out: np.ndarray, need_input_grad: bool = True
    ) -> BatchBackwardResult:
        """Backward pass that keeps parameter gradients separate per sample.

        Returns ``(grad_input, per_sample_grads)`` where ``per_sample_grads``
        holds one array of shape ``(N, *param.shape)`` per entry of
        :meth:`parameters` (in the same order).  Unlike :meth:`backward`,
        nothing is accumulated into ``Parameter.grad`` — the per-sample
        gradients are returned to the caller, which is what the batched
        execution engine needs to build activation masks for a whole
        candidate pool in one pass.

        ``need_input_grad=False`` lets the bottom-most layer of a network
        skip the (potentially expensive) input-gradient computation and
        return ``None`` in its place.

        The default implementation is only valid for parameterless layers
        (their backward is already independent per sample); layers with
        parameters must override it.
        """
        if self.parameters():
            raise NotImplementedError(
                f"{self.__class__.__name__} has parameters but does not "
                "implement backward_batch"
            )
        return self.backward(grad_out), []

    # -- serialisation -----------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle without transient forward/backward state.

        Layer caches hold whole activation/patch-matrix batches; shipping
        them with every model publication (parallel backend) or deep copy
        (attacks) would multiply the payload for data that is recomputed on
        the next forward anyway.  Workspace leases are per-process and must
        never survive the trip.
        """
        state = self.__dict__.copy()
        if "_cache" in state:
            state["_cache"] = {}
        if "_cols_leased" in state:
            state["_cols_leased"] = False
        if "_mask" in state:
            state["_mask"] = None
        return state

    # -- parameters --------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """Learnable parameters of this layer (possibly empty)."""
        return []

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.__class__.__name__}(name={self.name!r})"


class Dense(Layer):
    """Fully-connected layer ``y = act(x W + b)``.

    Parameters
    ----------
    units: number of output features.
    activation: activation name or instance; ``None`` for linear.
    use_bias: include an additive bias vector.
    weight_initializer: name or callable; defaults to a sensible choice for
        the activation (He for ReLU, Xavier otherwise).
    """

    def __init__(
        self,
        units: int,
        activation: str | Activation | None = None,
        use_bias: bool = True,
        weight_initializer: str | Initializer | None = None,
        name: str = "dense",
    ) -> None:
        super().__init__(name)
        if units <= 0:
            raise ValueError("units must be positive")
        self.units = int(units)
        self.activation = get_activation(activation)
        self.use_bias = bool(use_bias)
        self._weight_initializer = weight_initializer
        self.weight: Optional[Parameter] = None
        self.bias: Optional[Parameter] = None
        self._cache: Dict[str, np.ndarray] = {}

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) != 1:
            raise ValueError(
                f"Dense layer {self.name!r} expects flat inputs, got per-sample "
                f"shape {input_shape}; add a Flatten layer first"
            )
        in_features = input_shape[0]
        init = self._weight_initializer
        if init is None:
            init = default_for_activation(self.activation.name)
        init_fn = get_initializer(init)
        self.weight = Parameter(
            init_fn((in_features, self.units), rng), name=f"{self.name}/weight"
        )
        if self.use_bias:
            self.bias = Parameter(zeros((self.units,)), name=f"{self.name}/bias")
        self.built = True

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (self.units,)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if self.weight is None:
            raise RuntimeError(f"layer {self.name!r} has not been built")
        z = x @ self.weight.value
        if self.bias is not None:
            z += self.bias.value  # z is freshly allocated by the matmul
        if self.activation.grad_from_output:
            # fused dense+bias+activation: the activation overwrites the
            # fresh matmul buffer, and backward reads y in place of z
            y = z = self.activation.forward_inplace(z)
        else:
            y = self.activation.forward(z)
        self._cache = {"x": x, "z": z, "y": y}
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if not self._cache:
            raise RuntimeError(f"backward called before forward on {self.name!r}")
        x, z, y = self._cache["x"], self._cache["z"], self._cache["y"]
        grad_z = self.activation.backward(z, y, grad_out)
        assert self.weight is not None
        self.weight.grad += x.T @ grad_z
        if self.bias is not None:
            self.bias.grad += grad_z.sum(axis=0)
        return grad_z @ self.weight.value.T

    def backward_batch(
        self, grad_out: np.ndarray, need_input_grad: bool = True
    ) -> BatchBackwardResult:
        if not self._cache:
            raise RuntimeError(f"backward called before forward on {self.name!r}")
        x, z, y = self._cache["x"], self._cache["z"], self._cache["y"]
        grad_z = self.activation.backward(z, y, grad_out)
        assert self.weight is not None
        # per-sample outer products x_n ⊗ grad_z_n, shape (N, in, units)
        grads = [x[:, :, None] * grad_z[:, None, :]]
        if self.bias is not None:
            grads.append(grad_z)
        grad_in = grad_z @ self.weight.value.T if need_input_grad else None
        return grad_in, grads

    def parameters(self) -> List[Parameter]:
        params = [self.weight] if self.weight is not None else []
        if self.bias is not None:
            params.append(self.bias)
        return params

    # -- model-axis (stacked-weight) paths ----------------------------------
    def stacked_forward(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        cache: Dict[str, np.ndarray],
        pool: Optional[WorkspacePool] = None,
    ) -> np.ndarray:
        """Forward over ``M`` same-architecture weight copies in one dispatch.

        ``weight`` has shape ``(M, in, units)`` (this layer's weights stacked
        along a leading model axis); ``x`` is either a shared ``(N, in)``
        batch (broadcast across models) or an already-stacked
        ``(M, N, in)`` tensor.  Returns ``(M, N, units)``.  The batched
        matmul runs the *same* per-model ``(N, in) @ (in, units)`` GEMMs as
        :meth:`forward`, so per-model slices are bit-identical to running
        each copy separately.  State lives in the caller-owned ``cache``
        (this method never touches ``self._cache``), so one template layer
        can serve many stacks concurrently.
        """
        z = np.matmul(x, weight)  # broadcasts shared (N, in) across models
        if bias is not None:
            z += bias[:, None, :]
        if self.activation.grad_from_output:
            y = z = self.activation.forward_inplace(z)
        else:
            y = self.activation.forward(z)
        cache.update(x=x, z=z, y=y)
        return y

    def stacked_backward_batch(
        self,
        grad_out: np.ndarray,
        weight: np.ndarray,
        cache: Dict[str, np.ndarray],
        need_input_grad: bool = True,
        pool: Optional[WorkspacePool] = None,
    ) -> BatchBackwardResult:
        """Per-sample parameter gradients for every model of a stack.

        The stacked counterpart of :meth:`backward_batch`: gradients keep
        both the model and the sample axis, so each parameter gradient has
        shape ``(M, N, *param.shape)`` and the input gradient (when
        requested) ``(M, N, in)``.
        """
        x, z, y = cache["x"], cache["z"], cache["y"]
        grad_z = self.activation.backward(z, y, grad_out)  # (M, N, units)
        x_stacked = x if x.ndim == 3 else x[None]
        # per-sample outer products, broadcast over the model axis
        grads = [x_stacked[:, :, :, None] * grad_z[:, :, None, :]]
        if self.bias is not None:
            grads.append(grad_z)
        grad_in = (
            np.matmul(grad_z, weight.transpose(0, 2, 1)) if need_input_grad else None
        )
        return grad_in, grads


# ---------------------------------------------------------------------------
# im2col helpers for convolution and pooling
# ---------------------------------------------------------------------------

def _conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution produces non-positive output size for input {size}, "
            f"kernel {kernel}, stride {stride}, padding {padding}"
        )
    return out


#: memoized patch-index arrays; keyed by the full geometry, so the handful of
#: distinct layer shapes in a model each build their indices exactly once
_INDEX_CACHE: Dict[
    Tuple[int, int, int, int, int, int, int],
    Tuple[np.ndarray, np.ndarray, np.ndarray, int, int],
] = {}


def _im2col_indices(
    c: int, h: int, w: int, kh: int, kw: int, stride: int, padding: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Index arrays mapping an image to its patch matrix (memoized)."""
    key = (c, h, w, kh, kw, stride, padding)
    cached = _INDEX_CACHE.get(key)
    if cached is not None:
        return cached

    out_h = _conv_output_size(h, kh, stride, padding)
    out_w = _conv_output_size(w, kw, stride, padding)

    i0 = np.repeat(np.arange(kh), kw)
    i0 = np.tile(i0, c)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kw), kh * c)
    j1 = stride * np.tile(np.arange(out_w), out_h)

    i = i0.reshape(-1, 1) + i1.reshape(1, -1)  # (c*kh*kw, out_h*out_w)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(c), kh * kw).reshape(-1, 1)
    if len(_INDEX_CACHE) >= 256:  # bound the cache for long-lived processes
        _INDEX_CACHE.clear()
    _INDEX_CACHE[key] = (k, i, j, out_h, out_w)
    return k, i, j, out_h, out_w


def im2col(
    x: np.ndarray,
    kh: int,
    kw: int,
    stride: int,
    padding: int,
    pool: Optional[WorkspacePool] = None,
) -> Tuple[np.ndarray, int, int]:
    """Rearrange image batches into patch matrices.

    Parameters
    ----------
    x: input of shape ``(N, C, H, W)``.
    pool: optional :class:`~repro.nn.workspace.WorkspacePool`; when given, the
        patch matrix is written into a buffer *acquired* from the pool
        instead of a fresh allocation.  The caller owns the buffer and must
        ``release`` it after its last read — see the pool's ownership
        contract.

    Returns
    -------
    cols: array of shape ``(N, C*kh*kw, out_h*out_w)``.
    out_h, out_w: spatial output sizes.
    """
    n, c, h, w = x.shape
    if padding > 0:
        x = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
        )
    out_h = _conv_output_size(h, kh, stride, padding)
    out_w = _conv_output_size(w, kw, stride, padding)
    # a strided window view plus one contiguous copy is several times faster
    # than an advanced-indexing gather, and yields a C-contiguous (N, K, P)
    # patch matrix so the matmuls that consume it hit the fast BLAS path
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride]  # (N, C, out_h, out_w, kh, kw)
    transposed = windows.transpose(0, 1, 4, 5, 2, 3)
    if pool is None:
        cols = np.ascontiguousarray(transposed)
    else:
        cols = pool.acquire((n, c, kh, kw, out_h, out_w), x.dtype)
        np.copyto(cols, transposed)
    return cols.reshape(n, c * kh * kw, out_h * out_w), out_h, out_w


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Inverse of :func:`im2col` with accumulation of overlapping patches."""
    n, c, h, w = x_shape
    if padding == 0 and stride == kh == kw:
        # non-overlapping tiling (the pooling layout): every input pixel is
        # touched by at most one patch, so the scatter-add degenerates into a
        # reshape/transpose assignment — much faster than np.add.at
        out_h = _conv_output_size(h, kh, stride, 0)
        out_w = _conv_output_size(w, kw, stride, 0)
        x = np.zeros((n, c, h, w), dtype=cols.dtype)
        g = cols.reshape(n, c, kh, kw, out_h, out_w)
        x[:, :, : out_h * kh, : out_w * kw] = g.transpose(0, 1, 4, 2, 5, 3).reshape(
            n, c, out_h * kh, out_w * kw
        )
        return x
    h_pad, w_pad = h + 2 * padding, w + 2 * padding
    x_pad = np.zeros((n, c, h_pad, w_pad), dtype=cols.dtype)
    k, i, j, _, _ = _im2col_indices(c, h, w, kh, kw, stride, padding)
    np.add.at(x_pad, (slice(None), k, i, j), cols)
    if padding == 0:
        return x_pad
    return x_pad[:, :, padding:-padding, padding:-padding]


class Conv2D(Layer):
    """2-D convolution with optional activation.

    Weights have shape ``(filters, in_channels, kh, kw)``; inputs and outputs
    use the ``(N, C, H, W)`` layout.  Implemented with im2col so the forward
    and backward passes are large matrix multiplications.
    """

    def __init__(
        self,
        filters: int,
        kernel_size: int | Tuple[int, int] = 3,
        stride: int = 1,
        padding: str | int = "same",
        activation: str | Activation | None = None,
        use_bias: bool = True,
        weight_initializer: str | Initializer | None = None,
        name: str = "conv",
    ) -> None:
        super().__init__(name)
        if filters <= 0:
            raise ValueError("filters must be positive")
        self.filters = int(filters)
        if isinstance(kernel_size, int):
            kernel_size = (kernel_size, kernel_size)
        self.kernel_size = (int(kernel_size[0]), int(kernel_size[1]))
        if stride <= 0:
            raise ValueError("stride must be positive")
        self.stride = int(stride)
        self._padding_spec = padding
        self.activation = get_activation(activation)
        self.use_bias = bool(use_bias)
        self._weight_initializer = weight_initializer
        self.weight: Optional[Parameter] = None
        self.bias: Optional[Parameter] = None
        self._input_shape: Optional[Tuple[int, ...]] = None
        self._cache: Dict[str, np.ndarray] = {}
        # patch-matrix workspace shared across the whole model (wired by
        # Sequential.build); None = plain allocation for standalone layers
        self._workspace: Optional[WorkspacePool] = None
        self._cols_leased = False

    # -- padding resolution ----------------------------------------------------
    def _padding(self) -> int:
        if isinstance(self._padding_spec, int):
            if self._padding_spec < 0:
                raise ValueError("padding must be non-negative")
            return self._padding_spec
        if self._padding_spec == "same":
            if self.stride != 1:
                raise ValueError("'same' padding requires stride 1")
            kh, _ = self.kernel_size
            return (kh - 1) // 2
        if self._padding_spec == "valid":
            return 0
        raise ValueError(f"unknown padding spec {self._padding_spec!r}")

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) != 3:
            raise ValueError(
                f"Conv2D layer {self.name!r} expects (C, H, W) inputs, got {input_shape}"
            )
        in_c = input_shape[0]
        kh, kw = self.kernel_size
        init = self._weight_initializer
        if init is None:
            init = default_for_activation(self.activation.name)
        init_fn = get_initializer(init)
        self.weight = Parameter(
            init_fn((self.filters, in_c, kh, kw), rng), name=f"{self.name}/weight"
        )
        if self.use_bias:
            self.bias = Parameter(zeros((self.filters,)), name=f"{self.name}/bias")
        self._input_shape = tuple(input_shape)
        self.built = True

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        _, h, w = input_shape
        kh, kw = self.kernel_size
        pad = self._padding()
        out_h = _conv_output_size(h, kh, self.stride, pad)
        out_w = _conv_output_size(w, kw, self.stride, pad)
        return (self.filters, out_h, out_w)

    def _release_cols(self) -> None:
        """Hand the cached patch matrix back to the workspace (idempotent).

        Called only by the *next* forward, immediately before it acquires a
        replacement.  Releasing any earlier — e.g. after the backward pass's
        last read — would let a same-geometry acquire inside backward itself
        (the input-gradient gather of an equal-channel conv) pop and
        overwrite the buffer, breaking the contract that a repeated backward
        without an interleaved forward still reads valid data.
        """
        if self._cols_leased:
            self._cols_leased = False
            if self._workspace is not None:
                self._workspace.release(self._cache.get("cols"))

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if self.weight is None:
            raise RuntimeError(f"layer {self.name!r} has not been built")
        n, c, h, w = x.shape
        kh, kw = self.kernel_size
        pad = self._padding()
        self._release_cols()
        cols, out_h, out_w = im2col(x, kh, kw, self.stride, pad, pool=self._workspace)
        self._cols_leased = self._workspace is not None
        w_mat = self.weight.value.reshape(self.filters, -1)  # (F, C*kh*kw)
        z = np.matmul(w_mat, cols)  # (F, K) @ (N, K, P) -> (N, F, P) via BLAS
        if self.bias is not None:
            z += self.bias.value[None, :, None]  # z is fresh from the matmul
        z = z.reshape(n, self.filters, out_h, out_w)
        if self.activation.grad_from_output:
            # fused conv+bias+activation: activate the fresh matmul buffer in
            # place; backward reads y in place of z
            y = z = self.activation.forward_inplace(z)
        else:
            y = self.activation.forward(z)
        self._cache = {"x_shape": np.array(x.shape), "cols": cols, "z": z, "y": y}
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if not self._cache:
            raise RuntimeError(f"backward called before forward on {self.name!r}")
        cols = self._cache["cols"]
        z, y = self._cache["z"], self._cache["y"]
        x_shape = tuple(int(v) for v in self._cache["x_shape"])
        n = x_shape[0]
        kh, kw = self.kernel_size
        pad = self._padding()

        grad_z = self.activation.backward(z, y, grad_out)
        grad_z_mat = grad_z.reshape(n, self.filters, -1)  # (N, F, P)

        assert self.weight is not None
        w_mat = self.weight.value.reshape(self.filters, -1)
        grad_w = np.einsum("nfp,nkp->fk", grad_z_mat, cols)
        self.weight.grad += grad_w.reshape(self.weight.value.shape)
        if self.bias is not None:
            self.bias.grad += grad_z_mat.sum(axis=(0, 2))

        grad_cols = np.einsum("fk,nfp->nkp", w_mat, grad_z_mat)
        return col2im(grad_cols, x_shape, kh, kw, self.stride, pad)

    def backward_batch(
        self, grad_out: np.ndarray, need_input_grad: bool = True
    ) -> BatchBackwardResult:
        if not self._cache:
            raise RuntimeError(f"backward called before forward on {self.name!r}")
        cols = self._cache["cols"]
        z, y = self._cache["z"], self._cache["y"]
        x_shape = tuple(int(v) for v in self._cache["x_shape"])
        n = x_shape[0]
        kh, kw = self.kernel_size
        pad = self._padding()

        grad_z = self.activation.backward(z, y, grad_out)
        grad_z_mat = grad_z.reshape(n, self.filters, -1)  # (N, F, P)

        assert self.weight is not None
        w_mat = self.weight.value.reshape(self.filters, -1)
        # contract only over patch positions, keeping the sample axis; matmul
        # dispatches to batched BLAS where an equivalent einsum would not
        grad_w = np.matmul(grad_z_mat, cols.transpose(0, 2, 1))  # (N, F, K)
        grads = [grad_w.reshape(n, *self.weight.value.shape)]
        if self.bias is not None:
            grads.append(grad_z_mat.sum(axis=2))

        if not need_input_grad:
            return None, grads
        _, _, h, w = x_shape
        flip_pad = kh - 1 - pad
        if self.stride == 1 and kh == kw and flip_pad >= 0:
            # input gradient as a *full correlation* of grad_z with the
            # spatially flipped kernels: an im2col gather plus one batched
            # matmul, avoiding col2im's scatter-add entirely.  The cached
            # forward patch matrix is still leased here, so this acquire can
            # never alias it even when the geometries coincide
            grad_z_img = grad_z_mat.reshape(n, self.filters, *z.shape[2:])
            gcols, _, _ = im2col(grad_z_img, kh, kw, 1, flip_pad, pool=self._workspace)
            w_flip = self.weight.value[:, :, ::-1, ::-1]  # (F, C, kh, kw)
            w_flip_mat = w_flip.transpose(1, 0, 2, 3).reshape(x_shape[1], -1)
            grad_x = np.matmul(w_flip_mat, gcols)  # (C, F*kh*kw) @ (N, ., P)
            if self._workspace is not None:
                self._workspace.release(gcols)
            return grad_x.reshape(n, x_shape[1], h, w), grads
        grad_cols = np.matmul(w_mat.T, grad_z_mat)  # (N, K, P)
        return col2im(grad_cols, x_shape, kh, kw, self.stride, pad), grads

    def parameters(self) -> List[Parameter]:
        params = [self.weight] if self.weight is not None else []
        if self.bias is not None:
            params.append(self.bias)
        return params

    # -- model-axis (stacked-weight) paths ----------------------------------
    def stacked_forward(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        cache: Dict[str, np.ndarray],
        pool: Optional[WorkspacePool] = None,
    ) -> np.ndarray:
        """Forward over ``M`` stacked weight copies in one grouped dispatch.

        ``weight`` has shape ``(M, F, C, kh, kw)``; ``x`` is a shared
        ``(N, C, H, W)`` batch (the patch matrix is gathered *once* and
        shared by every model) or an already-stacked ``(M, N, C, H, W)``
        tensor (folded to ``M·N`` images for one im2col gather).  Returns
        ``(M, N, F, out_h, out_w)``.  The broadcastable matmul decomposes
        into the same per-model ``(F, K) @ (K, P)`` GEMMs as :meth:`forward`,
        keeping per-model slices bit-identical.  Patch matrices go through
        ``pool``; the caller releases ``cache["cols"]`` after its last read
        (:meth:`stacked_backward_batch`'s weight gradient, or immediately
        for forward-only passes).
        """
        m, f = weight.shape[0], weight.shape[1]
        kh, kw = self.kernel_size
        pad = self._padding()
        if x.ndim == 4:  # shared input: one patch matrix for all models
            n = x.shape[0]
            cols, out_h, out_w = im2col(x, kh, kw, self.stride, pad, pool=pool)
            cols_b = cols[None]  # (1, N, K, P)
        else:  # stacked input: fold the model axis into the image axis
            n = x.shape[1]
            folded = x.reshape(m * n, *x.shape[2:])
            cols, out_h, out_w = im2col(folded, kh, kw, self.stride, pad, pool=pool)
            cols_b = cols.reshape(m, n, cols.shape[1], cols.shape[2])
        w_mat = weight.reshape(m, f, -1)
        z = np.matmul(w_mat[:, None], cols_b)  # (M, N, F, P)
        if bias is not None:
            z += bias[:, None, :, None]
        z = z.reshape(m, n, f, out_h, out_w)
        if self.activation.grad_from_output:
            y = z = self.activation.forward_inplace(z)
        else:
            y = self.activation.forward(z)
        cache.update(
            x_shape=np.array((n, *x.shape[-3:])), cols=cols, cols_b=cols_b, z=z, y=y
        )
        return y

    def stacked_backward_batch(
        self,
        grad_out: np.ndarray,
        weight: np.ndarray,
        cache: Dict[str, np.ndarray],
        need_input_grad: bool = True,
        pool: Optional[WorkspacePool] = None,
    ) -> BatchBackwardResult:
        """Per-sample parameter gradients for every model of a stack.

        Mirrors :meth:`backward_batch` — including its flip-kernel
        full-correlation fast path for the input gradient — with a leading
        model axis on every gradient.
        """
        cols_b = cache["cols_b"]  # (1, N, P, K)-transposable patch matrix
        z, y = cache["z"], cache["y"]
        x_shape = tuple(int(v) for v in cache["x_shape"])
        n = x_shape[0]
        m, f = weight.shape[0], weight.shape[1]
        kh, kw = self.kernel_size
        pad = self._padding()

        grad_z = self.activation.backward(z, y, grad_out)  # (M, N, F, oh, ow)
        grad_z_mat = grad_z.reshape(m, n, f, -1)  # (M, N, F, P)

        w_mat = weight.reshape(m, f, -1)
        cols_t = np.swapaxes(cols_b, -1, -2)  # (., N, P, K)
        grad_w = np.matmul(grad_z_mat, cols_t)  # (M, N, F, K)
        grads = [grad_w.reshape(m, n, *weight.shape[1:])]
        if self.bias is not None:
            grads.append(grad_z_mat.sum(axis=3))

        if not need_input_grad:
            return None, grads
        _, c, h, w = x_shape
        flip_pad = kh - 1 - pad
        if self.stride == 1 and kh == kw and flip_pad >= 0:
            # same full-correlation fast path as the single-model backward,
            # with the model axis folded into the image axis for the gather
            grad_z_img = grad_z_mat.reshape(m * n, f, *z.shape[3:])
            gcols, _, _ = im2col(grad_z_img, kh, kw, 1, flip_pad, pool=pool)
            gcols_b = gcols.reshape(m, n, gcols.shape[1], gcols.shape[2])
            w_flip = weight[:, :, :, ::-1, ::-1]  # (M, F, C, kh, kw)
            w_flip_mat = w_flip.transpose(0, 2, 1, 3, 4).reshape(m, c, -1)
            grad_x = np.matmul(w_flip_mat[:, None], gcols_b)  # (M, N, C, P)
            if pool is not None:
                pool.release(gcols)
            return grad_x.reshape(m, n, c, h, w), grads
        grad_cols = np.matmul(w_mat.transpose(0, 2, 1)[:, None], grad_z_mat)
        folded = col2im(
            grad_cols.reshape(m * n, *grad_cols.shape[2:]),
            (m * n, c, h, w),
            kh,
            kw,
            self.stride,
            pad,
        )
        return folded.reshape(m, n, c, h, w), grads


class MaxPool2D(Layer):
    """Max pooling over non-overlapping (or strided) windows."""

    def __init__(
        self,
        pool_size: int | Tuple[int, int] = 2,
        stride: Optional[int] = None,
        name: str = "maxpool",
    ) -> None:
        super().__init__(name)
        if isinstance(pool_size, int):
            pool_size = (pool_size, pool_size)
        self.pool_size = (int(pool_size[0]), int(pool_size[1]))
        self.stride = int(stride) if stride is not None else self.pool_size[0]
        if self.stride <= 0:
            raise ValueError("stride must be positive")
        self._cache: Dict[str, np.ndarray] = {}
        self._workspace: Optional[WorkspacePool] = None

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = input_shape
        ph, pw = self.pool_size
        out_h = _conv_output_size(h, ph, self.stride, 0)
        out_w = _conv_output_size(w, pw, self.stride, 0)
        return (c, out_h, out_w)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        ph, pw = self.pool_size
        # treat each channel as a separate image for im2col
        reshaped = x.reshape(n * c, 1, h, w)
        cols, out_h, out_w = im2col(reshaped, ph, pw, self.stride, 0, pool=self._workspace)
        # cols: (N*C, ph*pw, P)
        argmax = np.argmax(cols, axis=1)
        out = np.take_along_axis(cols, argmax[:, None, :], axis=1).squeeze(1)
        if self._workspace is not None:
            self._workspace.release(cols)  # consumed: only argmax survives
        out = out.reshape(n, c, out_h, out_w)
        self._cache = {
            "argmax": argmax,
            "cols_shape": np.array(cols.shape),
            "x_shape": np.array(x.shape),
        }
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if not self._cache:
            raise RuntimeError(f"backward called before forward on {self.name!r}")
        argmax = self._cache["argmax"]
        cols_shape = tuple(int(v) for v in self._cache["cols_shape"])
        x_shape = tuple(int(v) for v in self._cache["x_shape"])
        n, c, h, w = x_shape
        ph, pw = self.pool_size

        # the scatter buffer follows the gradient dtype: hardcoding float64
        # here silently upcast every float32 backward through a pooling layer
        grad_cols = np.zeros(cols_shape, dtype=grad_out.dtype)
        grad_flat = grad_out.reshape(n * c, -1)
        np.put_along_axis(grad_cols, argmax[:, None, :], grad_flat[:, None, :], axis=1)
        grad_x = col2im(grad_cols, (n * c, 1, h, w), ph, pw, self.stride, 0)
        return grad_x.reshape(n, c, h, w)


class AvgPool2D(Layer):
    """Average pooling over strided windows."""

    def __init__(
        self,
        pool_size: int | Tuple[int, int] = 2,
        stride: Optional[int] = None,
        name: str = "avgpool",
    ) -> None:
        super().__init__(name)
        if isinstance(pool_size, int):
            pool_size = (pool_size, pool_size)
        self.pool_size = (int(pool_size[0]), int(pool_size[1]))
        self.stride = int(stride) if stride is not None else self.pool_size[0]
        if self.stride <= 0:
            raise ValueError("stride must be positive")
        self._cache: Dict[str, np.ndarray] = {}
        self._workspace: Optional[WorkspacePool] = None

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = input_shape
        ph, pw = self.pool_size
        out_h = _conv_output_size(h, ph, self.stride, 0)
        out_w = _conv_output_size(w, pw, self.stride, 0)
        return (c, out_h, out_w)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        ph, pw = self.pool_size
        reshaped = x.reshape(n * c, 1, h, w)
        cols, out_h, out_w = im2col(reshaped, ph, pw, self.stride, 0, pool=self._workspace)
        out = cols.mean(axis=1).reshape(n, c, out_h, out_w)
        if self._workspace is not None:
            self._workspace.release(cols)  # consumed by the mean
        self._cache = {"cols_shape": np.array(cols.shape), "x_shape": np.array(x.shape)}
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if not self._cache:
            raise RuntimeError(f"backward called before forward on {self.name!r}")
        cols_shape = tuple(int(v) for v in self._cache["cols_shape"])
        x_shape = tuple(int(v) for v in self._cache["x_shape"])
        n, c, h, w = x_shape
        ph, pw = self.pool_size
        window = ph * pw
        grad_flat = grad_out.reshape(n * c, -1) / window
        grad_cols = np.broadcast_to(grad_flat[:, None, :], cols_shape).copy()
        grad_x = col2im(grad_cols, (n * c, 1, h, w), ph, pw, self.stride, 0)
        return grad_x.reshape(n, c, h, w)


class Flatten(Layer):
    """Flatten per-sample tensors to vectors."""

    def __init__(self, name: str = "flatten") -> None:
        super().__init__(name)
        self._input_shape: Optional[Tuple[int, ...]] = None

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (int(np.prod(input_shape)),)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError(f"backward called before forward on {self.name!r}")
        return grad_out.reshape(self._input_shape)


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    def __init__(self, rate: float = 0.5, seed: int = 0, name: str = "dropout") -> None:
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = float(rate)
        self._rng = as_generator(seed)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


class ActivationLayer(Layer):
    """Standalone activation layer (for architectures that separate them)."""

    def __init__(self, activation: str | Activation, name: str = "activation") -> None:
        super().__init__(name)
        self.activation = get_activation(activation)
        self._cache: Dict[str, np.ndarray] = {}

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        y = self.activation.forward(x)
        self._cache = {"x": x, "y": y}
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if not self._cache:
            raise RuntimeError(f"backward called before forward on {self.name!r}")
        return self.activation.backward(self._cache["x"], self._cache["y"], grad_out)


__all__ = [
    "BatchBackwardResult",
    "Layer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "Flatten",
    "Dropout",
    "ActivationLayer",
    "im2col",
    "col2im",
]
