"""Loss functions with fused gradients.

Losses return ``(value, grad_wrt_predictions)`` so the model's backward pass
can start directly from the loss gradient.  The softmax cross-entropy fuses the
softmax and the log-likelihood for numerical stability, which matches how the
paper's models (softmax output, Table I) would be trained.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

import numpy as np


class Loss:
    """Base class: maps ``(predictions, targets)`` to a scalar and a gradient."""

    name = "loss"

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        value, _ = self.value_and_grad(predictions, targets)
        return value

    def value_and_grad(
        self, predictions: np.ndarray, targets: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        raise NotImplementedError


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Convert integer labels to one-hot rows."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels must be in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def _as_one_hot(targets: np.ndarray, num_classes: int) -> np.ndarray:
    targets = np.asarray(targets)
    if targets.ndim == 1:
        return one_hot(targets.astype(int), num_classes)
    if targets.shape[-1] != num_classes:
        raise ValueError(
            f"target one-hot width {targets.shape[-1]} does not match "
            f"{num_classes} classes"
        )
    return targets.astype(np.float64)


class SoftmaxCrossEntropy(Loss):
    """Cross-entropy on logits with a fused softmax.

    ``predictions`` are raw logits of shape ``(N, K)``; ``targets`` are either
    integer class labels of shape ``(N,)`` or one-hot rows of shape ``(N, K)``.
    The returned gradient is with respect to the logits.
    """

    name = "softmax_cross_entropy"

    def value_and_grad(
        self, predictions: np.ndarray, targets: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        logits = np.asarray(predictions, dtype=np.float64)
        if logits.ndim != 2:
            raise ValueError(f"logits must be 2-D (N, K), got shape {logits.shape}")
        n, k = logits.shape
        y = _as_one_hot(targets, k)
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        log_probs = shifted - log_z
        loss = float(-(y * log_probs).sum() / n)
        probs = np.exp(log_probs)
        grad = (probs - y) / n
        return loss, grad


class MeanSquaredError(Loss):
    """Mean squared error, averaged over batch and output dimensions."""

    name = "mse"

    def value_and_grad(
        self, predictions: np.ndarray, targets: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        p = np.asarray(predictions, dtype=np.float64)
        t = np.asarray(targets, dtype=np.float64)
        if p.shape != t.shape:
            raise ValueError(f"shape mismatch: predictions {p.shape} vs targets {t.shape}")
        diff = p - t
        loss = float(np.mean(diff * diff))
        grad = 2.0 * diff / diff.size
        return loss, grad


class NegativeLogit(Loss):
    """Loss used by Algorithm 2's per-class synthesis: minimise ``-logit[target]``.

    Driving this loss down with gradient descent on the *input* pushes the
    network towards classifying the synthetic input as the target class, which
    is exactly the behaviour Eq. (8) needs.  Cross-entropy works too; the raw
    negative logit gives cleaner gradients when the softmax saturates.
    """

    name = "negative_logit"

    def value_and_grad(
        self, predictions: np.ndarray, targets: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        logits = np.asarray(predictions, dtype=np.float64)
        n, k = logits.shape
        y = _as_one_hot(targets, k)
        loss = float(-(y * logits).sum() / n)
        grad = -y / n
        return loss, grad


_REGISTRY: Dict[str, Type[Loss]] = {
    SoftmaxCrossEntropy.name: SoftmaxCrossEntropy,
    MeanSquaredError.name: MeanSquaredError,
    "cross_entropy": SoftmaxCrossEntropy,
    NegativeLogit.name: NegativeLogit,
}


def get_loss(name_or_obj: str | Loss) -> Loss:
    """Resolve a loss by name or pass an instance through."""
    if isinstance(name_or_obj, Loss):
        return name_or_obj
    try:
        return _REGISTRY[name_or_obj]()
    except KeyError as exc:
        raise ValueError(
            f"unknown loss {name_or_obj!r}; choose from {sorted(_REGISTRY)}"
        ) from exc


__all__ = [
    "Loss",
    "SoftmaxCrossEntropy",
    "MeanSquaredError",
    "NegativeLogit",
    "one_hot",
    "get_loss",
]
