"""Classification metrics used by the trainer and the experiment harnesses."""

from __future__ import annotations

from typing import Dict

import numpy as np


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct predictions.

    ``predictions`` may be class indices (1-D) or logits/probabilities (2-D).
    """
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.ndim == 2:
        predictions = np.argmax(predictions, axis=1)
    if labels.ndim == 2:
        labels = np.argmax(labels, axis=1)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"shape mismatch: predictions {predictions.shape} vs labels {labels.shape}"
        )
    if predictions.size == 0:
        raise ValueError("cannot compute accuracy of an empty batch")
    return float(np.mean(predictions == labels))


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Fraction of samples whose true label is within the top-``k`` logits."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError("top_k_accuracy expects 2-D logits")
    if k <= 0 or k > logits.shape[1]:
        raise ValueError(f"k must be in [1, {logits.shape[1]}]")
    top = np.argsort(-logits, axis=1)[:, :k]
    return float(np.mean([labels[i] in top[i] for i in range(len(labels))]))


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """``num_classes x num_classes`` matrix: rows true class, columns predicted."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.ndim == 2:
        predictions = np.argmax(predictions, axis=1)
    mat = np.zeros((num_classes, num_classes), dtype=np.int64)
    for t, p in zip(labels, predictions):
        mat[int(t), int(p)] += 1
    return mat


def per_class_accuracy(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> Dict[int, float]:
    """Per-class recall; classes absent from ``labels`` map to ``nan``."""
    mat = confusion_matrix(predictions, labels, num_classes)
    out: Dict[int, float] = {}
    for c in range(num_classes):
        total = mat[c].sum()
        out[c] = float(mat[c, c] / total) if total else float("nan")
    return out


__all__ = ["accuracy", "top_k_accuracy", "confusion_matrix", "per_class_accuracy"]
