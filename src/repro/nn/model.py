"""Sequential model: composition of layers plus the gradient queries the
paper's method needs.

Beyond the usual ``forward``/``predict``/``fit``-style API, the model exposes
three gradient queries used throughout the library:

* :meth:`Sequential.loss_gradients` — parameter gradients of a training loss
  (used by the trainer and by the gradient-descent attack).
* :meth:`Sequential.output_gradients` — parameter gradients of a scalarised
  network output ``F(x)`` for a single sample (the quantity ``∇θ F(x)`` that
  defines *activated parameters* in Section IV-A).
* :meth:`Sequential.input_gradient` — gradient of a loss with respect to the
  *input* (used by the gradient-based test generation of Algorithm 2 and by
  adversarial-style updates).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.faults import inject as _inject
from repro.nn.layers import Layer
from repro.nn.losses import Loss, SoftmaxCrossEntropy, get_loss
from repro.nn.tensor import Parameter, ParameterView
from repro.nn.workspace import WorkspacePool
from repro.utils.rng import RngLike, as_generator

#: supported scalarisations of the vector-valued network output F(x)
SCALARIZATIONS = ("sum", "max", "predicted")


class Sequential:
    """A feed-forward stack of layers.

    Parameters
    ----------
    layers:
        Layers in execution order.  They may be unbuilt; :meth:`build` creates
        their parameters for a concrete input shape.
    name:
        Model identifier used in serialisation and reporting.
    """

    def __init__(self, layers: Optional[Sequence[Layer]] = None, name: str = "model") -> None:
        self.layers: List[Layer] = list(layers) if layers else []
        self.name = name
        self.input_shape: Optional[Tuple[int, ...]] = None
        self._built = False
        # one free-list of patch-matrix buffers shared by every conv/pool
        # layer of this model (wired into the layers by build), so
        # consecutive layers recycle the same hot memory chunk after chunk
        self._workspace = WorkspacePool()

    # -- construction ----------------------------------------------------------
    def add(self, layer: Layer) -> "Sequential":
        """Append a layer (before :meth:`build`)."""
        if self._built:
            raise RuntimeError("cannot add layers after the model has been built")
        self.layers.append(layer)
        return self

    def build(self, input_shape: Tuple[int, ...], rng: RngLike = None) -> "Sequential":
        """Create all layer parameters for a per-sample ``input_shape``.

        ``input_shape`` excludes the batch dimension, e.g. ``(1, 28, 28)`` for
        MNIST-like images or ``(features,)`` for flat inputs.
        """
        if not self.layers:
            raise ValueError("model has no layers")
        gen = as_generator(rng)
        shape = tuple(int(s) for s in input_shape)
        self.input_shape = shape
        for layer in self.layers:
            layer.build(shape, gen)
            shape = layer.output_shape(shape)
            if hasattr(layer, "_workspace"):
                layer._workspace = self._workspace
        self._built = True
        return self

    @property
    def built(self) -> bool:
        return self._built

    @property
    def output_shape(self) -> Tuple[int, ...]:
        if not self._built or self.input_shape is None:
            raise RuntimeError("model has not been built")
        shape = self.input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
        return shape

    @property
    def num_classes(self) -> int:
        """Width of the output layer (number of classes for classifiers)."""
        shape = self.output_shape
        if len(shape) != 1:
            raise ValueError(f"output shape {shape} is not a flat class vector")
        return shape[0]

    # -- parameters ---------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """All parameters in layer order."""
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def parameter_view(self) -> ParameterView:
        """Flat-indexed view over every scalar parameter in the network."""
        return ParameterView(self.parameters())

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    # -- forward / backward ----------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the network on a batch and return the output logits."""
        self._check_input(x)
        out = x
        if _inject.active():
            # chaos-plan hook: latency/exception faults addressed to a named
            # layer's forward ("layer.forward" site); off the plan-inactive
            # hot path entirely
            for index, layer in enumerate(self.layers):
                _inject.check(
                    "layer.forward", layer=layer.name, index=index, model=self.name
                )
                out = layer.forward(out, training=training)
            return out
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def forward_collect(self, x: np.ndarray) -> List[np.ndarray]:
        """Run the network and return every layer's output (for neuron coverage)."""
        self._check_input(x)
        outputs: List[np.ndarray] = []
        out = x
        for index, layer in enumerate(self.layers):
            if _inject.active():
                _inject.check(
                    "layer.forward", layer=layer.name, index=index, model=self.name
                )
            out = layer.forward(out, training=False)
            outputs.append(out)
        return outputs

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate an output gradient; returns the input gradient.

        Parameter gradients are *accumulated*; call :meth:`zero_grad` first if
        fresh gradients are required.
        """
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def backward_batch(
        self, grad_out: np.ndarray, need_input_grad: bool = True
    ) -> Tuple[Optional[np.ndarray], np.ndarray]:
        """Backpropagate an output gradient, keeping parameter gradients per sample.

        Returns ``(input_gradient, per_sample_grads)`` where ``per_sample_grads``
        has shape ``(N, num_parameters)``: row ``n`` is the flat parameter
        gradient attributable to sample ``n`` alone.  Nothing is accumulated
        into ``Parameter.grad``, so no :meth:`zero_grad` is needed around this
        call.  This is the primitive the batched execution engine
        (:mod:`repro.engine`) builds activation masks from.

        With ``need_input_grad=False`` the bottom layer skips its input-
        gradient computation and the returned input gradient is ``None``.
        """
        grad = np.asarray(grad_out)
        if grad.dtype not in (np.float32, np.float64):
            grad = grad.astype(np.float64)
        n = grad.shape[0]
        per_layer: List[List[np.ndarray]] = []
        for i in range(len(self.layers) - 1, -1, -1):
            grad, grads = self.layers[i].backward_batch(
                grad, need_input_grad=(i > 0 or need_input_grad)
            )
            per_layer.append(grads)
        per_layer.reverse()
        parts = [g.reshape(n, -1) for grads in per_layer for g in grads]
        if parts:
            per_sample = np.concatenate(parts, axis=1)
        else:
            per_sample = np.zeros((n, 0), dtype=np.float64)
        return grad, per_sample

    def output_gradients_batch(
        self, x: np.ndarray, scalarization: str = "sum"
    ) -> np.ndarray:
        """Per-sample flat parameter gradients of the scalarised output.

        The batched counterpart of :meth:`output_gradients`: for a batch of
        ``N`` samples it returns an ``(N, num_parameters)`` matrix whose row
        ``i`` equals ``output_gradients(x[i], scalarization)`` (to floating-
        point equivalence), computed with one forward and one backward pass
        over the whole batch instead of ``N`` single-sample passes.
        """
        if scalarization not in SCALARIZATIONS:
            raise ValueError(
                f"unknown scalarization {scalarization!r}; choose from {SCALARIZATIONS}"
            )
        x = np.asarray(x)
        if x.dtype not in (np.float32, np.float64):
            x = x.astype(np.float64)
        self._check_input(x)
        logits = self.forward(x, training=False)
        grad_out = np.zeros_like(logits)
        if scalarization == "sum":
            grad_out[:] = 1.0
        else:
            rows = np.arange(logits.shape[0])
            grad_out[rows, np.argmax(logits, axis=1)] = 1.0
        _, per_sample = self.backward_batch(grad_out, need_input_grad=False)
        return per_sample

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x, training=False)

    # -- inference helpers ----------------------------------------------------------
    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Logits for a (possibly large) batch, evaluated in chunks."""
        self._check_input(x)
        chunks = []
        for start in range(0, x.shape[0], batch_size):
            chunks.append(self.forward(x[start : start + batch_size], training=False))
        return np.concatenate(chunks, axis=0)

    def predict_classes(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Predicted class index per sample."""
        return np.argmax(self.predict(x, batch_size=batch_size), axis=1)

    def predict_proba(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Softmax class probabilities per sample."""
        logits = self.predict(x, batch_size=batch_size)
        shifted = logits - logits.max(axis=1, keepdims=True)
        e = np.exp(shifted)
        return e / e.sum(axis=1, keepdims=True)

    # -- gradient queries ---------------------------------------------------------------
    def loss_gradients(
        self, x: np.ndarray, targets: np.ndarray, loss: str | Loss = "cross_entropy"
    ) -> Tuple[float, np.ndarray]:
        """Loss value and parameter gradients for a batch.

        Returns ``(loss_value, input_gradient)``; parameter gradients are left
        accumulated in the parameters (read them via :meth:`parameter_view`).
        """
        loss_fn = get_loss(loss)
        self.zero_grad()
        logits = self.forward(x, training=True)
        value, grad = loss_fn.value_and_grad(logits, targets)
        input_grad = self.backward(grad)
        return value, input_grad

    def input_gradient(
        self, x: np.ndarray, targets: np.ndarray, loss: str | Loss = "cross_entropy"
    ) -> Tuple[float, np.ndarray]:
        """Gradient of a loss with respect to the input batch.

        Used by Algorithm 2 (gradient-based test generation) and the GDA
        attack.  The parameter gradients computed along the way are discarded.
        """
        value, input_grad = self.loss_gradients(x, targets, loss)
        self.zero_grad()
        return value, input_grad

    def output_gradients(
        self, x: np.ndarray, scalarization: str = "sum"
    ) -> np.ndarray:
        """Flat parameter-gradient vector of the scalarised output ``F(x)``.

        ``x`` must be a single sample (with or without the batch axis).  The
        scalarisation determines which scalar the gradient is taken of:

        * ``"sum"`` — the sum of all output logits (default; a perturbation of
          θ is deemed detectable if it moves any logit).
        * ``"max"`` — the largest logit.
        * ``"predicted"`` — the logit of the predicted class.
        """
        if scalarization not in SCALARIZATIONS:
            raise ValueError(
                f"unknown scalarization {scalarization!r}; choose from {SCALARIZATIONS}"
            )
        sample = self._as_single_batch(x)
        self.zero_grad()
        logits = self.forward(sample, training=False)
        grad_out = np.zeros_like(logits)
        if scalarization == "sum":
            grad_out[:] = 1.0
        else:
            idx = int(np.argmax(logits[0]))
            grad_out[0, idx] = 1.0
        self.backward(grad_out)
        flat = self.parameter_view().flat_grads()
        self.zero_grad()
        return flat

    # -- copying / state ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Mapping of parameter names to copies of their values."""
        state: Dict[str, np.ndarray] = {}
        for p in self.parameters():
            if p.name in state:
                raise ValueError(f"duplicate parameter name {p.name!r}")
            state[p.name] = p.value.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values by name; shapes must match."""
        params = {p.name: p for p in self.parameters()}
        missing = set(params) - set(state)
        extra = set(state) - set(params)
        if missing or extra:
            raise ValueError(
                f"state dict mismatch; missing={sorted(missing)} extra={sorted(extra)}"
            )
        for name, value in state.items():
            params[name].assign(value)

    def copy(self) -> "Sequential":
        """Structural deep copy sharing nothing with the original.

        The copy is built with the same architecture (via a fresh build) and
        then loaded with this model's parameter values, so perturbing the copy
        (as the attacks do) never touches the original.
        """
        import copy as _copy

        clone = _copy.deepcopy(self)
        return clone

    # -- internals ---------------------------------------------------------------------------
    def _check_input(self, x: np.ndarray) -> None:
        if not self._built:
            raise RuntimeError("model has not been built; call build(input_shape)")
        if self.input_shape is not None and tuple(x.shape[1:]) != self.input_shape:
            raise ValueError(
                f"input per-sample shape {tuple(x.shape[1:])} does not match the "
                f"model input shape {self.input_shape}"
            )

    def _as_single_batch(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if self.input_shape is None:
            raise RuntimeError("model has not been built")
        if x.shape == self.input_shape:
            return x[None, ...]
        if x.ndim == len(self.input_shape) + 1 and x.shape[0] == 1:
            return x
        raise ValueError(
            "output_gradients expects a single sample of shape "
            f"{self.input_shape} (optionally with a leading batch axis of 1), "
            f"got {x.shape}"
        )

    def architecture_signature(self) -> Tuple:
        """Hashable description of the built architecture (not the weights).

        Two models share a signature exactly when their layer stacks are
        interchangeable: same layer classes in the same order, same
        activations, same parameter shapes and dtypes, same input shape.
        This is the compatibility check behind the model-axis stacked
        execution path (:mod:`repro.nn.stacked`), which fuses many perturbed
        copies of one model into a single batched dispatch per layer — only
        weight *values* may differ between stacked copies.
        """
        if not self._built:
            raise RuntimeError("model has not been built")
        entries = []
        for layer in self.layers:
            activation = getattr(layer, "activation", None)
            entries.append(
                (
                    type(layer).__name__,
                    activation.name if activation is not None else None,
                    tuple(
                        (tuple(p.value.shape), np.dtype(p.value.dtype).str)
                        for p in layer.parameters()
                    ),
                )
            )
        return (self.input_shape, tuple(entries))

    def summary(self) -> str:
        """Human-readable architecture summary."""
        if not self._built or self.input_shape is None:
            raise RuntimeError("model has not been built")
        lines = [f"Model: {self.name}", f"Input shape: {self.input_shape}"]
        shape = self.input_shape
        total = 0
        for layer in self.layers:
            shape = layer.output_shape(shape)
            count = sum(p.size for p in layer.parameters())
            total += count
            lines.append(
                f"  {layer.name:<16} {layer.__class__.__name__:<12} "
                f"out={shape!s:<18} params={count}"
            )
        lines.append(f"Total parameters: {total}")
        return "\n".join(lines)


__all__ = ["Sequential", "SCALARIZATIONS"]
