"""First-order optimisers for training the substrate models.

All optimisers operate on lists of :class:`~repro.nn.tensor.Parameter`
objects, consuming the gradients accumulated by the model's backward pass and
updating ``param.value`` in place.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.nn.tensor import Parameter


class Optimizer:
    """Base optimiser interface."""

    def __init__(self, learning_rate: float = 1e-3, weight_decay: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.learning_rate = float(learning_rate)
        self.weight_decay = float(weight_decay)
        self.iterations = 0

    def step(self, parameters: List[Parameter]) -> None:
        """Apply one update to every trainable parameter."""
        self.iterations += 1
        for p in parameters:
            if not p.trainable:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.value
            self._update(p, grad)

    def _update(self, param: Parameter, grad: np.ndarray) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear internal state (momentum buffers, step counters)."""
        self.iterations = 0


class SGD(Optimizer):
    """Plain stochastic gradient descent."""

    def _update(self, param: Parameter, grad: np.ndarray) -> None:
        param.value -= self.learning_rate * grad


class Momentum(Optimizer):
    """SGD with classical momentum."""

    def __init__(
        self,
        learning_rate: float = 1e-2,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(learning_rate, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = float(momentum)
        self._velocity: Dict[int, np.ndarray] = {}

    def _update(self, param: Parameter, grad: np.ndarray) -> None:
        key = id(param)
        v = self._velocity.get(key)
        if v is None:
            v = np.zeros_like(param.value)
        v = self.momentum * v - self.learning_rate * grad
        self._velocity[key] = v
        param.value += v

    def reset(self) -> None:
        super().reset()
        self._velocity.clear()


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba)."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(learning_rate, weight_decay)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def _update(self, param: Parameter, grad: np.ndarray) -> None:
        key = id(param)
        m = self._m.get(key)
        v = self._v.get(key)
        if m is None:
            m = np.zeros_like(param.value)
            v = np.zeros_like(param.value)
        m = self.beta1 * m + (1.0 - self.beta1) * grad
        v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
        self._m[key] = m
        self._v[key] = v
        t = self.iterations
        m_hat = m / (1.0 - self.beta1**t)
        v_hat = v / (1.0 - self.beta2**t)
        param.value -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def reset(self) -> None:
        super().reset()
        self._m.clear()
        self._v.clear()


class StepDecay:
    """Step learning-rate schedule: multiply the LR by ``gamma`` every ``step`` epochs."""

    def __init__(self, initial_lr: float, step: int = 10, gamma: float = 0.5) -> None:
        if initial_lr <= 0:
            raise ValueError("initial_lr must be positive")
        if step <= 0:
            raise ValueError("step must be positive")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.initial_lr = float(initial_lr)
        self.step = int(step)
        self.gamma = float(gamma)

    def lr_at(self, epoch: int) -> float:
        """Learning rate for the given (0-based) epoch."""
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        return self.initial_lr * (self.gamma ** (epoch // self.step))

    def apply(self, optimizer: Optimizer, epoch: int) -> None:
        optimizer.learning_rate = self.lr_at(epoch)


def get_optimizer(
    name: str, learning_rate: float = 1e-3, weight_decay: float = 0.0
) -> Optimizer:
    """Build an optimiser from a config-style name: ``sgd``, ``momentum``, ``adam``."""
    name = name.lower()
    if name == "sgd":
        return SGD(learning_rate, weight_decay)
    if name == "momentum":
        return Momentum(learning_rate, weight_decay=weight_decay)
    if name == "adam":
        return Adam(learning_rate, weight_decay=weight_decay)
    raise ValueError(f"unknown optimizer {name!r}")


__all__ = ["Optimizer", "SGD", "Momentum", "Adam", "StepDecay", "get_optimizer"]
