"""Model parameter serialisation and integrity digests.

The vendor/user validation scheme (Section III) releases the IP through an
*unsecure* distribution channel, so this module provides:

* save/load of model parameters to ``.npz`` files, and
* a deterministic digest over the parameter values, used by the test suite
  and the validation harness to assert that a model copy was (or was not)
  modified.  Note that in the paper's threat model the *user cannot compute
  this digest* — they only see the black-box IP — which is exactly why
  functional tests are needed; the digest here is an experimental-harness
  convenience, not part of the defence.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.nn.model import Sequential

PathLike = Union[str, Path]


def parameter_digest(model: Sequential, precision: int = 12) -> str:
    """Deterministic SHA-256 digest of every parameter value.

    Values are rounded to ``precision`` decimals before hashing so that the
    digest is stable across platforms with differing extended-precision
    behaviour, while still changing for any perturbation of practical size.
    """
    hasher = hashlib.sha256()
    for param in model.parameters():
        hasher.update(param.name.encode("utf-8"))
        rounded = np.round(param.value, precision)
        # normalise -0.0 to 0.0 so the digest does not depend on signed zeros
        rounded = rounded + 0.0
        hasher.update(rounded.tobytes())
    return hasher.hexdigest()


def save_model(model: Sequential, path: PathLike) -> Path:
    """Save model parameters and metadata to a ``.npz`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = model.state_dict()
    meta = {
        "name": model.name,
        "input_shape": list(model.input_shape or ()),
        "digest": parameter_digest(model),
    }
    np.savez(path, __meta__=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8), **state)
    return path


def load_parameters(path: PathLike) -> Dict[str, np.ndarray]:
    """Load the raw parameter mapping saved by :func:`save_model`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"model file not found: {path}")
    with np.load(path) as data:
        return {k: data[k].copy() for k in data.files if k != "__meta__"}


def load_metadata(path: PathLike) -> Dict[str, object]:
    """Load the metadata blob saved by :func:`save_model`."""
    path = Path(path)
    with np.load(path) as data:
        if "__meta__" not in data.files:
            raise ValueError(f"{path} does not contain model metadata")
        raw = bytes(data["__meta__"].tobytes())
    return json.loads(raw.decode("utf-8"))


def load_model_into(model: Sequential, path: PathLike, verify_digest: bool = True) -> Sequential:
    """Load parameters from ``path`` into an already-built ``model``.

    With ``verify_digest=True`` (default) the loaded parameters are re-hashed
    and compared with the digest stored at save time, catching corrupted or
    tampered files.
    """
    state = load_parameters(path)
    model.load_state_dict(state)
    if verify_digest:
        meta = load_metadata(path)
        expected = meta.get("digest")
        actual = parameter_digest(model)
        if expected != actual:
            raise ValueError(
                f"parameter digest mismatch for {path}: file may be corrupted "
                f"or tampered (expected {expected}, got {actual})"
            )
    return model


__all__ = [
    "parameter_digest",
    "save_model",
    "load_parameters",
    "load_metadata",
    "load_model_into",
]
