"""Model-axis stacked execution: many same-architecture models, one dispatch.

The detection experiments (Tables II/III) and every campaign scenario
evaluate hundreds of *perturbed copies of one model* on the *same* stacked
fingerprint batch.  Looping the copies one at a time re-dispatches every
layer operation per copy; :class:`StackedSequential` instead stacks each
parametric layer's weights along a leading model axis and runs **one**
batched matmul / grouped im2col per layer for the whole set.

Exactness is the design constraint, not an afterthought: the stacked matmuls
are shaped so NumPy decomposes them into the *same* per-model GEMMs the
single-model path runs (``(N, in) @ (in, units)`` for dense layers,
``(F, K) @ (K, P)`` for convolutions), so per-model output slices are
bit-identical to running each copy through its own
:class:`~repro.nn.model.Sequential`.  Two structural tricks keep the work
minimal:

* **Shared prefix** — the forward pass stays un-tiled until the first layer
  whose parameters actually *differ* somewhere in the stack.  The attacks
  perturb a handful of parameters in one or two layers, so every layer
  before the earliest perturbation — frequently the convolutional front of
  the Table-I CNNs, which dominates wall-clock — runs **once** on the
  shared batch instead of once per copy (equal parameters on equal inputs
  are bit-identical, so sharing changes nothing observable).  The first
  stacked layer's patch matrix is still gathered once and shared by every
  model via matmul broadcasting.
* **Fold-to-``M·N``** — parameterless layers (pooling, flatten, dropout,
  standalone activations) are model-agnostic, so stacked tensors fold the
  model axis into the batch axis and ride through the template layer's
  ordinary ``forward``/``backward``.  Parametric layers in the shared
  prefix execute the template layer's plain ``forward`` the same way.

The gradient pass keeps the conservative split (every parametric layer runs
stacked) because its backward needs per-layer stacked caches either way.

The backward pass (for activation masks of all copies at once) descends only
to the first parametric layer — layers below it contribute no parameters and
no mask bits.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.model import SCALARIZATIONS, Sequential
from repro.nn.workspace import WorkspacePool


class StackedSequential:
    """A set of same-architecture models fused along a leading model axis.

    Parameters
    ----------
    models:
        Built :class:`~repro.nn.model.Sequential` instances with identical
        :meth:`~repro.nn.model.Sequential.architecture_signature`; only
        parameter values may differ (the perturbed copies the attacks
        produce).  The first model acts as the structural template; its
        parameterless layers execute the shared/folded segments.
    start:
        Layer index the stack starts executing at; ``forward`` then takes
        the (shared) activation feeding that layer instead of the model
        input.  Used by the model-axis backend's trunk sharing — the base
        model's activations up to ``start`` stand in for every copy's,
        bitwise, when the copies' parameters first diverge at ``start``.
        Gradient queries require ``start == 0``.

    All query outputs carry a leading model axis: ``forward`` returns
    ``(M, N, num_classes)``, ``output_gradients_batch`` returns
    ``(M, N, num_parameters)``, ``forward_collect`` a list of ``(M, N, ...)``
    arrays.  Index ``m`` of any output is bit-identical to querying
    ``models[m]`` alone.
    """

    def __init__(self, models: Sequence[Sequential], start: int = 0) -> None:
        models = list(models)
        if not models:
            raise ValueError("StackedSequential needs at least one model")
        template = models[0]
        if not template.built:
            raise ValueError("StackedSequential requires built models")
        if not 0 <= start < len(template.layers):
            raise ValueError(
                f"start must name a layer (0..{len(template.layers) - 1}), "
                f"got {start}"
            )
        self.start = int(start)
        signature = template.architecture_signature()
        for i, model in enumerate(models[1:], start=1):
            if not model.built or model.architecture_signature() != signature:
                raise ValueError(
                    f"model {i} does not match the template architecture; "
                    "stacked execution requires identical layer stacks"
                )
        self.template = template
        self.num_models = len(models)
        self.input_shape = template.input_shape
        # stacked parameter tensors per parametric layer index
        self._stacked: Dict[int, Tuple[np.ndarray, Optional[np.ndarray]]] = {}
        for idx, layer in enumerate(template.layers):
            if layer.parameters():
                weight = np.stack([m.layers[idx].weight.value for m in models])
                bias = (
                    np.stack([m.layers[idx].bias.value for m in models])
                    if layer.bias is not None
                    else None
                )
                self._stacked[idx] = (weight, bias)
        if not self._stacked:
            raise ValueError("stacked execution needs at least one parametric layer")
        self._first_param = min(self._stacked)
        # first parametric layer whose parameters differ anywhere across the
        # stack: the forward pass computes everything before it once on the
        # shared batch (equal parameters on equal inputs are bit-identical)
        self._first_diff = len(template.layers)
        for idx in sorted(self._stacked):
            if idx < self.start:
                continue
            weight, bias = self._stacked[idx]
            if not (weight == weight[:1]).all() or (
                bias is not None and not (bias == bias[:1]).all()
            ):
                self._first_diff = idx
                break
        self._pool = WorkspacePool()
        self._caches: Dict[int, Dict[str, np.ndarray]] = {}

    def __len__(self) -> int:
        return self.num_models

    @property
    def num_classes(self) -> int:
        return self.template.num_classes

    # -- forward -------------------------------------------------------------
    def _forward(
        self, x: np.ndarray, collect: bool = False, keep_caches: bool = False
    ) -> Tuple[np.ndarray, List[np.ndarray]]:
        if self.start == 0:
            self.template._check_input(x)
        m = self.num_models
        out = x  # shared (N, ...) until the first stacked layer
        stacked = False
        outputs: List[np.ndarray] = []
        self._caches = {}
        # the gradient pass needs stacked caches for every parametric layer;
        # the forward-only passes share the prefix up to the first layer
        # whose parameters differ
        split = self._first_param if keep_caches else self._first_diff
        for idx, layer in enumerate(self.template.layers):
            if idx < self.start:
                continue
            if idx in self._stacked and idx >= split:
                weight, bias = self._stacked[idx]
                cache: Dict[str, np.ndarray] = {}
                out = layer.stacked_forward(out, weight, bias, cache, pool=self._pool)
                if keep_caches:
                    self._caches[idx] = cache
                else:
                    self._pool.release(cache.get("cols"))
                stacked = True
            elif stacked:
                n = out.shape[1]
                folded = layer.forward(out.reshape(m * n, *out.shape[2:]))
                out = folded.reshape(m, n, *folded.shape[1:])
            else:
                out = layer.forward(out)
            if collect:
                outputs.append(
                    out if stacked else np.broadcast_to(out, (m, *out.shape))
                )
        if not stacked:
            # every copy is bitwise identical: one shared pass serves all
            out = np.broadcast_to(out, (m, *out.shape))
        return out, outputs

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Inference logits for every model: ``(M, N, num_classes)``."""
        out, _ = self._forward(x)
        return out

    def forward_collect(self, x: np.ndarray) -> List[np.ndarray]:
        """Every layer's output for every model, each ``(M, N, ...)``.

        Shared-segment outputs are broadcast (read-only) views across the
        model axis — identical values for every model by construction.
        """
        _, outputs = self._forward(x, collect=True)
        return outputs

    # -- gradients -----------------------------------------------------------
    def output_gradients_batch(
        self, x: np.ndarray, scalarization: str = "sum"
    ) -> np.ndarray:
        """Per-sample flat parameter gradients for every model.

        Returns ``(M, N, num_parameters)``; slice ``m`` equals
        ``models[m].output_gradients_batch(x, scalarization)`` bit for bit.
        One forward and one backward pass serve the whole stack; the
        backward pass stops at the first parametric layer (nothing below it
        holds parameters, and the stacked path never needs input gradients).
        """
        if self.start != 0:
            raise ValueError("gradient queries require a stack starting at layer 0")
        if scalarization not in SCALARIZATIONS:
            raise ValueError(
                f"unknown scalarization {scalarization!r}; choose from "
                f"{SCALARIZATIONS}"
            )
        x = np.asarray(x)
        if x.dtype not in (np.float32, np.float64):
            x = x.astype(np.float64)
        m = self.num_models
        logits, _ = self._forward(x, keep_caches=True)  # (M, N, classes)
        n = logits.shape[1]
        grad = np.zeros_like(logits)
        if scalarization == "sum":
            grad[:] = 1.0
        else:
            top = np.argmax(logits, axis=2)  # (M, N)
            np.put_along_axis(grad, top[:, :, None], 1.0, axis=2)
        per_layer: List[List[np.ndarray]] = []
        first = self._first_param
        for idx in range(len(self.template.layers) - 1, first - 1, -1):
            layer = self.template.layers[idx]
            if idx in self._stacked:
                weight, _bias = self._stacked[idx]
                cache = self._caches.pop(idx)
                grad, grads = layer.stacked_backward_batch(
                    grad,
                    weight,
                    cache,
                    need_input_grad=(idx > first),
                    pool=self._pool,
                )
                self._pool.release(cache.get("cols"))
                per_layer.append(grads)
            else:
                folded = layer.backward(grad.reshape(m * n, *grad.shape[2:]))
                grad = folded.reshape(m, n, *folded.shape[1:])
                per_layer.append([])
        per_layer.reverse()
        parts = [g.reshape(m, n, -1) for grads in per_layer for g in grads]
        return np.concatenate(parts, axis=2)


__all__ = ["StackedSequential"]
