"""Parameter container for the NumPy neural-network substrate.

The framework is layer-based rather than tape-based: each layer implements an
explicit ``forward``/``backward`` pair, and learnable state is held in
:class:`Parameter` objects that carry a value and an accumulated gradient.
Everything the paper's method needs — parameter gradients for the coverage
metric, input gradients for the gradient-based test generation and the GDA
attack — is produced by these explicit backward passes.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np


class Parameter:
    """A learnable tensor with an accumulated gradient.

    Attributes
    ----------
    value:
        The parameter values, a float64 ndarray.
    grad:
        Gradient of the current scalar objective with respect to ``value``.
        Shaped like ``value``; zeroed by :meth:`zero_grad`.
    name:
        Human-readable identifier, e.g. ``"conv1/weight"``.  Names are used by
        the serialisation code, the coverage bookkeeping and the attacks to
        refer to individual parameter tensors.
    trainable:
        Frozen parameters are skipped by optimisers but still participate in
        coverage accounting (a frozen-but-perturbed weight still corrupts the
        output).
    """

    __slots__ = ("value", "grad", "name", "trainable")

    def __init__(
        self,
        value: np.ndarray,
        name: str = "param",
        trainable: bool = True,
    ) -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name
        self.trainable = trainable

    # -- basic protocol ----------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.value.shape

    @property
    def size(self) -> int:
        """Number of scalar parameters in this tensor."""
        return int(self.value.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero in place."""
        self.grad.fill(0.0)

    def copy(self) -> "Parameter":
        """Deep copy of value and gradient."""
        clone = Parameter(self.value.copy(), name=self.name, trainable=self.trainable)
        clone.grad = self.grad.copy()
        return clone

    def assign(self, new_value: np.ndarray) -> None:
        """Overwrite the parameter value, checking shape compatibility."""
        new_value = np.asarray(new_value, dtype=np.float64)
        if new_value.shape != self.value.shape:
            raise ValueError(
                f"cannot assign shape {new_value.shape} to parameter "
                f"{self.name!r} of shape {self.value.shape}"
            )
        self.value = new_value.copy()

    def add_(self, delta: np.ndarray) -> None:
        """Add ``delta`` to the parameter value in place (used by attacks)."""
        delta = np.asarray(delta, dtype=np.float64)
        if delta.shape != self.value.shape:
            raise ValueError(
                f"delta shape {delta.shape} does not match parameter "
                f"{self.name!r} shape {self.value.shape}"
            )
        self.value += delta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"


class ParameterView:
    """A flattened, indexed view over an ordered list of parameters.

    The coverage metric and the attacks both need to address "parameter ``i``
    of the whole network" where ``i`` runs over every scalar weight and bias.
    ``ParameterView`` provides the mapping between this flat index space and
    the per-tensor layout.
    """

    def __init__(self, parameters: List[Parameter]) -> None:
        if not parameters:
            raise ValueError("ParameterView needs at least one parameter")
        self._params = list(parameters)
        sizes = [p.size for p in self._params]
        self._offsets = np.concatenate([[0], np.cumsum(sizes)])

    # -- sizing ------------------------------------------------------------
    @property
    def total_size(self) -> int:
        """Total number of scalar parameters across all tensors."""
        return int(self._offsets[-1])

    @property
    def parameters(self) -> List[Parameter]:
        return list(self._params)

    def __len__(self) -> int:
        return len(self._params)

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self._params)

    # -- flat value / grad access -------------------------------------------
    def flat_values(self) -> np.ndarray:
        """Concatenate all parameter values into one flat vector (copy)."""
        return np.concatenate([p.value.ravel() for p in self._params])

    def flat_grads(self) -> np.ndarray:
        """Concatenate all parameter gradients into one flat vector (copy)."""
        return np.concatenate([p.grad.ravel() for p in self._params])

    def set_flat_values(self, flat: np.ndarray) -> None:
        """Scatter a flat vector back into the individual parameter tensors."""
        flat = np.asarray(flat, dtype=np.float64).ravel()
        if flat.size != self.total_size:
            raise ValueError(
                f"flat vector has {flat.size} entries, expected {self.total_size}"
            )
        for i, p in enumerate(self._params):
            lo, hi = self._offsets[i], self._offsets[i + 1]
            p.value = flat[lo:hi].reshape(p.value.shape).copy()

    # -- flat index mapping --------------------------------------------------
    def locate(self, flat_index: int) -> Tuple[int, Tuple[int, ...]]:
        """Map a flat parameter index to ``(tensor_index, within-tensor index)``."""
        if not 0 <= flat_index < self.total_size:
            raise IndexError(
                f"flat index {flat_index} out of range [0, {self.total_size})"
            )
        tensor_idx = int(np.searchsorted(self._offsets, flat_index, side="right") - 1)
        local = flat_index - int(self._offsets[tensor_idx])
        shape = self._params[tensor_idx].value.shape
        return tensor_idx, tuple(np.unravel_index(local, shape))

    def get_scalar(self, flat_index: int) -> float:
        """Read the scalar parameter at ``flat_index``."""
        t, idx = self.locate(flat_index)
        return float(self._params[t].value[idx])

    def set_scalar(self, flat_index: int, value: float) -> None:
        """Overwrite the scalar parameter at ``flat_index``."""
        t, idx = self.locate(flat_index)
        self._params[t].value[idx] = float(value)

    def add_scalar(self, flat_index: int, delta: float) -> None:
        """Add ``delta`` to the scalar parameter at ``flat_index``."""
        t, idx = self.locate(flat_index)
        self._params[t].value[idx] += float(delta)

    def tensor_slices(self) -> List[Tuple[str, int, int]]:
        """Return ``(name, start, stop)`` flat-index ranges per tensor."""
        out = []
        for i, p in enumerate(self._params):
            out.append((p.name, int(self._offsets[i]), int(self._offsets[i + 1])))
        return out


__all__ = ["Parameter", "ParameterView"]
