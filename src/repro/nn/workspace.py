"""Reusable ndarray workspaces for the im2col hot path.

The batched engine processes large candidate pools in uniform chunks, so the
convolution and pooling layers keep requesting patch matrices of the *same*
shapes over and over.  Allocating a fresh ``(N, C*kh*kw, P)`` buffer per
chunk is churn; but naively *pinning* one buffer per layer is worse — it
grows the working set of a pass from the largest single patch matrix to the
sum over all layers, and the measured cache misses cost more than the
allocations saved (see ``benchmarks/BENCH_baseline.json`` history; the
regression harness is what caught this).

:class:`WorkspacePool` therefore works like a tiny free-list allocator with
explicit hand-back, shared by *all* layers of one model:

* :meth:`acquire` pops a free buffer of the requested ``(shape, dtype)`` or
  allocates one;
* :meth:`release` returns a buffer to the free list once its contents are
  consumed.

Because a released buffer is immediately reusable by the *next* layer that
asks for the same geometry (e.g. the equal-width conv pairs of the Table-I
models), consecutive layers cycle through the same few hot buffers — the
locality of malloc's free list, with deterministic reuse and zero per-chunk
allocation churn once warm.

Ownership contract: whoever acquires a buffer must release it exactly once,
after its last possible read.  The conv layers hold their patch matrix from
one forward until the *next* forward replaces it (not merely until backward
consumes it — backward may legitimately run repeatedly, and an early release
would let backward's own input-gradient gather pop and overwrite the buffer
when the geometries coincide); pooling layers and the gradient gather
release as soon as their single consumer has read the buffer.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

#: free buffers kept per (shape, dtype) geometry; the Table-I architectures
#: never have more than two same-geometry layers in flight
DEFAULT_PER_KEY = 2

#: total free buffers kept across all geometries
DEFAULT_SLOTS = 16

_Key = Tuple[Tuple[int, ...], np.dtype]


class WorkspacePool:
    """A free-list of reusable ndarray buffers keyed by shape and dtype."""

    def __init__(self, max_slots: int = DEFAULT_SLOTS, per_key: int = DEFAULT_PER_KEY) -> None:
        if max_slots <= 0 or per_key <= 0:
            raise ValueError("max_slots and per_key must be positive")
        self.max_slots = int(max_slots)
        self.per_key = int(per_key)
        self._free: Dict[_Key, List[np.ndarray]] = {}
        self._count = 0

    def __len__(self) -> int:
        """Number of free buffers currently held."""
        return self._count

    @property
    def nbytes(self) -> int:
        """Total bytes of the free buffers currently held."""
        return sum(buf.nbytes for bufs in self._free.values() for buf in bufs)

    @staticmethod
    def _key(shape: Tuple[int, ...], dtype: np.dtype) -> _Key:
        return (tuple(int(s) for s in shape), np.dtype(dtype))

    def acquire(self, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        """An uninitialised buffer of the requested geometry.

        Pops a previously released buffer when one matches (contents are
        whatever its last user wrote) and allocates otherwise.
        """
        key = self._key(shape, dtype)
        bufs = self._free.get(key)
        if bufs:
            self._count -= 1
            return bufs.pop()
        return np.empty(key[0], dtype=key[1])

    def release(self, array: np.ndarray) -> None:
        """Hand a buffer back for reuse after its last read.

        Accepts any view of the acquired buffer (the base chain is resolved);
        buffers beyond the per-geometry or total capacity are simply dropped
        for the garbage collector.  ``None`` is ignored so callers can
        release optimistically.
        """
        if array is None:
            return
        base = array
        # the base chain may bottom out in a non-ndarray buffer (unpickled
        # arrays sit on memoryviews); such arrays were never pool-acquired
        while isinstance(base, np.ndarray) and base.base is not None:
            base = base.base
        if not isinstance(base, np.ndarray) or not base.flags["C_CONTIGUOUS"]:
            return
        if self._count >= self.max_slots:
            return
        key = self._key(base.shape, base.dtype)
        bufs = self._free.setdefault(key, [])
        if len(bufs) >= self.per_key:
            return
        bufs.append(base)
        self._count += 1

    def clear(self) -> None:
        """Drop every free buffer (frees the memory on next GC)."""
        self._free.clear()
        self._count = 0

    # Buffers are scratch space, not state: models carrying pools are deep-
    # copied by the attacks and pickled across process boundaries by the
    # parallel backend, and shipping megabytes of garbage along would defeat
    # the point.  Copies and pickles therefore start with an empty pool.
    def __deepcopy__(self, memo: dict) -> "WorkspacePool":
        return WorkspacePool(self.max_slots, self.per_key)

    def __reduce__(self):
        return (WorkspacePool, (self.max_slots, self.per_key))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkspacePool(free={self._count}, nbytes={self.nbytes})"


__all__ = ["DEFAULT_PER_KEY", "DEFAULT_SLOTS", "WorkspacePool"]
