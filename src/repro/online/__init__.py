"""``repro.online`` — query-budgeted verification of remote black-box IPs.

The paper's user (Fig. 1, right half) holds the IP in-process and replays
the whole fingerprint set for free.  This package covers the production
variant: the suspect model sits behind a metered endpoint and every query
costs money, so verification needs a fault-tolerant transport and an
early-stopping decision rule.

Two halves:

- :mod:`repro.online.transport` — :class:`RemoteModel`, a
  :data:`~repro.validation.user.BlackBoxIP`-compatible callable over a
  pluggable transport (``callable`` for in-process endpoints, ``http`` for
  a live ``python -m repro serve`` process; third parties add more through
  the registry's ``transports`` namespace).  Queries are micro-batched,
  retried under a :class:`repro.faults.FaultPolicy`, rate-limited by a
  client-side token bucket, and deduplicated through a response cache
  keyed by input fingerprint, with every billable event recorded in a
  :class:`QueryLedger`.

- :mod:`repro.online.verifier` — :class:`OnlineVerifier`, which replays
  fingerprints in discriminative-power order and runs the SPRT walk from
  :mod:`repro.validation.sequential`, emitting a
  :class:`~repro.validation.sequential.SequentialReport` (verdict,
  confidence, queries-to-decision) instead of always replaying everything.

Because :class:`RemoteModel` *is* a ``BlackBoxIP``, the un-budgeted path is
just ``validate_ip(remote, package)`` — full replay over the wire with a
byte-identical mismatch set to in-process validation.
"""

from repro.online.transport import (
    CallableTransport,
    HttpTransport,
    QueryLedger,
    RemoteModel,
    TransportError,
    resolve_transport,
)
from repro.online.verifier import OnlineVerifier, verify_online

__all__ = [
    "CallableTransport",
    "HttpTransport",
    "OnlineVerifier",
    "QueryLedger",
    "RemoteModel",
    "TransportError",
    "resolve_transport",
    "verify_online",
]
