"""Fault-tolerant transports and the :class:`RemoteModel` adapter.

A *transport* answers one question — "here is a batch of inputs, give me
the endpoint's logits" — and :class:`RemoteModel` layers the client-side
economics on top: micro-batching, deterministic retry/backoff through the
existing :class:`repro.faults.FaultPolicy` machinery, token-bucket rate
limiting (:class:`repro.serve.quota.TokenBucket`), and a response cache
keyed by input fingerprint so a repeated fingerprint is never re-billed.
Every billable event lands in the :class:`QueryLedger`, which merges into
validation stats.

Transports are registry components (namespace ``transports``): ``callable``
wraps any in-process ``inputs -> logits`` function, ``http`` speaks the
``/v1/query`` wire endpoint of a live ``python -m repro serve`` process.
Transient remote failures (connection errors, timeouts, HTTP 408/429/5xx)
raise :class:`TransportError`, an :class:`OSError` subclass — exactly what
:func:`repro.faults.errors.is_transient` already classifies as retryable —
while logic errors (HTTP 4xx) propagate as ``ValueError`` immediately.
"""

from __future__ import annotations

import hashlib
import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Union

import numpy as np

from repro.api.wire import envelope, open_envelope
from repro.faults.policy import FaultPolicy, RetryController
from repro.registry import register, registry
from repro.serve.quota import TokenBucket

#: HTTP statuses treated as transient (retryable) transport failures.
TRANSIENT_HTTP_STATUSES = frozenset({408, 429, 500, 502, 503, 504})


class TransportError(OSError):
    """A transient remote failure: connection trouble, timeout, 429/5xx.

    Subclasses :class:`OSError` so the existing transient-fault
    classification (and therefore :class:`~repro.faults.policy.RetryController`)
    retries it without any new special cases.
    """


@dataclass
class QueryLedger:
    """Billable-event accounting for one :class:`RemoteModel`.

    ``queries_sent`` counts individual inputs that actually went over the
    transport (the metered quantity); ``requests`` counts transport round
    trips (micro-batches); ``cache_hits`` counts inputs answered from the
    fingerprint cache without billing; ``retries`` mirrors the fault
    layer's retry count; ``wall_time_s`` is time spent inside remote calls.
    """

    queries_sent: int = 0
    requests: int = 0
    cache_hits: int = 0
    retries: int = 0
    wall_time_s: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "queries_sent": self.queries_sent,
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "retries": self.retries,
            "wall_time_s": self.wall_time_s,
        }


class CallableTransport:
    """Wrap an arbitrary in-process ``inputs -> logits`` callable."""

    name = "callable"

    def __init__(self, fn: Callable[[np.ndarray], np.ndarray]) -> None:
        if not callable(fn):
            raise TypeError("CallableTransport needs a callable endpoint")
        self._fn = fn

    def send(self, inputs: np.ndarray) -> np.ndarray:
        return np.asarray(self._fn(inputs), dtype=np.float64)

    def describe(self) -> Dict[str, object]:
        return {"transport": self.name}


class HttpTransport:
    """Query a live ``python -m repro serve`` process over ``POST /v1/query``.

    The server loads ``model_path`` (confined to its ``--artifacts-root``)
    into the named architecture and runs the forward pass; logits travel
    back as JSON, whose ``repr``-based float serialisation round-trips
    float64 exactly — so full replay over this transport is byte-identical
    to in-process validation.
    """

    name = "http"

    def __init__(
        self,
        url: str,
        model_path: str,
        arch: str = "mnist",
        width_multiplier: float = 0.125,
        input_size: Optional[int] = None,
        timeout_s: float = 30.0,
        tenant: str = "default",
    ) -> None:
        if not url:
            raise ValueError("HttpTransport needs the serve endpoint's base URL")
        if not model_path:
            raise ValueError("HttpTransport needs the server-side model_path")
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self.url = url.rstrip("/")
        self.model_path = model_path
        self.arch = arch
        self.width_multiplier = float(width_multiplier)
        self.input_size = input_size
        self.timeout_s = float(timeout_s)
        self.tenant = tenant

    def send(self, inputs: np.ndarray) -> np.ndarray:
        body: Dict[str, object] = {
            "model_path": self.model_path,
            "arch": self.arch,
            "width_multiplier": self.width_multiplier,
            "input_size": self.input_size,
            "inputs": np.asarray(inputs, dtype=np.float64).tolist(),
        }
        payload = json.dumps(envelope("query", body)).encode("utf-8")
        request = urllib.request.Request(
            f"{self.url}/v1/query",
            data=payload,
            headers={"Content-Type": "application/json", "X-Tenant": self.tenant},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                raw = response.read()
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace")[:512]
            if exc.code in TRANSIENT_HTTP_STATUSES:
                raise TransportError(
                    f"transient HTTP {exc.code} from {self.url}: {detail}"
                ) from exc
            raise ValueError(
                f"query rejected with HTTP {exc.code} by {self.url}: {detail}"
            ) from exc
        except urllib.error.URLError as exc:
            raise TransportError(f"cannot reach {self.url}: {exc.reason}") from exc
        except TimeoutError as exc:
            raise TransportError(f"query to {self.url} timed out") from exc
        _version, _kind, result = open_envelope(
            json.loads(raw.decode("utf-8")), expected_kind="query_result"
        )
        return np.asarray(result["outputs"], dtype=np.float64)

    def describe(self) -> Dict[str, object]:
        return {
            "transport": self.name,
            "url": self.url,
            "model_path": self.model_path,
            "arch": self.arch,
        }


def _fingerprint(row: np.ndarray) -> str:
    """Cache key for one input row — same rounding rule as the package digest."""
    return hashlib.sha256(
        np.ascontiguousarray(np.round(row, 12)).tobytes()
    ).hexdigest()


class RemoteModel:
    """A metered remote endpoint as a :data:`~repro.validation.user.BlackBoxIP`.

    Callable with a batch of inputs, returning float64 logits — so it slots
    directly into :func:`~repro.validation.user.validate_ip` (full replay)
    and :class:`~repro.online.verifier.OnlineVerifier` (sequential mode).

    Per call, each input row is resolved from the fingerprint cache when
    possible; the remaining rows go out in ``micro_batch``-sized transport
    round trips, each admitted by the client-side token bucket (``rate``
    queries/second, ``0`` = unlimited) and executed under the fault
    policy's retry/backoff schedule.
    """

    def __init__(
        self,
        transport: Union[CallableTransport, HttpTransport, object],
        policy: Optional[FaultPolicy] = None,
        rate: float = 0.0,
        burst: int = 16,
        micro_batch: int = 32,
        cache: bool = True,
        sleeper: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not hasattr(transport, "send"):
            raise TypeError(
                f"transport must expose send(inputs); got {type(transport).__name__}"
            )
        if micro_batch <= 0:
            raise ValueError("micro_batch must be positive")
        self.transport = transport
        self.policy = FaultPolicy.coerce(policy) or FaultPolicy()
        self.micro_batch = int(micro_batch)
        self._bucket = TokenBucket(rate, burst, clock=clock)
        self._sleeper = sleeper
        self._controller = RetryController(policy=self.policy, sleeper=sleeper)
        self._cache: Optional[Dict[str, np.ndarray]] = {} if cache else None
        self.ledger = QueryLedger()

    # -- BlackBoxIP protocol -------------------------------------------------
    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        batch = np.asarray(inputs, dtype=np.float64)
        if batch.ndim < 2:
            batch = batch.reshape(1, -1)
        started = time.perf_counter()
        try:
            keys = [_fingerprint(row) for row in batch]
            rows: Dict[int, np.ndarray] = {}
            missing = []
            for i, key in enumerate(keys):
                cached = self._cache.get(key) if self._cache is not None else None
                if cached is not None:
                    rows[i] = cached
                    self.ledger.cache_hits += 1
                else:
                    missing.append(i)
            for start in range(0, len(missing), self.micro_batch):
                chunk = missing[start : start + self.micro_batch]
                outputs = self._send(batch[chunk])
                if outputs.ndim != 2 or outputs.shape[0] != len(chunk):
                    raise ValueError(
                        f"transport returned {outputs.shape} outputs for "
                        f"{len(chunk)} inputs"
                    )
                for j, i in enumerate(chunk):
                    row = np.ascontiguousarray(outputs[j], dtype=np.float64)
                    rows[i] = row
                    if self._cache is not None:
                        self._cache[keys[i]] = row
            return np.stack([rows[i] for i in range(len(keys))], axis=0)
        finally:
            self.ledger.wall_time_s += time.perf_counter() - started
            self.ledger.retries = self._controller.stats.retries

    def _send(self, chunk: np.ndarray) -> np.ndarray:
        while not self._bucket.take():
            self._sleeper(self._bucket.seconds_until_token())
        self.ledger.requests += 1
        self.ledger.queries_sent += int(chunk.shape[0])
        return np.asarray(
            self._controller.run(
                lambda: self.transport.send(chunk),
                key=f"remote-query[{chunk.shape[0]}]",
            ),
            dtype=np.float64,
        )

    # -- introspection -------------------------------------------------------
    @property
    def cache_size(self) -> int:
        return len(self._cache) if self._cache is not None else 0

    def stats(self) -> Dict[str, object]:
        """Ledger plus fault-layer counters, ready to merge into reports."""
        merged = self.ledger.to_dict()
        merged["cache_size"] = self.cache_size
        merged["faults"] = self._controller.stats.as_dict()
        if hasattr(self.transport, "describe"):
            merged["transport"] = self.transport.describe()
        return merged


def resolve_transport(spec: Union[str, object], **kwargs: object):
    """A transport from a registry name (``callable``/``http``/…) or instance."""
    if isinstance(spec, str):
        return registry.create("transports", spec, **kwargs)
    if hasattr(spec, "send"):
        return spec
    if callable(spec):
        return CallableTransport(spec)
    raise TypeError(f"cannot build a transport from {type(spec).__name__}")


@register(
    "transports",
    "callable",
    summary="wrap an in-process inputs->logits callable as a query transport",
)
def build_callable_transport(fn: Callable[[np.ndarray], np.ndarray], **_: object):
    return CallableTransport(fn)


@register(
    "transports",
    "http",
    knobs={"timeout_s": "request_timeout_s"},
    summary="POST /v1/query against a live `python -m repro serve` endpoint",
)
def build_http_transport(
    url: str,
    model_path: str,
    arch: str = "mnist",
    width_multiplier: float = 0.125,
    input_size: Optional[int] = None,
    timeout_s: float = 30.0,
    tenant: str = "default",
    **_: object,
):
    return HttpTransport(
        url,
        model_path,
        arch=arch,
        width_multiplier=width_multiplier,
        input_size=input_size,
        timeout_s=timeout_s,
        tenant=tenant,
    )


__all__ = [
    "CallableTransport",
    "HttpTransport",
    "QueryLedger",
    "RemoteModel",
    "TRANSIENT_HTTP_STATUSES",
    "TransportError",
    "resolve_transport",
]
