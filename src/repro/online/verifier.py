"""The sequential online verifier: ordered replay + SPRT early stopping.

Where :func:`repro.validation.user.validate_ip` replays the whole
fingerprint set, :class:`OnlineVerifier` spends queries one probe at a
time: fingerprints are scheduled by discriminative power
(:func:`repro.validation.sequential.query_order` — stored v3 scores, or the
entropy fallback), each probe's observed logits are compared under the
package's ``output_atol`` with the *same* mismatch rule as full replay, and
the match/mismatch stream drives Wald's SPRT until a threshold is crossed,
the query budget runs out, or the set is exhausted.  The clean threshold is
curtailed: it cannot fire before
:func:`repro.validation.sequential.clean_floor` fingerprints have been
observed, so an attack that mismatches only low-discrimination tests cannot
slip past an early clean verdict.

The comparison rule is shared with full replay on purpose: a mismatch here
is a mismatch there, so with the default SPRT operating point (one mismatch
crosses the tampered threshold immediately) sequential mode can never
return "tampered" where full replay would have said "clean" on the probed
prefix — it only stops asking earlier.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.validation.package import ValidationPackage
from repro.validation.sequential import (
    DEFAULT_CLEAN_FRACTION,
    DEFAULT_CONFIDENCE,
    DEFAULT_P0,
    DEFAULT_P1,
    VERDICT_CLEAN,
    VERDICT_TAMPERED,
    SequentialReport,
    clean_floor,
    llr_increments,
    query_order,
    sprt_thresholds,
)
from repro.validation.user import BlackBoxIP, _query


class OnlineVerifier:
    """Early-stopping verification of a (possibly remote) black-box IP.

    Parameters
    ----------
    ip: the suspect model — any :data:`~repro.validation.user.BlackBoxIP`,
        typically a :class:`~repro.online.transport.RemoteModel`.
    package: the vendor's validation package.
    confidence: target decision confidence; ``alpha = beta = 1 - confidence``.
    query_budget: optional hard cap on probed fingerprints; running out
        yields an undecided report whose verdict follows the evidence seen
        (any mismatch ⇒ tampered, the full-replay rule).
    probe_batch: fingerprints sent per probe.  1 spends the fewest queries;
        larger values trade queries for round trips on slow transports.
        Every probed fingerprint counts as used, even if the decision lands
        mid-batch — that is what the endpoint bills.
    """

    def __init__(
        self,
        ip: BlackBoxIP,
        package: ValidationPackage,
        confidence: float = DEFAULT_CONFIDENCE,
        query_budget: Optional[int] = None,
        probe_batch: int = 1,
        p0: float = DEFAULT_P0,
        p1: float = DEFAULT_P1,
        clean_fraction: float = DEFAULT_CLEAN_FRACTION,
    ) -> None:
        if not 0.0 < confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {confidence}")
        if query_budget is not None and query_budget <= 0:
            raise ValueError(f"query_budget must be positive, got {query_budget}")
        if probe_batch <= 0:
            raise ValueError(f"probe_batch must be positive, got {probe_batch}")
        self.ip = ip
        self.package = package
        self.confidence = float(confidence)
        self.query_budget = query_budget
        self.probe_batch = int(probe_batch)
        self.p0 = float(p0)
        self.p1 = float(p1)
        self.clean_fraction = float(clean_fraction)

    def verify(self) -> SequentialReport:
        package = self.package
        order, order_name = query_order(package)
        alpha = beta = 1.0 - self.confidence
        lower, upper = sprt_thresholds(alpha, beta)
        match_llr, mismatch_llr = llr_increments(self.p0, self.p1)
        limit = package.num_tests
        if self.query_budget is not None:
            limit = min(limit, self.query_budget)
        # clean-side curtailment: never accept H0 before this many observed
        # fingerprints (see repro.validation.sequential's module docstring)
        floor = clean_floor(package.num_tests, self.clean_fraction)

        llr = 0.0
        cusum = 0.0
        used = 0
        decided = False
        verdict = VERDICT_CLEAN
        mismatched = []
        max_deviation = 0.0
        position = 0
        while position < limit and not decided:
            take = min(self.probe_batch, limit - position)
            indices = order[position : position + take]
            expected = package.expected_outputs[indices]
            observed = np.asarray(
                _query(self.ip, package.tests[indices]), dtype=np.float64
            )
            used += take
            if observed.shape != expected.shape:
                # same rule as report_from_outputs: wrong output shape is a
                # total mismatch, not an error
                deviations = np.full(take, np.inf)
            else:
                deviations = np.abs(observed - expected).max(axis=1)
            for j in range(take):
                is_mismatch = bool(deviations[j] > package.output_atol)
                max_deviation = max(max_deviation, float(deviations[j]))
                if is_mismatch:
                    mismatched.append(int(indices[j]))
                step = mismatch_llr if is_mismatch else match_llr
                llr += step
                # tampered side is a CUSUM (SPRT reflected at zero), so
                # accumulated clean evidence cannot mask a later mismatch —
                # see repro.validation.sequential.decide_from_mismatches
                cusum = max(0.0, cusum + step)
                if cusum >= upper:
                    decided, verdict = True, VERDICT_TAMPERED
                    break
                if llr <= lower and position + j + 1 >= floor:
                    decided, verdict = True, VERDICT_CLEAN
                    break
            position += take
        if not decided:
            verdict = VERDICT_TAMPERED if mismatched else VERDICT_CLEAN

        ledger = None
        stats = getattr(self.ip, "stats", None)
        if callable(stats):
            ledger = stats()
        return SequentialReport(
            verdict=verdict,
            decided=decided,
            confidence=self.confidence,
            queries_used=used,
            num_tests=package.num_tests,
            llr=llr,
            threshold_lower=lower,
            threshold_upper=upper,
            order=order_name,
            mismatched_indices=sorted(mismatched),
            max_output_deviation=max_deviation,
            ledger=ledger,
        )


def verify_online(
    ip: BlackBoxIP,
    package: ValidationPackage,
    confidence: float = DEFAULT_CONFIDENCE,
    query_budget: Optional[int] = None,
    probe_batch: int = 1,
) -> SequentialReport:
    """One-shot convenience wrapper around :class:`OnlineVerifier`."""
    return OnlineVerifier(
        ip,
        package,
        confidence=confidence,
        query_budget=query_budget,
        probe_batch=probe_batch,
    ).verify()


__all__ = ["OnlineVerifier", "verify_online"]
