"""Cross-subsystem plugin registry: one discoverable surface for every
pluggable component.

Before this module, each subsystem resolved its extensible pieces with a
private idiom: test-generation strategies had ``repro.testgen.registry``,
backends had :func:`repro.engine.backend.register_backend`, attacks and
coverage criteria were hardcoded in ``repro.validation.detection`` and
``repro.coverage.activation``, datasets and models were ``if``/``elif``
ladders.  This module unifies them into a single :class:`Registry` with
*namespaces*:

=============  ============================================================
``strategies``  test-generation strategies (``combined``, ``selection``,
                ``gradient``, ``neuron``, ``random``)
``attacks``     parameter-perturbation attack families (``sba``, ``gda``,
                ``random``, ``bitflip``)
``criteria``    activation-criterion resolvers (``default``, ``exact``,
                ``eps``)
``backends``    execution backends (``numpy``, ``parallel``)
``datasets``    dataset loaders (``mnist``, ``cifar``, ``digits``,
                ``noise``, ``imagenet``)
``models``      model-zoo builders (``mnist``, ``cifar``, ``small_cnn``, …)
``transports``  remote-model query transports for online verification
                (``callable``, ``http``)
=============  ============================================================

Each entry carries an optional **knob declaration** — a mapping from the
factory's keyword arguments onto the configuration fields that feed them
(e.g. the ``gda`` attack declares ``{"num_parameters": "gda_parameters"}``)
— so declarative drivers (:mod:`repro.campaign`, :class:`repro.api.Session`)
learn a component's tunables from the registry instead of hardcoding them
per name.

Builtin entries are registered lazily: looking up a namespace imports the
module(s) that own its builtin components, so ``import repro.registry``
itself stays free of numpy-heavy imports.

Extending::

    from repro.registry import register

    @register("attacks", "row-hammer", knobs={"rows": "hammer_rows"})
    def build_row_hammer(reference_inputs, rng=None, rows=1):
        return RowHammerAttack(rows=rows, rng=rng)

Third-party packages can also expose a ``repro.plugins`` entry point whose
target is a callable receiving the registry; call
:func:`discover_entry_points` (or pass ``discover_plugins=True`` to
:class:`repro.api.RunConfig`) to load them.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

#: the builtin namespaces, in documentation order
NAMESPACES = (
    "strategies",
    "attacks",
    "criteria",
    "backends",
    "datasets",
    "models",
    "transports",
)

#: entry-point group scanned by :func:`discover_entry_points`
ENTRY_POINT_GROUP = "repro.plugins"

#: singular forms used in "unknown <thing>" error messages
_SINGULAR = {
    "strategies": "strategy",
    "attacks": "attack",
    "criteria": "criterion",
    "backends": "backend",
    "datasets": "dataset",
    "models": "model",
    "transports": "transport",
}

#: modules that register a namespace's builtin entries on import
_BUILTIN_MODULES: Dict[str, Tuple[str, ...]] = {
    "strategies": ("repro.testgen.strategies",),
    "attacks": ("repro.attacks",),
    "criteria": ("repro.coverage.activation",),
    "backends": ("repro.engine",),
    "datasets": ("repro.data",),
    "models": ("repro.models.zoo",),
    "transports": ("repro.online.transport",),
}


@dataclass(frozen=True)
class RegistryEntry:
    """One registered component: a named factory plus its declarations.

    ``knobs`` maps the factory's *keyword arguments* onto the declarative
    configuration fields that feed them (``{"max_updates":
    "gradient_updates"}``); ``metadata`` is free-form extra information
    consumed by specific drivers (e.g. the dataset entries' experiment
    recipe: which model to train, default epochs) and is never interpreted
    as factory arguments.
    """

    namespace: str
    name: str
    factory: Callable[..., object]
    knobs: Mapping[str, object] = field(default_factory=dict)
    metadata: Mapping[str, object] = field(default_factory=dict)
    summary: str = ""

    def describe(self) -> Dict[str, object]:
        """JSON-friendly description (the ``python -m repro registry`` row)."""
        return {
            "namespace": self.namespace,
            "name": self.name,
            "factory": getattr(self.factory, "__qualname__", repr(self.factory)),
            "knobs": dict(self.knobs),
            "metadata": dict(self.metadata),
            "summary": self.summary,
        }


class Registry:
    """Namespaced name → factory registry with lazy builtin loading.

    All mutating and reading methods are thread-safe.  Lookups
    (:meth:`entry`, :meth:`names`, …) trigger the import of the namespace's
    builtin modules on first access; :meth:`register` never does, so the
    builtin modules themselves can register during import without recursion.
    """

    def __init__(self, namespaces: Tuple[str, ...] = NAMESPACES) -> None:
        self._entries: Dict[str, Dict[str, RegistryEntry]] = {
            ns: {} for ns in namespaces
        }
        self._loaded: set = set()
        #: namespace -> thread ident of the thread importing its builtins
        self._loading: Dict[str, int] = {}
        #: entry-point groups whose hooks have run successfully
        self._discovered: set = set()
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)

    # -- namespace management -----------------------------------------------
    def namespaces(self) -> List[str]:
        """Every known namespace (builtin and third-party added)."""
        with self._lock:
            return list(self._entries)

    def add_namespace(self, namespace: str) -> None:
        """Declare a new (third-party) namespace; a no-op when it exists."""
        with self._lock:
            self._entries.setdefault(namespace, {})

    def _check_namespace(self, namespace: str) -> None:
        if namespace not in self._entries:
            raise ValueError(
                f"unknown registry namespace {namespace!r}; "
                f"choose from {self.namespaces()} "
                "(or declare it with add_namespace)"
            )

    def _ensure(self, namespace: str) -> None:
        """Import the namespace's builtin modules once, on first lookup.

        A failed import is *not* latched: the ImportError propagates to the
        caller and the next lookup retries, instead of every later lookup
        reporting a misleading empty namespace.  Concurrent first lookups
        from other threads block until the importing thread finishes;
        re-entrant lookups from the importing thread itself (a builtin
        module resolving names mid-import) fall through to the entries
        registered so far.
        """
        self._check_namespace(namespace)
        me = threading.get_ident()
        with self._cond:
            while namespace in self._loading and self._loading[namespace] != me:
                self._cond.wait()
            if namespace in self._loaded or self._loading.get(namespace) == me:
                return
            self._loading[namespace] = me
        try:
            import importlib

            for module in _BUILTIN_MODULES.get(namespace, ()):
                importlib.import_module(module)
        except BaseException:
            with self._cond:
                del self._loading[namespace]
                self._cond.notify_all()
            raise
        with self._cond:
            del self._loading[namespace]
            self._loaded.add(namespace)
            self._cond.notify_all()

    # -- registration --------------------------------------------------------
    def register(
        self,
        namespace: str,
        name: str,
        factory: Optional[Callable[..., object]] = None,
        *,
        knobs: Optional[Mapping[str, object]] = None,
        metadata: Optional[Mapping[str, object]] = None,
        summary: str = "",
    ):
        """Register ``factory`` under ``namespace``/``name``.

        Usable directly or as a decorator::

            register("models", "tiny", build_tiny)

            @register("models", "tiny")
            def build_tiny(**kwargs): ...

        Re-registering a name replaces the previous entry (latest wins),
        mirroring the behaviour of the per-subsystem registries it absorbs.
        ``knobs`` maps the factory's keyword arguments onto the declarative
        configuration fields that feed them; ``metadata`` carries free-form
        driver-specific information (see :class:`RegistryEntry`).
        """
        self._check_namespace(namespace)

        def _register(fn: Callable[..., object]) -> Callable[..., object]:
            entry = RegistryEntry(
                namespace=namespace,
                name=name,
                factory=fn,
                knobs=dict(knobs or {}),
                metadata=dict(metadata or {}),
                summary=summary,
            )
            with self._lock:
                self._entries[namespace][name] = entry
            return fn

        if factory is not None:
            return _register(factory)
        return _register

    def unregister(self, namespace: str, name: str) -> None:
        """Remove an entry (raises ``ValueError`` when absent)."""
        self._check_namespace(namespace)
        with self._lock:
            if name not in self._entries[namespace]:
                raise ValueError(f"no {namespace!r} entry named {name!r}")
            del self._entries[namespace][name]

    # -- lookup --------------------------------------------------------------
    def entry(self, namespace: str, name: str) -> RegistryEntry:
        """The full entry for ``namespace``/``name`` (raises on unknown)."""
        self._ensure(namespace)
        with self._lock:
            try:
                return self._entries[namespace][name]
            except KeyError as exc:
                raise ValueError(
                    f"unknown {_SINGULAR.get(namespace, namespace + ' entry')} "
                    f"{name!r}; choose from {self.names(namespace)}"
                ) from exc

    def get(self, namespace: str, name: str) -> Callable[..., object]:
        """The registered factory for ``namespace``/``name``."""
        return self.entry(namespace, name).factory

    def create(self, namespace: str, name: str, *args: object, **kwargs: object):
        """Call the registered factory: ``get(namespace, name)(*args, **kwargs)``."""
        return self.get(namespace, name)(*args, **kwargs)

    def names(self, namespace: str) -> List[str]:
        """Sorted names registered under ``namespace``."""
        self._ensure(namespace)
        with self._lock:
            return sorted(self._entries[namespace])

    def knobs(self, namespace: str, name: str) -> Dict[str, object]:
        """The entry's ``{factory kwarg: config field}`` knob declaration."""
        return dict(self.entry(namespace, name).knobs)

    def metadata(self, namespace: str, name: str) -> Dict[str, object]:
        """The entry's free-form driver metadata (e.g. a dataset recipe)."""
        return dict(self.entry(namespace, name).metadata)

    def entries(self, namespace: str) -> List[RegistryEntry]:
        """Every entry of ``namespace``, sorted by name."""
        self._ensure(namespace)
        with self._lock:
            return [self._entries[namespace][n] for n in sorted(self._entries[namespace])]

    def describe(self) -> Dict[str, List[Dict[str, object]]]:
        """Full registry listing, namespace → entry descriptions."""
        return {ns: [e.describe() for e in self.entries(ns)] for ns in self.namespaces()}

    # -- entry-point discovery ----------------------------------------------
    def discover_entry_points(self, group: str = ENTRY_POINT_GROUP) -> int:
        """Load third-party registrations from installed packages.

        Scans ``importlib.metadata`` entry points of ``group``; each target
        must be a callable accepting this registry and performing its own
        :meth:`register` calls.  Returns the number of hooks invoked.
        Repeated calls for the same group are no-ops — but like the builtin
        namespace imports, a *failed* scan is not latched: the exception
        propagates and the next call retries the group.
        """
        with self._lock:
            if group in self._discovered:
                return 0
        try:
            from importlib.metadata import entry_points
        except ImportError:  # pragma: no cover - py<3.8 only
            return 0
        try:
            points = entry_points(group=group)
        except TypeError:  # pragma: no cover - py<3.10 select API
            points = entry_points().get(group, [])  # type: ignore[call-arg]
        count = 0
        for point in points:
            hook = point.load()
            hook(self)
            count += 1
        with self._lock:
            self._discovered.add(group)
        return count


#: the process-wide registry every subsystem registers into
registry = Registry()


# -- module-level conveniences (bound to the global registry) ----------------
def register(
    namespace: str,
    name: str,
    factory: Optional[Callable[..., object]] = None,
    *,
    knobs: Optional[Mapping[str, object]] = None,
    metadata: Optional[Mapping[str, object]] = None,
    summary: str = "",
):
    """Register into the global :data:`registry` (decorator-capable)."""
    return registry.register(
        namespace, name, factory, knobs=knobs, metadata=metadata, summary=summary
    )


def unregister(namespace: str, name: str) -> None:
    """Remove an entry from the global :data:`registry`."""
    registry.unregister(namespace, name)


def get(namespace: str, name: str) -> Callable[..., object]:
    """Factory lookup on the global :data:`registry`."""
    return registry.get(namespace, name)


def create(namespace: str, name: str, *args: object, **kwargs: object):
    """Build a component through the global :data:`registry`."""
    return registry.create(namespace, name, *args, **kwargs)


def names(namespace: str) -> List[str]:
    """Sorted entry names of a namespace of the global :data:`registry`."""
    return registry.names(namespace)


def knobs(namespace: str, name: str) -> Dict[str, object]:
    """Knob declaration lookup on the global :data:`registry`."""
    return registry.knobs(namespace, name)


def metadata(namespace: str, name: str) -> Dict[str, object]:
    """Driver-metadata lookup on the global :data:`registry`."""
    return registry.metadata(namespace, name)


def entry(namespace: str, name: str) -> RegistryEntry:
    """Entry lookup on the global :data:`registry`."""
    return registry.entry(namespace, name)


def discover_entry_points(group: str = ENTRY_POINT_GROUP) -> int:
    """Run third-party registration hooks against the global registry."""
    return registry.discover_entry_points(group)


__all__ = [
    "ENTRY_POINT_GROUP",
    "NAMESPACES",
    "Registry",
    "RegistryEntry",
    "create",
    "discover_entry_points",
    "entry",
    "get",
    "knobs",
    "metadata",
    "names",
    "register",
    "registry",
    "unregister",
]
