"""``repro.serve`` — validation as a service.

A long-running asyncio service over :mod:`repro.api` that handles
concurrent release / validate / sweep traffic for many tenants:

* :class:`ServeConfig` — every serving knob as one TableSerde dataclass;
* :class:`ValidationService` — admission (quotas + backpressure), the
  cross-request batching coalescer, and the worker tier that keeps
  CPU-bound Session calls off the event loop;
* :class:`BatchingCoalescer` — merges concurrent validates on one package
  into single stacked engine dispatches, bit-identical per model;
* :class:`HttpServer` / :func:`run_server` — the stdlib-only HTTP front
  end (``python -m repro serve``) with ``/healthz`` and ``/stats``;
* :class:`AsyncClient` / :class:`HttpClient` — in-process and HTTP
  clients speaking the same versioned wire envelopes.
"""

from repro.serve.client import AsyncClient, HttpClient
from repro.serve.coalescer import BatchingCoalescer, CoalescerStats
from repro.serve.config import ServeConfig
from repro.serve.http import HttpServer, run_server
from repro.serve.quota import AdmissionController, QuotaExceeded, TokenBucket
from repro.serve.service import (
    RequestTimeout,
    SERVE_BATCH_SIZE,
    ServiceDraining,
    ValidationService,
)

__all__ = [
    "AdmissionController",
    "AsyncClient",
    "BatchingCoalescer",
    "CoalescerStats",
    "HttpClient",
    "HttpServer",
    "QuotaExceeded",
    "RequestTimeout",
    "SERVE_BATCH_SIZE",
    "ServeConfig",
    "ServiceDraining",
    "TokenBucket",
    "ValidationService",
    "run_server",
]
