"""CLI entry point: ``python -m repro.serve`` (also ``python -m repro serve``).

Starts the validation service's HTTP front end and runs until SIGTERM or
SIGINT, then drains gracefully::

    python -m repro.serve --port 8420
    python -m repro.serve --config serve.toml --run-config run.toml
    python -m repro.serve --port 0 --no-coalesce   # kernel-picked port

One ``serving on http://host:port`` line is printed once the socket is
bound — drivers wait for it before sending traffic.  Exit code 0 on a
clean drain.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional

from repro.serve.config import ServeConfig
from repro.serve.http import run_server


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve release/validate/sweep over HTTP with request coalescing.",
    )
    parser.add_argument("--config", default=None, help="ServeConfig .toml/.json path")
    parser.add_argument("--host", default=None, help="listen address")
    parser.add_argument(
        "--port", type=int, default=None, help="listen port (0 picks a free one)"
    )
    parser.add_argument(
        "--window", type=float, default=None, dest="coalesce_window_s",
        help="coalescing window in seconds",
    )
    parser.add_argument(
        "--no-coalesce", action="store_true",
        help="dispatch every validate alone (benchmark baseline mode)",
    )
    parser.add_argument(
        "--max-pending", type=int, default=None, help="global in-flight request cap"
    )
    parser.add_argument(
        "--tenant-rate", type=float, default=None,
        help="per-tenant token-bucket refill rate (requests/second; 0 = off)",
    )
    parser.add_argument(
        "--artifacts-root", default=None,
        help="directory client-supplied request paths are confined to "
        "(without it, path-taking request fields are refused with 400)",
    )
    parser.add_argument(
        "--run-config", default=None, help="session RunConfig .toml/.json path"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    config = ServeConfig.load(args.config) if args.config else ServeConfig()
    overrides = {}
    if args.host is not None:
        overrides["host"] = args.host
    if args.port is not None:
        overrides["port"] = args.port
    if args.coalesce_window_s is not None:
        overrides["coalesce_window_s"] = args.coalesce_window_s
    if args.no_coalesce:
        overrides["coalesce"] = False
    if args.max_pending is not None:
        overrides["max_pending"] = args.max_pending
    if args.tenant_rate is not None:
        overrides["tenant_rate"] = args.tenant_rate
    if args.artifacts_root is not None:
        overrides["artifacts_root"] = args.artifacts_root
    if overrides:
        config = config.with_overrides(**overrides)
        config.validate()
    run_config = None
    if args.run_config is not None:
        from repro.api import RunConfig

        run_config = RunConfig.load(args.run_config)
    try:
        asyncio.run(run_server(config, run_config=run_config))
    except KeyboardInterrupt:  # pragma: no cover - signal handlers cover unix
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
