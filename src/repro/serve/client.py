"""Clients for the validation service: in-process and over HTTP.

:class:`AsyncClient` drives a :class:`~repro.serve.service.ValidationService`
directly — no socket — while still speaking the versioned wire envelopes,
so a test or embedded caller exercises exactly the serialization contract
the HTTP path uses.  Being in-process it can also hand over live model
objects (``ip=...``), which no wire format can carry.

:class:`HttpClient` is the matching stdlib-only HTTP client (raw
``asyncio.open_connection``; one request per connection, matching the
server's ``Connection: close``), used by the example script and the CI
smoke job.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple, Union

from repro.api.requests import (
    ReleaseRequest,
    SweepRequest,
    ValidateRequest,
    ValidationOutcome,
)
from repro.api.session import BlackBox
from repro.serve.service import ValidationService


class AsyncClient:
    """In-process client: wire envelopes in, wire envelopes out, no socket."""

    def __init__(self, service: ValidationService, tenant: str = "default") -> None:
        self.service = service
        self.tenant = tenant

    async def validate(
        self,
        request: Union[ValidateRequest, Dict[str, object], None] = None,
        ip: Optional[BlackBox] = None,
        **overrides: object,
    ) -> ValidationOutcome:
        """Validate through the service's admission + coalescing path.

        In-memory requests (holding a live package object) pass through
        unchanged; serialisable ones round-trip via ``to_wire`` so the
        envelope contract is exercised on every call.
        """
        if isinstance(request, ValidateRequest) and isinstance(request.package, str):
            request = request.to_wire()
        outcome = await self.service.validate(
            request, ip=ip, tenant=self.tenant, **overrides
        )
        return ValidationOutcome.from_wire(outcome.to_wire())

    async def release(
        self,
        request: Union[ReleaseRequest, Dict[str, object], None] = None,
        **overrides: object,
    ):
        if isinstance(request, ReleaseRequest):
            request = request.to_wire()
        return await self.service.release(request, tenant=self.tenant, **overrides)

    async def sweep(
        self,
        request: Union[SweepRequest, Dict[str, object], None] = None,
        **overrides: object,
    ):
        return await self.service.sweep(request, tenant=self.tenant, **overrides)

    def stats(self) -> Dict[str, object]:
        return self.service.stats()

    def healthz(self) -> Dict[str, object]:
        return self.service.healthz()


class HttpClient:
    """Minimal async HTTP/1.1 client for the serve endpoint (stdlib only)."""

    def __init__(self, host: str, port: int, tenant: str = "default") -> None:
        self.host = host
        self.port = int(port)
        self.tenant = tenant

    async def _request(
        self, method: str, path: str, body: Optional[Dict[str, object]] = None
    ) -> Tuple[int, Dict[str, object]]:
        payload = json.dumps(body).encode("utf-8") if body is not None else b""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            lines = [
                f"{method} {path} HTTP/1.1",
                f"Host: {self.host}:{self.port}",
                f"X-Tenant: {self.tenant}",
                "Connection: close",
                f"Content-Length: {len(payload)}",
                "Content-Type: application/json",
            ]
            writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + payload)
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.decode("ascii", "replace").split()
            status = int(parts[1]) if len(parts) > 1 else 500
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("ascii", "replace").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or "0")
            raw = await reader.readexactly(length) if length else await reader.read()
            data = json.loads(raw.decode("utf-8")) if raw else {}
            if headers.get("retry-after"):
                data.setdefault("retry_after", headers["retry-after"])
            return status, data
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def get(self, path: str) -> Tuple[int, Dict[str, object]]:
        return await self._request("GET", path)

    async def post(
        self, path: str, body: Dict[str, object]
    ) -> Tuple[int, Dict[str, object]]:
        return await self._request("POST", path, body)

    async def healthz(self) -> Dict[str, object]:
        _, data = await self.get("/healthz")
        return data

    async def stats(self) -> Dict[str, object]:
        _, data = await self.get("/stats")
        return data

    async def validate(
        self, request: Union[ValidateRequest, Dict[str, object]]
    ) -> Tuple[int, Dict[str, object]]:
        """POST one validate envelope; 200 bodies parse as outcome envelopes."""
        wire = request.to_wire() if isinstance(request, ValidateRequest) else request
        return await self.post("/v1/validate", wire)


__all__ = ["AsyncClient", "HttpClient"]
