"""The cross-request batching coalescer.

Concurrent validate requests usually replay the *same* validation package
against IPs that differ only in parameter values (the paper's attack sweep
shape: one victim, many perturbed copies).  Dispatching them one by one
wastes exactly the structure :meth:`repro.engine.Engine.stacked_forward`
exploits, so the service funnels every model-backed validate through this
coalescer instead:

* requests are grouped by an opaque **group key** the service derives from
  the package fingerprint
  (:meth:`~repro.validation.package.ValidationPackage.digest` — same tests,
  same references) *and* the model's architecture signature, so only
  stack-compatible models ever share a dispatch (a shape-tampered IP gets
  its own single-model dispatch and scores as tampering, never as an
  error that fails innocent co-travellers);
* within a group, requests are keyed by the IP's **parameter digest**: two
  requests for the same digest share one future (in-flight dedup — the
  second is answered by the first's dispatch, including requests that
  arrive while the dispatch is already running);
* distinct digests on the same package are fused into **one stacked
  dispatch** — ``stacked_forward(models, tests)`` — whose slice ``m`` is
  bit-identical to running model ``m`` alone, so coalescing is invisible in
  the response bytes.

The first request of a group opens a **coalescing window**
(``window_s``); co-travellers arriving inside it join the batch, and the
group flushes early when it reaches ``max_models``.  Everything here runs
on the event loop; the dispatch callable is the only thing that touches
worker threads.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.utils.logging import get_logger
from repro.validation.package import ValidationPackage

logger = get_logger("serve.coalescer")

#: async dispatch callable: (package, models) → stacked logits of shape
#: ``(len(models), num_tests, num_classes)``
StackedDispatch = Callable[
    [ValidationPackage, Sequence[object]], Awaitable[np.ndarray]
]


@dataclass
class CoalescerStats:
    """Observability counters surfaced by ``/stats``.

    ``requests`` counts every submit; ``dispatches`` counts engine calls
    actually made.  The difference is work the coalescer absorbed — either
    by stacking distinct models into one dispatch or by deduplicating
    identical in-flight requests.
    """

    requests: int = 0
    dispatches: int = 0
    #: requests answered by a future they did not create (same package, same
    #: parameter digest — pure dedup, no extra compute at all)
    deduped: int = 0
    #: models shipped across all stacked dispatches (Σ batch sizes)
    stacked_models: int = 0
    #: largest single dispatch (distinct models fused at once)
    max_stacked: int = 0
    #: multi-model dispatches that failed and were retried model-by-model
    #: (isolation: one poisoned co-traveller must not fail the group)
    fallbacks: int = 0
    #: submits deferred to a later dispatch because their tenant already
    #: held ``max_per_tenant`` slots in the open group (cross-tenant
    #: fairness: one tenant's wide sweep cannot fill ``max_models``)
    fairness_evictions: int = 0

    @property
    def coalesced(self) -> int:
        """Requests that did not pay for their own dispatch.

        Floored at zero: a failed stacked dispatch retried model-by-model
        (see ``fallbacks``) can cost more dispatches than requests.
        """
        return max(0, self.requests - self.dispatches)

    @property
    def hit_rate(self) -> float:
        """Fraction of requests absorbed into a shared dispatch."""
        return self.coalesced / self.requests if self.requests else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "dispatches": self.dispatches,
            "deduped": self.deduped,
            "coalesced": self.coalesced,
            "stacked_models": self.stacked_models,
            "max_stacked": self.max_stacked,
            "fallbacks": self.fallbacks,
            "fairness_evictions": self.fairness_evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class _Group:
    """Requests waiting on one group key's next dispatch."""

    package: ValidationPackage
    #: parameter digest → (model, shared result future, tenant)
    entries: "Dict[str, Tuple[object, asyncio.Future, str]]" = field(
        default_factory=dict
    )
    #: per-tenant-capped spillover, dispatched by the successor group:
    #: (digest, model, future, tenant) in arrival order
    overflow: "List[Tuple[str, object, asyncio.Future, str]]" = field(
        default_factory=list
    )
    flush_task: "asyncio.Task | None" = None


class BatchingCoalescer:
    """Merge concurrent validates into stacked engine dispatches.

    Parameters
    ----------
    dispatch:
        Async callable running one stacked forward; the service routes it
        through the worker tier and serialises engine access.
    window_s:
        Coalescing window opened by a group's first request.  Zero still
        yields to the event loop once, so a burst of already-queued
        requests coalesces even with no deliberate delay.
    max_models:
        Flush early once a group holds this many distinct models.
    max_per_tenant:
        Cross-tenant fairness cap: at most this many of one tenant's
        entries share a stacked dispatch; the excess is deferred (counted
        in ``fairness_evictions``) to the successor group's window, so a
        single tenant's wide sweep cannot fill ``max_models`` and starve
        co-tenants of the batch. ``None`` disables the cap.
    enabled:
        Off, every submit dispatches alone (the benchmark baseline); stats
        keep counting so the two modes stay comparable.
    """

    def __init__(
        self,
        dispatch: StackedDispatch,
        window_s: float = 0.01,
        max_models: int = 8,
        max_per_tenant: "int | None" = None,
        enabled: bool = True,
    ) -> None:
        if window_s < 0:
            raise ValueError("window_s must be non-negative")
        if max_models <= 0:
            raise ValueError("max_models must be positive")
        if max_per_tenant is not None and max_per_tenant <= 0:
            raise ValueError("max_per_tenant must be positive when given")
        self._dispatch = dispatch
        self.window_s = float(window_s)
        self.max_models = int(max_models)
        self.max_per_tenant = max_per_tenant
        self.enabled = bool(enabled)
        self.stats = CoalescerStats()
        self._groups: Dict[str, _Group] = {}
        #: (group key, parameter digest) → in-flight result future; entries
        #: live until their dispatch resolves, so late duplicates of a
        #: running dispatch still dedup instead of re-dispatching
        self._futures: Dict[Tuple[str, str], asyncio.Future] = {}
        self._tasks: "set[asyncio.Task]" = set()

    async def submit(
        self,
        group_key: str,
        package: ValidationPackage,
        digest: str,
        model: object,
        tenant: str = "default",
    ) -> np.ndarray:
        """Observed logits for ``model`` on ``package``'s tests.

        ``group_key`` is opaque here; the service builds it from the package
        fingerprint plus the model's architecture signature, so everything
        sharing a key is stack-compatible.  Identical concurrent submits
        (same key, same digest) share one dispatch; distinct digests on the
        same key fuse into one stacked dispatch after the coalescing window.
        ``tenant`` feeds the per-dispatch fairness cap (``max_per_tenant``).
        """
        self.stats.requests += 1
        if not self.enabled:
            self.stats.dispatches += 1
            self.stats.stacked_models += 1
            self.stats.max_stacked = max(self.stats.max_stacked, 1)
            stacked = await self._dispatch(package, [model])
            return stacked[0]

        key = (group_key, digest)
        existing = self._futures.get(key)
        if existing is not None:
            self.stats.deduped += 1
            return await asyncio.shield(existing)

        loop = asyncio.get_running_loop()
        group = self._groups.get(group_key)
        if group is None:
            group = _Group(package=package)
            self._groups[group_key] = group
            group.flush_task = loop.create_task(self._flush_after_window(group_key))
        future: asyncio.Future = loop.create_future()
        self._futures[key] = future
        joined = self._join(group, digest, model, future, tenant)
        if joined and len(group.entries) >= self.max_models:
            self._flush(group_key)
        # shielded: one timed-out waiter must not cancel the shared result
        return await asyncio.shield(future)

    def _join(
        self,
        group: _Group,
        digest: str,
        model: object,
        future: asyncio.Future,
        tenant: str,
    ) -> bool:
        """Seat an entry in ``group``, or defer it when its tenant is at cap.

        Returns ``True`` when the entry joined the open dispatch; deferred
        entries (``False``) ride the group's ``overflow`` into the successor
        group that :meth:`_flush` opens, keeping their already-registered
        dedup future alive the whole time.
        """
        if self.max_per_tenant is not None:
            seated = sum(1 for _, _, t in group.entries.values() if t == tenant)
            if seated >= self.max_per_tenant:
                self.stats.fairness_evictions += 1
                group.overflow.append((digest, model, future, tenant))
                return False
        group.entries[digest] = (model, future, tenant)
        return True

    async def _flush_after_window(self, group_key: str) -> None:
        try:
            await asyncio.sleep(self.window_s)
        except asyncio.CancelledError:
            return
        self._flush(group_key, from_window=True)

    def _flush(self, group_key: str, from_window: bool = False) -> None:
        group = self._groups.pop(group_key, None)
        if group is None:
            return
        if not from_window and group.flush_task is not None:
            group.flush_task.cancel()
        loop = asyncio.get_running_loop()
        if group.overflow:
            # fairness-deferred entries open the successor group immediately,
            # with its own window, so they wait at most one extra dispatch
            successor = _Group(package=group.package)
            self._groups[group_key] = successor
            successor.flush_task = loop.create_task(
                self._flush_after_window(group_key)
            )
            for digest, model, future, tenant in group.overflow:
                self._join(successor, digest, model, future, tenant)
        task = loop.create_task(self._run_dispatch(group_key, group))
        # keep a strong reference until done (asyncio only holds weak ones)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        successor = self._groups.get(group_key)
        if successor is not None and len(successor.entries) >= self.max_models:
            self._flush(group_key)

    async def _run_dispatch(self, group_key: str, group: _Group) -> None:
        digests = list(group.entries)
        models = [group.entries[d][0] for d in digests]
        self.stats.dispatches += 1
        self.stats.stacked_models += len(models)
        self.stats.max_stacked = max(self.stats.max_stacked, len(models))
        if len(models) > 1:
            logger.info(
                "coalesced dispatch: %d models on group %s",
                len(models),
                group_key[:12],
            )
        try:
            stacked = await self._dispatch(group.package, models)
        except Exception as exc:
            if len(models) == 1:
                for digest in digests:
                    _, future, _ = group.entries[digest]
                    if not future.done():
                        future.set_exception(exc)
            else:
                # the grouping key should make this unreachable, but one
                # poisoned model must never fail its co-travellers: retry
                # each model alone and settle every future on its own merits
                logger.warning(
                    "stacked dispatch of %d models failed (%s); "
                    "retrying each model alone",
                    len(models),
                    exc,
                )
                self.stats.fallbacks += 1
                for digest in digests:
                    model, future, _ = group.entries[digest]
                    self.stats.dispatches += 1
                    self.stats.stacked_models += 1
                    try:
                        single = await self._dispatch(group.package, [model])
                    except Exception as single_exc:
                        if not future.done():
                            future.set_exception(single_exc)
                    else:
                        if not future.done():
                            future.set_result(single[0])
        else:
            for index, digest in enumerate(digests):
                _, future, _ = group.entries[digest]
                if not future.done():
                    future.set_result(stacked[index])
        finally:
            for digest in digests:
                self._futures.pop((group_key, digest), None)

    async def drain(self) -> None:
        """Flush every open window and wait for in-flight dispatches.

        Loops because flushing a group with fairness-deferred overflow opens
        a successor group, which must flush (and dispatch) too.
        """
        while self._groups or self._tasks:
            for group_key in list(self._groups):
                self._flush(group_key)
            while self._tasks:
                await asyncio.gather(*list(self._tasks), return_exceptions=True)


__all__ = ["BatchingCoalescer", "CoalescerStats", "StackedDispatch"]
