"""Configuration of the validation service.

A :class:`ServeConfig` gathers every serving-layer knob — listen address,
admission limits, per-tenant quotas, the coalescing window, worker-tier
sizing, drain behaviour — as one :class:`~repro.api.config.TableSerde`
dataclass, so a service resolves from a plain dict, keyword arguments or a
TOML/JSON file (``[serve]`` table) exactly like every other façade object::

    config = ServeConfig(port=8420, coalesce_window_s=0.01)
    config = ServeConfig.load("serve.toml")

The engine-side knobs (backend, dtype, batch size, fault policy) stay in
:class:`~repro.api.config.RunConfig`; a service owns one of each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.api.config import TableSerde


@dataclass(frozen=True)
class ServeConfig(TableSerde):
    """How a :class:`~repro.serve.service.ValidationService` admits, merges
    and executes requests.

    Attributes
    ----------
    host / port:
        HTTP listen address (``port=0`` picks a free port; the bound port is
        reported by :meth:`~repro.serve.http.HttpServer.start`).
    max_pending:
        Global cap on requests admitted but not yet finished; beyond it every
        tenant sees 429 until the backlog drains (load shedding).
    tenant_queue_limit:
        Per-tenant cap on in-flight requests — one misbehaving tenant cannot
        occupy the whole pending budget.
    tenant_rate / tenant_burst:
        Token-bucket refill rate (requests/second) and bucket capacity per
        tenant.  ``tenant_rate=0`` disables rate limiting (queue caps still
        apply).
    retry_after_s:
        ``Retry-After`` hint attached to 429 responses.
    coalesce:
        Master switch for the cross-request batching coalescer; off, every
        validate dispatches alone (the benchmark's baseline mode).
    coalesce_window_s:
        How long the first validate of a batch waits for co-travellers
        before the merged dispatch fires.  Zero still merges whatever is
        queued at flush time (pure in-flight dedup).
    max_stacked_models:
        Cap on distinct models fused into one stacked dispatch; arrivals
        beyond it flush immediately and start a new batch.
    tenant_stack_limit:
        Cross-tenant fairness: at most this many of one tenant's models
        share a stacked dispatch; the excess waits for the next window
        (``fairness_evictions`` in ``/stats`` counts the deferrals), so one
        tenant's wide sweep cannot fill ``max_stacked_models`` and starve
        co-tenants.  ``None`` (the default) disables the cap.
    executor_workers:
        Threads in the worker tier that runs CPU-bound Session calls off the
        event loop.
    request_timeout_s:
        Per-request wall-clock budget; expiry maps to HTTP 504.  ``None``
        waits indefinitely.
    read_timeout_s:
        Deadline for reading one HTTP request (header + body) off a
        connection.  Idle or trickling clients are dropped at expiry, so a
        stalled socket can never block graceful drain.
    drain_timeout_s:
        Graceful-shutdown budget: on SIGTERM the listener closes and
        in-flight requests get this long to finish before cancellation.
    artifacts_root:
        The only directory the HTTP surface may touch through path-taking
        request fields (``package``/``model_path``/``save_dir``/``store``…).
        Relative request paths resolve against it; paths escaping it are
        refused with 400.  ``None`` (the default) rejects every
        client-supplied filesystem path outright — in-process callers
        (:class:`~repro.serve.client.AsyncClient`) are unaffected.
    """

    _TABLE = "serve"

    host: str = "127.0.0.1"
    port: int = 8420
    max_pending: int = 64
    tenant_queue_limit: int = 16
    tenant_rate: float = 0.0
    tenant_burst: int = 16
    retry_after_s: float = 1.0
    coalesce: bool = True
    coalesce_window_s: float = 0.01
    max_stacked_models: int = 8
    tenant_stack_limit: Optional[int] = None
    executor_workers: int = 2
    request_timeout_s: Optional[float] = 120.0
    read_timeout_s: float = 10.0
    drain_timeout_s: float = 30.0
    artifacts_root: Optional[str] = None

    def validate(self) -> None:
        if not self.host:
            raise ValueError("host is required")
        if not 0 <= self.port <= 65535:
            raise ValueError("port must be in 0..65535")
        if self.max_pending <= 0:
            raise ValueError("max_pending must be positive")
        if self.tenant_queue_limit <= 0:
            raise ValueError("tenant_queue_limit must be positive")
        if self.tenant_rate < 0:
            raise ValueError("tenant_rate must be non-negative")
        if self.tenant_burst <= 0:
            raise ValueError("tenant_burst must be positive")
        if self.retry_after_s < 0:
            raise ValueError("retry_after_s must be non-negative")
        if self.coalesce_window_s < 0:
            raise ValueError("coalesce_window_s must be non-negative")
        if self.max_stacked_models <= 0:
            raise ValueError("max_stacked_models must be positive")
        if self.tenant_stack_limit is not None and self.tenant_stack_limit <= 0:
            raise ValueError("tenant_stack_limit must be positive when given")
        if self.executor_workers <= 0:
            raise ValueError("executor_workers must be positive")
        if self.request_timeout_s is not None and self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive when given")
        if self.read_timeout_s <= 0:
            raise ValueError("read_timeout_s must be positive")
        if self.drain_timeout_s <= 0:
            raise ValueError("drain_timeout_s must be positive")
        if self.artifacts_root is not None and not self.artifacts_root:
            raise ValueError("artifacts_root must be a non-empty path when given")


__all__ = ["ServeConfig"]
