"""Stdlib-only HTTP/1.1 front end over :class:`ValidationService`.

A deliberately small server on :func:`asyncio.start_server` — no web
framework, no new dependencies — speaking JSON wire envelopes
(:mod:`repro.api.wire`):

=======  ==============  ===============================================
method   path            body / response
=======  ==============  ===============================================
GET      ``/healthz``    liveness: ``{"status": "ok" | "draining"}``
GET      ``/stats``      coalescer, admission, engine and fault counters
POST     ``/v1/validate``  ``validate`` envelope → ``outcome`` envelope
POST     ``/v1/release``   ``release`` envelope (+ optional top-level
                           ``save_dir``) → ``release_summary`` envelope
POST     ``/v1/sweep``     ``sweep`` envelope → ``sweep_summary`` envelope
=======  ==============  ===============================================

The tenant is the ``X-Tenant`` request header (``default`` otherwise).
Admission refusals map to ``429`` with a ``Retry-After`` header; draining
to ``503``; request timeouts to ``504``; malformed envelopes to ``400``
with the :func:`~repro.api.wire.open_envelope` message verbatim.

Shutdown is graceful: SIGTERM/SIGINT close the listener, in-flight
requests finish inside the service's ``drain_timeout_s``, then the worker
tier and session are released.
"""

from __future__ import annotations

import asyncio
import json
import signal
from typing import Dict, Optional, Tuple

from repro.api.wire import envelope
from repro.serve.config import ServeConfig
from repro.serve.quota import QuotaExceeded
from repro.serve.service import (
    RequestTimeout,
    ServiceDraining,
    ValidationService,
)
from repro.utils.logging import get_logger

logger = get_logger("serve.http")

#: request bodies above this many bytes are refused with 413
MAX_BODY_BYTES = 8 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _response_bytes(
    status: int, body: Dict[str, object], headers: Optional[Dict[str, str]] = None
) -> bytes:
    payload = json.dumps(body).encode("utf-8")
    lines = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(payload)}",
        "Connection: close",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + payload


class _HttpError(Exception):
    """Internal: carries a ready-to-send error response."""

    def __init__(
        self,
        status: int,
        message: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.headers = headers or {}


async def _read_request(
    reader: asyncio.StreamReader,
) -> Tuple[str, str, Dict[str, str], bytes]:
    """Parse one HTTP/1.1 request: ``(method, path, headers, body)``."""
    request_line = await reader.readline()
    if not request_line:
        raise ConnectionError("empty request")
    parts = request_line.decode("ascii", "replace").split()
    if len(parts) < 2:
        raise _HttpError(400, "malformed request line")
    method, path = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("ascii", "replace").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise _HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


class HttpServer:
    """One listening socket in front of one :class:`ValidationService`."""

    def __init__(
        self, service: ValidationService, config: Optional[ServeConfig] = None
    ) -> None:
        self.service = service
        self.config = config or service.config
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop = asyncio.Event()

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the kernel's pick)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle, host=self.config.host, port=self.config.port
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        logger.info("serving on http://%s:%d", host, port)
        return host, port

    def request_stop(self) -> None:
        """Signal-safe shutdown trigger (the SIGTERM/SIGINT handler)."""
        self._stop.set()

    async def serve_until_stopped(
        self,
        install_signal_handlers: bool = True,
        on_ready: Optional[object] = None,
    ) -> None:
        """Accept requests until stopped, then drain gracefully.

        Signal handlers are installed *before* the socket binds (and before
        ``on_ready(host, port)`` fires), so a driver that sends SIGTERM the
        moment it sees the ready line can never race the handler.
        """
        loop = asyncio.get_running_loop()
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_stop)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass  # non-unix event loops
        if self._server is None:
            host, port = await self.start()
        else:
            host, port = self._server.sockets[0].getsockname()[:2]
        if callable(on_ready):
            on_ready(host, port)
        await self._stop.wait()
        await self.stop()

    async def stop(self) -> None:
        """Close the listener, then drain the service."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        logger.info("listener closed; draining in-flight requests")
        await self.service.drain()

    # -- request handling ----------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, headers, body = await _read_request(reader)
            except (ConnectionError, asyncio.IncompleteReadError):
                return
            except _HttpError as exc:
                writer.write(
                    _response_bytes(exc.status, {"error": str(exc)}, exc.headers)
                )
                await writer.drain()
                return
            try:
                status, payload, extra = await self._route(
                    method, path, headers, body
                )
            except _HttpError as exc:
                status, payload, extra = (
                    exc.status,
                    {"error": str(exc)},
                    exc.headers,
                )
            except QuotaExceeded as exc:
                status, payload, extra = (
                    429,
                    {"error": str(exc), "retry_after_s": exc.retry_after_s},
                    {"Retry-After": f"{max(1, round(exc.retry_after_s))}"},
                )
            except ServiceDraining as exc:
                status, payload, extra = 503, {"error": str(exc)}, {}
            except RequestTimeout as exc:
                status, payload, extra = 504, {"error": str(exc)}, {}
            except (ValueError, TypeError) as exc:
                status, payload, extra = 400, {"error": str(exc)}, {}
            except Exception as exc:  # pragma: no cover - defensive
                logger.error("unhandled request error: %s", exc)
                status, payload, extra = 500, {"error": str(exc)}, {}
            writer.write(_response_bytes(status, payload, extra))
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _route(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        tenant = headers.get("x-tenant", "default")
        if path == "/healthz":
            if method != "GET":
                raise _HttpError(405, "use GET /healthz")
            return 200, self.service.healthz(), {}
        if path == "/stats":
            if method != "GET":
                raise _HttpError(405, "use GET /stats")
            return 200, self.service.stats(), {}
        if path in ("/v1/validate", "/v1/release", "/v1/sweep"):
            if method != "POST":
                raise _HttpError(405, f"use POST {path}")
            try:
                data = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise _HttpError(400, f"request body is not valid JSON: {exc}")
            if not isinstance(data, dict):
                raise _HttpError(400, "request body must be a JSON object")
            if path == "/v1/validate":
                outcome = await self.service.validate(data, tenant=tenant)
                return 200, outcome.to_wire(), {}
            if path == "/v1/release":
                save_dir = data.pop("save_dir", None)
                released = await self.service.release(data, tenant=tenant)
                summary: Dict[str, object] = {
                    "num_tests": released.num_tests,
                    "coverage": released.coverage,
                    "test_accuracy": released.test_accuracy,
                    "description": released.describe(),
                }
                if save_dir is not None:
                    paths = await self.service._in_executor(
                        released.save, str(save_dir)
                    )
                    summary["saved"] = {k: str(v) for k, v in paths.items()}
                return 200, envelope("release_summary", summary), {}
            sweep_summary = await self.service.sweep(data, tenant=tenant)
            return 200, envelope(
                "sweep_summary",
                {
                    "total": sweep_summary.total,
                    "executed": sweep_summary.executed,
                    "skipped": sweep_summary.skipped,
                    "failed": sweep_summary.failed,
                    "wall_s": sweep_summary.wall_s,
                    "description": sweep_summary.describe(),
                },
            ), {}
        raise _HttpError(404, f"unknown path {path!r}")


async def run_server(
    config: Optional[ServeConfig] = None,
    run_config: Optional[object] = None,
    ready_message: bool = True,
) -> None:
    """Build a service + server and run until SIGTERM/SIGINT.

    The ``python -m repro serve`` entry point.  Prints one
    ``serving on http://host:port`` line to stdout when the socket is bound
    (drivers and tests wait for it).
    """
    config = config or ServeConfig()
    service = ValidationService(config, run_config=run_config)
    server = HttpServer(service, config)

    def ready(host: str, port: int) -> None:
        if ready_message:
            print(f"serving on http://{host}:{port}", flush=True)

    await server.serve_until_stopped(on_ready=ready)


__all__ = ["HttpServer", "MAX_BODY_BYTES", "run_server"]
