"""Stdlib-only HTTP/1.1 front end over :class:`ValidationService`.

A deliberately small server on :func:`asyncio.start_server` — no web
framework, no new dependencies — speaking JSON wire envelopes
(:mod:`repro.api.wire`):

=======  ==============  ===============================================
method   path            body / response
=======  ==============  ===============================================
GET      ``/healthz``    liveness: ``{"status": "ok" | "draining"}``
GET      ``/stats``      coalescer, admission, engine and fault counters
POST     ``/v1/validate``  ``validate`` envelope → ``outcome`` envelope
POST     ``/v1/release``   ``release`` envelope (+ optional top-level
                           ``save_dir``) → ``release_summary`` envelope
POST     ``/v1/sweep``     ``sweep`` envelope → ``sweep_summary`` envelope
POST     ``/v1/query``     ``query`` envelope (model + input batch) →
                           ``query_result`` envelope (float64 logits) —
                           the online verifier's billable endpoint
=======  ==============  ===============================================

The tenant is the ``X-Tenant`` request header (``default`` otherwise).
Admission refusals map to ``429`` with a ``Retry-After`` header; draining
to ``503``; request timeouts to ``504``; malformed envelopes to ``400``
with the :func:`~repro.api.wire.open_envelope` message verbatim.

Filesystem paths in request bodies — validate's ``package``/``model_path``,
release's ``save_dir``, sweep's ``spec``/``store``/``report`` — are
confined to :attr:`~repro.serve.config.ServeConfig.artifacts_root`:
relative paths resolve against it, escapes are refused with 400, and a
server configured without one rejects client-supplied paths entirely.

Shutdown is graceful: SIGTERM/SIGINT close the listener, in-flight
requests finish inside the service's ``drain_timeout_s``, then the worker
tier and session are released.
"""

from __future__ import annotations

import asyncio
import json
import signal
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.api.wire import envelope
from repro.serve.config import ServeConfig
from repro.serve.quota import QuotaExceeded
from repro.serve.service import (
    RequestTimeout,
    ServiceDraining,
    ValidationService,
)
from repro.utils.logging import get_logger

logger = get_logger("serve.http")

#: request bodies above this many bytes are refused with 413
MAX_BODY_BYTES = 8 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _response_bytes(
    status: int, body: Dict[str, object], headers: Optional[Dict[str, str]] = None
) -> bytes:
    payload = json.dumps(body).encode("utf-8")
    lines = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(payload)}",
        "Connection: close",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + payload


class _HttpError(Exception):
    """Internal: carries a ready-to-send error response."""

    def __init__(
        self,
        status: int,
        message: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.headers = headers or {}


async def _read_request(
    reader: asyncio.StreamReader,
) -> Tuple[str, str, Dict[str, str], bytes]:
    """Parse one HTTP/1.1 request: ``(method, path, headers, body)``."""
    request_line = await reader.readline()
    if not request_line:
        raise ConnectionError("empty request")
    parts = request_line.decode("ascii", "replace").split()
    if len(parts) < 2:
        raise _HttpError(400, "malformed request line")
    method, path = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("ascii", "replace").partition(":")
        headers[name.strip().lower()] = value.strip()
    raw_length = headers.get("content-length", "").strip() or "0"
    try:
        length = int(raw_length)
    except ValueError:
        raise _HttpError(400, f"malformed Content-Length header {raw_length!r}")
    if length < 0:
        raise _HttpError(400, "Content-Length must be non-negative")
    if length > MAX_BODY_BYTES:
        raise _HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


class HttpServer:
    """One listening socket in front of one :class:`ValidationService`."""

    def __init__(
        self, service: ValidationService, config: Optional[ServeConfig] = None
    ) -> None:
        self.service = service
        self.config = config or service.config
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop = asyncio.Event()

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the kernel's pick)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle, host=self.config.host, port=self.config.port
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        logger.info("serving on http://%s:%d", host, port)
        return host, port

    def request_stop(self) -> None:
        """Signal-safe shutdown trigger (the SIGTERM/SIGINT handler)."""
        self._stop.set()

    async def serve_until_stopped(
        self,
        install_signal_handlers: bool = True,
        on_ready: Optional[object] = None,
    ) -> None:
        """Accept requests until stopped, then drain gracefully.

        Signal handlers are installed *before* the socket binds (and before
        ``on_ready(host, port)`` fires), so a driver that sends SIGTERM the
        moment it sees the ready line can never race the handler.
        """
        loop = asyncio.get_running_loop()
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_stop)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass  # non-unix event loops
        if self._server is None:
            host, port = await self.start()
        else:
            host, port = self._server.sockets[0].getsockname()[:2]
        if callable(on_ready):
            on_ready(host, port)
        await self._stop.wait()
        await self.stop()

    async def stop(self) -> None:
        """Close the listener, then drain the service."""
        if self._server is not None:
            self._server.close()
            try:
                # on Python >= 3.12.1 wait_closed() waits for every
                # connection handler to finish; bound it so a slow client
                # can never stall shutdown — in-flight work is what
                # service.drain() (with its own deadline) is for
                await asyncio.wait_for(self._server.wait_closed(), timeout=1.0)
            except asyncio.TimeoutError:
                logger.info("listener handlers still busy; draining anyway")
            self._server = None
        logger.info("listener closed; draining in-flight requests")
        await self.service.drain()

    # -- request handling ----------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                # deadline on the read: an idle or trickling client is
                # dropped instead of pinning its handler (and, with it,
                # graceful drain) open forever
                method, path, headers, body = await asyncio.wait_for(
                    _read_request(reader), timeout=self.config.read_timeout_s
                )
            except (
                ConnectionError,
                asyncio.IncompleteReadError,
                asyncio.TimeoutError,
            ):
                return
            except _HttpError as exc:
                writer.write(
                    _response_bytes(exc.status, {"error": str(exc)}, exc.headers)
                )
                await writer.drain()
                return
            try:
                status, payload, extra = await self._route(
                    method, path, headers, body
                )
            except _HttpError as exc:
                status, payload, extra = (
                    exc.status,
                    {"error": str(exc)},
                    exc.headers,
                )
            except QuotaExceeded as exc:
                status, payload, extra = (
                    429,
                    {"error": str(exc), "retry_after_s": exc.retry_after_s},
                    {"Retry-After": f"{max(1, round(exc.retry_after_s))}"},
                )
            except ServiceDraining as exc:
                status, payload, extra = 503, {"error": str(exc)}, {}
            except RequestTimeout as exc:
                status, payload, extra = 504, {"error": str(exc)}, {}
            except (ValueError, TypeError) as exc:
                status, payload, extra = 400, {"error": str(exc)}, {}
            except Exception as exc:  # pragma: no cover - defensive
                logger.error("unhandled request error: %s", exc)
                status, payload, extra = 500, {"error": str(exc)}, {}
            writer.write(_response_bytes(status, payload, extra))
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    # -- client-supplied filesystem paths ------------------------------------
    def _resolve_request_path(self, value: object, field: str) -> str:
        """Confine one client-supplied path to ``artifacts_root``.

        Relative paths resolve against the root; anything escaping it (or
        any path at all when no root is configured) maps to 400.  The HTTP
        surface is multi-tenant — it must never read or write wherever the
        server process happens to have permissions.
        """
        root = self.config.artifacts_root
        if root is None:
            raise _HttpError(
                400,
                f"{field!r} is not accepted: this server has no "
                "artifacts_root configured",
            )
        if not isinstance(value, str) or not value:
            raise _HttpError(400, f"{field!r} must be a non-empty string path")
        root_path = Path(root).resolve()
        candidate = Path(value)
        resolved = (
            candidate if candidate.is_absolute() else root_path / candidate
        ).resolve()
        if not (resolved == root_path or resolved.is_relative_to(root_path)):
            raise _HttpError(
                400, f"{field!r} escapes the configured artifacts_root"
            )
        return str(resolved)

    @staticmethod
    def _request_fields(data: Dict[str, object]) -> Dict[str, object]:
        """The field dict of a request body (unwraps a wire envelope)."""
        inner = data.get("body")
        if "schema_version" in data and isinstance(inner, dict):
            return inner
        return data

    def _guard_paths(self, data: Dict[str, object], *fields: str) -> None:
        """Rewrite path-taking fields to their confined absolute form."""
        inner = self._request_fields(data)
        for field in fields:
            value = inner.get(field)
            # non-strings (an inline sweep spec dict, an in-memory package)
            # are not paths; the request layer validates them downstream
            if isinstance(value, str) and value:
                inner[field] = self._resolve_request_path(value, field)

    async def _route(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        tenant = headers.get("x-tenant", "default")
        if path == "/healthz":
            if method != "GET":
                raise _HttpError(405, "use GET /healthz")
            return 200, self.service.healthz(), {}
        if path == "/stats":
            if method != "GET":
                raise _HttpError(405, "use GET /stats")
            return 200, self.service.stats(), {}
        if path in ("/v1/validate", "/v1/release", "/v1/sweep", "/v1/query"):
            if method != "POST":
                raise _HttpError(405, f"use POST {path}")
            try:
                data = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise _HttpError(400, f"request body is not valid JSON: {exc}")
            if not isinstance(data, dict):
                raise _HttpError(400, "request body must be a JSON object")
            if path == "/v1/query":
                self._guard_paths(data, "model_path")
                fields = self._request_fields(data)
                result = await self.service.query(fields, tenant=tenant)
                return 200, envelope("query_result", result), {}
            if path == "/v1/validate":
                self._guard_paths(data, "package", "model_path")
                outcome = await self.service.validate(data, tenant=tenant)
                return 200, outcome.to_wire(), {}
            if path == "/v1/release":
                save_dir = data.pop("save_dir", None)
                if save_dir is not None:
                    # resolve before the (expensive) release runs
                    save_dir = self._resolve_request_path(save_dir, "save_dir")
                released = await self.service.release(data, tenant=tenant)
                summary: Dict[str, object] = {
                    "num_tests": released.num_tests,
                    "coverage": released.coverage,
                    "test_accuracy": released.test_accuracy,
                    "description": released.describe(),
                }
                if save_dir is not None:
                    paths = await self.service._in_executor(
                        released.save, str(save_dir)
                    )
                    summary["saved"] = {k: str(v) for k, v in paths.items()}
                return 200, envelope("release_summary", summary), {}
            # sweep always writes its result store: pin the default path
            # explicitly so it, too, resolves inside artifacts_root
            self._request_fields(data).setdefault(
                "store", "campaign-results.jsonl"
            )
            self._guard_paths(data, "spec", "store", "report")
            sweep_summary = await self.service.sweep(data, tenant=tenant)
            return 200, envelope(
                "sweep_summary",
                {
                    "total": sweep_summary.total,
                    "executed": sweep_summary.executed,
                    "skipped": sweep_summary.skipped,
                    "failed": sweep_summary.failed,
                    "wall_s": sweep_summary.wall_s,
                    "description": sweep_summary.describe(),
                },
            ), {}
        raise _HttpError(404, f"unknown path {path!r}")


async def run_server(
    config: Optional[ServeConfig] = None,
    run_config: Optional[object] = None,
    ready_message: bool = True,
) -> None:
    """Build a service + server and run until SIGTERM/SIGINT.

    The ``python -m repro serve`` entry point.  Prints one
    ``serving on http://host:port`` line to stdout when the socket is bound
    (drivers and tests wait for it).
    """
    config = config or ServeConfig()
    service = ValidationService(config, run_config=run_config)
    server = HttpServer(service, config)

    def ready(host: str, port: int) -> None:
        if ready_message:
            print(f"serving on http://{host}:{port}", flush=True)

    await server.serve_until_stopped(on_ready=ready)


__all__ = ["HttpServer", "MAX_BODY_BYTES", "run_server"]
