"""Request admission: per-tenant token buckets and bounded in-flight queues.

The service is multi-tenant (the ``X-Tenant`` request header names the
tenant); admission decides, *before any compute is queued*, whether a
request may enter.  Three independent limits apply, checked in order:

1. a global cap on requests admitted but not yet finished
   (``max_pending`` — protects the event loop and worker tier);
2. a per-tenant cap on in-flight requests (``tenant_queue_limit`` — one
   noisy tenant cannot occupy the whole pending budget);
3. a per-tenant token bucket (``tenant_rate``/``tenant_burst`` — sustained
   request rate).

A rejected request raises :class:`QuotaExceeded`, which the HTTP layer maps
to ``429 Too Many Requests`` with a ``Retry-After`` hint.  Everything here
is synchronous and lock-free because admission runs on the event loop
thread only; the clock is injectable so tests control time exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict


class QuotaExceeded(Exception):
    """A request was refused admission; retry after ``retry_after_s``."""

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, capacity ``burst``.

    ``rate=0`` disables the bucket (every ``take`` succeeds).  The bucket
    starts full, so a quiet tenant can burst up to ``burst`` requests
    instantly.
    """

    def __init__(
        self,
        rate: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate < 0:
            raise ValueError("rate must be non-negative")
        if burst <= 0:
            raise ValueError("burst must be positive")
        self.rate = float(rate)
        self.burst = int(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._updated) * self.rate
        )
        self._updated = now

    def take(self) -> bool:
        """Consume one token if available; ``False`` when the bucket is dry."""
        if self.rate == 0:
            return True
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def seconds_until_token(self) -> float:
        """How long until one token will be available (0 when it already is)."""
        if self.rate == 0:
            return 0.0
        self._refill()
        if self._tokens >= 1.0:
            return 0.0
        return (1.0 - self._tokens) / self.rate


@dataclass
class TenantCounters:
    """Per-tenant admission statistics surfaced by ``/stats``."""

    admitted: int = 0
    rejected: int = 0
    in_flight: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "admitted": self.admitted,
            "rejected": self.rejected,
            "in_flight": self.in_flight,
        }


@dataclass
class AdmissionController:
    """Gatekeeper combining the global cap, tenant caps and token buckets.

    Usage is a strict ``admit`` / ``release`` pair per request::

        controller.admit("tenant-a")     # raises QuotaExceeded on refusal
        try:
            ... run the request ...
        finally:
            controller.release("tenant-a")
    """

    max_pending: int = 64
    tenant_queue_limit: int = 16
    tenant_rate: float = 0.0
    tenant_burst: int = 16
    retry_after_s: float = 1.0
    clock: Callable[[], float] = time.monotonic
    _pending: int = 0
    _buckets: Dict[str, TokenBucket] = field(default_factory=dict)
    _counters: Dict[str, TenantCounters] = field(default_factory=dict)

    def _tenant(self, tenant: str) -> TenantCounters:
        return self._counters.setdefault(tenant, TenantCounters())

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.tenant_rate, self.tenant_burst, self.clock)
            self._buckets[tenant] = bucket
        return bucket

    @property
    def pending(self) -> int:
        """Requests admitted and not yet released (queue depth)."""
        return self._pending

    def admit(self, tenant: str) -> None:
        """Admit one request for ``tenant`` or raise :class:`QuotaExceeded`."""
        counters = self._tenant(tenant)
        if self._pending >= self.max_pending:
            counters.rejected += 1
            raise QuotaExceeded(
                f"server is at capacity ({self.max_pending} pending requests)",
                self.retry_after_s,
            )
        if counters.in_flight >= self.tenant_queue_limit:
            counters.rejected += 1
            raise QuotaExceeded(
                f"tenant {tenant!r} already has {counters.in_flight} requests "
                f"in flight (limit {self.tenant_queue_limit})",
                self.retry_after_s,
            )
        bucket = self._bucket(tenant)
        if not bucket.take():
            counters.rejected += 1
            raise QuotaExceeded(
                f"tenant {tenant!r} exceeded its request rate "
                f"({self.tenant_rate:g}/s, burst {self.tenant_burst})",
                max(self.retry_after_s, bucket.seconds_until_token()),
            )
        counters.admitted += 1
        counters.in_flight += 1
        self._pending += 1

    def release(self, tenant: str) -> None:
        """Mark one admitted request for ``tenant`` as finished."""
        counters = self._tenant(tenant)
        counters.in_flight = max(0, counters.in_flight - 1)
        self._pending = max(0, self._pending - 1)

    def snapshot(self) -> Dict[str, object]:
        """Admission state for ``/stats``."""
        return {
            "pending": self._pending,
            "max_pending": self.max_pending,
            "tenants": {
                tenant: counters.to_dict()
                for tenant, counters in sorted(self._counters.items())
            },
        }


__all__ = [
    "AdmissionController",
    "QuotaExceeded",
    "TenantCounters",
    "TokenBucket",
]
