"""The validation service: admission → coalescing → worker-tier execution.

:class:`ValidationService` is the transport-independent core shared by the
HTTP front end (:mod:`repro.serve.http`) and the in-process
:class:`~repro.serve.client.AsyncClient`.  It owns exactly one
:class:`~repro.api.Session` and runs the three paper operations
concurrently for many tenants:

* **admission** — every request passes the
  :class:`~repro.serve.quota.AdmissionController` first (global backlog
  cap, per-tenant in-flight cap, per-tenant token bucket); refusals carry a
  ``Retry-After`` hint and cost no compute;
* **coalescing** — model-backed validates route through the
  :class:`~repro.serve.coalescer.BatchingCoalescer`, which merges
  concurrent requests on one package into single stacked dispatches
  (bit-identical per-model slices, see the coalescer docs); the group key
  pairs the package fingerprint with the model's **architecture
  signature** (input shape plus per-layer types and output shapes), so
  only stack-compatible models fuse — a shape-tampered IP dispatches
  alone and scores as tampering instead of erroring out its
  co-travellers;
* **worker tier** — CPU-bound Session work runs on a
  :class:`~concurrent.futures.ThreadPoolExecutor` via
  ``loop.run_in_executor``, keeping the event loop responsive; engine
  dispatches are additionally serialised by one lock because the numerical
  kernels reuse per-engine workspace buffers (the Session docstring's
  concurrency contract);
* **draining** — :meth:`drain` stops admitting, lets in-flight work finish
  inside ``drain_timeout_s``, flushes the coalescer and closes the session
  (the HTTP layer calls it from its SIGTERM handler).

Determinism: the serve session always runs with ``batch_size=256`` — the
same chunk size :meth:`repro.nn.model.Sequential.predict` uses — so a
validate answered through a coalesced stacked dispatch is byte-identical
to the in-process :func:`repro.validation.validate_ip` path.  A caller's
``run_config`` with a different ``batch_size`` is overridden (with a
warning); every other run knob is honoured.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api.config import RunConfig
from repro.api.requests import (
    ReleasePackage,
    ReleaseRequest,
    SweepRequest,
    ValidateRequest,
    ValidationOutcome,
)
from repro.api.session import BlackBox, Session
from repro.nn.model import Sequential
from repro.nn.serialization import parameter_digest
from repro.serve.coalescer import BatchingCoalescer
from repro.serve.config import ServeConfig
from repro.serve.quota import AdmissionController, QuotaExceeded
from repro.utils.logging import get_logger
from repro.validation.package import ValidationPackage
from repro.validation.user import report_from_outputs, validate_ip

logger = get_logger("serve.service")

#: serve-side engine chunk size; matches ``Sequential.predict``'s default so
#: coalesced dispatches replay tests through the identical op sequence
SERVE_BATCH_SIZE = 256

#: distinct package objects whose fingerprints stay memoized at once
_FINGERPRINT_CACHE_SIZE = 32


def _architecture_signature(model: Sequential) -> str:
    """Stack-compatibility key: input shape + per-layer types/output shapes.

    Two models share a signature exactly when ``Engine.stacked_forward``
    can fuse them — same input shape, same layer sequence, same
    intermediate and final output shapes.  Pure shape arithmetic, no
    parameter reads.
    """
    shape = tuple(model.input_shape or ())
    parts = [f"in{shape}"]
    for layer in model.layers:
        shape = tuple(layer.output_shape(shape))
        parts.append(f"{type(layer).__name__}{shape}")
    return "|".join(parts)


class ServiceDraining(Exception):
    """The service is shutting down and no longer admits requests (HTTP 503)."""


class RequestTimeout(Exception):
    """A request exceeded ``request_timeout_s`` (HTTP 504)."""


class ValidationService:
    """Async multi-tenant façade over one :class:`~repro.api.Session`.

    Parameters
    ----------
    config:
        A :class:`ServeConfig`, a dict of its fields, or ``None``; keyword
        overrides apply either way.
    run_config:
        The session's :class:`RunConfig`; ``batch_size`` is always pinned
        to :data:`SERVE_BATCH_SIZE` (byte-stable coalescing — see the
        module docstring), overriding — with a warning — any other value a
        supplied config carries.
    """

    def __init__(
        self,
        config: Union[ServeConfig, Dict[str, object], None] = None,
        run_config: Union[RunConfig, Dict[str, object], None] = None,
        **overrides: object,
    ) -> None:
        self.config = ServeConfig.coerce(config, **overrides)
        if run_config is None:
            run_config = RunConfig(batch_size=SERVE_BATCH_SIZE)
        else:
            run_config = RunConfig.coerce(run_config)
            if run_config.batch_size != SERVE_BATCH_SIZE:
                # any other chunk size silently breaks the byte-identity
                # guarantee between coalesced serving and validate_ip
                logger.warning(
                    "overriding run_config.batch_size=%d with the pinned "
                    "serve batch size %d (byte-stable coalescing)",
                    run_config.batch_size,
                    SERVE_BATCH_SIZE,
                )
                run_config = run_config.with_overrides(
                    batch_size=SERVE_BATCH_SIZE
                )
        self.session = Session(run_config)
        self.admission = AdmissionController(
            max_pending=self.config.max_pending,
            tenant_queue_limit=self.config.tenant_queue_limit,
            tenant_rate=self.config.tenant_rate,
            tenant_burst=self.config.tenant_burst,
            retry_after_s=self.config.retry_after_s,
        )
        self.coalescer = BatchingCoalescer(
            self._dispatch_stacked,
            window_s=self.config.coalesce_window_s,
            max_models=self.config.max_stacked_models,
            max_per_tenant=self.config.tenant_stack_limit,
            enabled=self.config.coalesce,
        )
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.executor_workers,
            thread_name_prefix="repro-serve",
        )
        # engine kernels reuse per-engine workspace buffers; one dispatch at
        # a time keeps results bit-stable (coalescing, not thread fan-out,
        # is this service's parallelism)
        self._dispatch_lock = threading.Lock()
        # package fingerprints are content hashes over the full test payload;
        # the same (immutable, integrity-digested) package object is replayed
        # across many requests, so memoize by object identity — the cached
        # strong reference keeps each id stable while its entry lives
        self._fingerprints: "OrderedDict[int, Tuple[ValidationPackage, str]]" = (
            OrderedDict()
        )
        self._fingerprint_lock = threading.Lock()
        # models loaded for raw /v1/query inference, keyed by file identity
        self._query_models: "OrderedDict[Tuple[object, ...], Sequential]" = (
            OrderedDict()
        )
        self._query_model_lock = threading.Lock()
        self._draining = False
        self._closed = False
        self._started = time.monotonic()
        self._operations: Dict[str, int] = {
            "release": 0,
            "validate": 0,
            "sweep": 0,
            "query": 0,
        }
        #: billable-query accounting surfaced by ``/stats`` — the online
        #: verifier's CI assertion reads ``inputs`` (fingerprints served)
        self._queries: Dict[str, int] = {"requests": 0, "inputs": 0}

    # -- plumbing ------------------------------------------------------------
    async def _in_executor(self, fn, *args, **kwargs):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, partial(fn, *args, **kwargs)
        )

    def _check_admits(self) -> None:
        if self._draining or self._closed:
            raise ServiceDraining("service is draining; no new requests admitted")

    async def _timed(self, coroutine):
        timeout = self.config.request_timeout_s
        if timeout is None:
            return await coroutine
        try:
            return await asyncio.wait_for(coroutine, timeout)
        except asyncio.TimeoutError:
            raise RequestTimeout(
                f"request exceeded the {timeout:g}s budget"
            ) from None

    def _package_fingerprint(self, package: ValidationPackage) -> str:
        """Package half of the coalescer group key: ``package.digest()``,
        memoized per object."""
        key = id(package)
        with self._fingerprint_lock:
            cached = self._fingerprints.get(key)
            if cached is not None:
                self._fingerprints.move_to_end(key)
                return cached[1]
        fingerprint = package.digest()
        with self._fingerprint_lock:
            self._fingerprints[key] = (package, fingerprint)
            while len(self._fingerprints) > _FINGERPRINT_CACHE_SIZE:
                self._fingerprints.popitem(last=False)
        return fingerprint

    async def _dispatch_stacked(
        self, package: ValidationPackage, models: Sequence[object]
    ) -> np.ndarray:
        """One coalesced engine dispatch on the worker tier."""

        def run() -> np.ndarray:
            with self._dispatch_lock:
                engine = self.session.engine_for(models[0])
                return engine.stacked_forward(list(models), package.tests)

        return await self._in_executor(run)

    # -- the three operations ------------------------------------------------
    async def validate(
        self,
        request: Union[ValidateRequest, Dict[str, object], None] = None,
        ip: Optional[BlackBox] = None,
        tenant: str = "default",
        **overrides: object,
    ) -> ValidationOutcome:
        """Concurrent-safe :meth:`Session.validate` with coalescing.

        ``request`` may be a :class:`ValidateRequest`, a plain field dict or
        a wire envelope.  Model-backed IPs (a :class:`Sequential`, given
        directly or loaded from ``model_path``) go through the coalescer;
        opaque callables cannot be stacked and run alone on the worker tier.
        """
        self._check_admits()
        self.admission.admit(tenant)
        try:
            outcome = await self._timed(
                self._validate_inner(request, ip, overrides, tenant)
            )
            self._operations["validate"] += 1
            return outcome
        finally:
            self.admission.release(tenant)

    async def _validate_inner(
        self,
        request: Union[ValidateRequest, Dict[str, object], None],
        ip: Optional[BlackBox],
        overrides: Dict[str, object],
        tenant: str = "default",
    ) -> ValidationOutcome:
        req = ValidateRequest.coerce(request, **overrides)
        package = await self._in_executor(req.resolve_package)
        if ip is None:
            if req.model_path is None:
                raise ValueError(
                    "no IP to validate: pass ip=... or set model_path on the request"
                )
            ip = await self._in_executor(self.session.load_ip, req)
        if isinstance(ip, Sequential):
            package_fp = await self._in_executor(self._package_fingerprint, package)
            digest = await self._in_executor(parameter_digest, ip)
            # architecture in the key: only stack-compatible models fuse
            group_key = f"{package_fp}#{_architecture_signature(ip)}"
            observed = await self.coalescer.submit(
                group_key, package, digest, ip, tenant=tenant
            )
            report = report_from_outputs(observed, package)
        else:
            report = await self._in_executor(validate_ip, ip, package)
        return ValidationOutcome.from_report(report, package)

    async def query(
        self,
        request: Union[Dict[str, object], None] = None,
        tenant: str = "default",
        **overrides: object,
    ) -> Dict[str, object]:
        """Raw black-box inference: logits for a batch of inputs.

        The remote half of the online-verification loop
        (:class:`repro.online.HttpTransport` posts here): the server loads
        ``model_path`` into the named ``arch`` and runs its forward pass,
        charging one billable query per input row.  ``repr``-based JSON
        float serialisation returns the float64 logits exactly, so a full
        replay over this endpoint is byte-identical to in-process
        validation.
        """
        self._check_admits()
        self.admission.admit(tenant)
        try:
            result = await self._timed(self._query_inner(request, overrides))
            self._operations["query"] += 1
            return result
        finally:
            self.admission.release(tenant)

    async def _query_inner(
        self,
        request: Union[Dict[str, object], None],
        overrides: Dict[str, object],
    ) -> Dict[str, object]:
        data = dict(request or {})
        data.update(overrides)
        inputs = data.get("inputs")
        if inputs is None:
            raise ValueError("query needs 'inputs' (a batch of test vectors)")
        array = np.asarray(inputs, dtype=np.float64)
        if array.ndim == 1:
            array = array.reshape(1, -1)
        if array.ndim < 2 or array.shape[0] == 0:
            raise ValueError(
                f"query inputs must be a non-empty batch (leading batch "
                f"axis), got shape {array.shape}"
            )
        model = await self._in_executor(self._query_model, data)

        def run() -> np.ndarray:
            with self._dispatch_lock:
                return model.predict(array)

        outputs = await self._in_executor(run)
        self._queries["requests"] += 1
        self._queries["inputs"] += int(array.shape[0])
        return {
            "outputs": outputs.tolist(),
            "num_inputs": int(array.shape[0]),
            "num_classes": int(outputs.shape[1]),
        }

    def _query_model(self, data: Dict[str, object]) -> Sequential:
        """Load (or fetch the cached) model a query addresses.

        Keyed by the model file's identity (path + mtime + size) plus the
        rebuild parameters, so republishing a model file under the same
        path invalidates the cached instance.
        """
        from pathlib import Path

        model_path = data.get("model_path")
        if not model_path:
            raise ValueError("query needs 'model_path' (the served model file)")
        req = ValidateRequest(
            # placeholder: raw queries never touch a validation package, but
            # the request type requires a non-empty field
            package="<query>",
            model_path=str(model_path),
            arch=str(data.get("arch", "mnist")),
            width_multiplier=float(data.get("width_multiplier", 0.125)),
            input_size=(
                int(data["input_size"])
                if data.get("input_size") is not None
                else None
            ),
        )
        stat = Path(str(model_path)).stat()
        key = (
            str(model_path),
            stat.st_mtime_ns,
            stat.st_size,
            req.arch,
            req.width_multiplier,
            req.input_size,
        )
        with self._query_model_lock:
            cached = self._query_models.get(key)
            if cached is not None:
                self._query_models.move_to_end(key)
                return cached
        model = self.session.load_ip(req)
        with self._query_model_lock:
            self._query_models[key] = model
            while len(self._query_models) > _FINGERPRINT_CACHE_SIZE:
                self._query_models.popitem(last=False)
        return model

    async def release(
        self,
        request: Union[ReleaseRequest, Dict[str, object], None] = None,
        tenant: str = "default",
        **overrides: object,
    ) -> ReleasePackage:
        """Concurrent-safe :meth:`Session.release` on the worker tier."""
        self._check_admits()
        self.admission.admit(tenant)
        try:
            req = ReleaseRequest.coerce(request, **overrides)

            def run() -> ReleasePackage:
                with self._dispatch_lock:
                    return self.session.release(req)

            released = await self._timed(self._in_executor(run))
            self._operations["release"] += 1
            return released
        finally:
            self.admission.release(tenant)

    async def sweep(
        self,
        request: Union[SweepRequest, Dict[str, object], None] = None,
        tenant: str = "default",
        **overrides: object,
    ):
        """Concurrent-safe :meth:`Session.sweep` on the worker tier."""
        self._check_admits()
        self.admission.admit(tenant)
        try:
            req = SweepRequest.coerce(request, **overrides)

            def run():
                with self._dispatch_lock:
                    return self.session.sweep(req)

            summary = await self._timed(self._in_executor(run))
            self._operations["sweep"] += 1
            return summary
        finally:
            self.admission.release(tenant)

    # -- observability -------------------------------------------------------
    def healthz(self) -> Dict[str, object]:
        """Liveness body: ``ok`` while admitting, ``draining`` after."""
        return {
            "status": "draining" if (self._draining or self._closed) else "ok",
            "uptime_s": round(time.monotonic() - self._started, 3),
        }

    def stats(self) -> Dict[str, object]:
        """The ``/stats`` body: coalescer, admission, engine and fault state."""
        engine_stats = self.session.engine_stats()
        return {
            "uptime_s": round(time.monotonic() - self._started, 3),
            "draining": self._draining or self._closed,
            "operations": dict(self._operations),
            "queries": dict(self._queries),
            "coalescer": self.coalescer.stats.to_dict(),
            "admission": self.admission.snapshot(),
            "engine": {
                "hits": engine_stats.hits,
                "misses": engine_stats.misses,
                "evictions": engine_stats.evictions,
                "retries": engine_stats.retries,
                "restarts": engine_stats.restarts,
                "downgrades": engine_stats.downgrades,
                "hit_rate": round(engine_stats.hit_rate, 4),
            },
            "fault_events": list(self.session.fault_events()),
        }

    # -- lifecycle -----------------------------------------------------------
    async def drain(self) -> None:
        """Stop admitting, let in-flight work finish, release resources.

        Called by the HTTP layer's SIGTERM handler; bounded by
        ``drain_timeout_s`` — requests still running at the deadline are
        abandoned to their own timeouts.
        """
        if self._closed:
            return
        self._draining = True
        deadline = time.monotonic() + self.config.drain_timeout_s
        while self.admission.pending > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        await self.coalescer.drain()
        if self.admission.pending:
            logger.info(
                "drain deadline reached with %d requests still pending",
                self.admission.pending,
            )
        self.close()

    def close(self) -> None:
        """Synchronous teardown (idempotent): worker tier, then the session."""
        if self._closed:
            return
        self._draining = True
        self._closed = True
        self._executor.shutdown(wait=True)
        with self._fingerprint_lock:
            self._fingerprints.clear()
        with self._query_model_lock:
            self._query_models.clear()
        self.session.close()

    async def __aenter__(self) -> "ValidationService":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.drain()


__all__ = [
    "QuotaExceeded",
    "RequestTimeout",
    "SERVE_BATCH_SIZE",
    "ServiceDraining",
    "ValidationService",
]
