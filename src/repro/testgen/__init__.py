"""Functional test generation: the paper's Algorithms 1 and 2, their
combination, and the neuron-coverage / random baselines.

Strategies register in the ``strategies`` namespace of the cross-subsystem
:mod:`repro.registry` (see :mod:`repro.testgen.strategies`), so declarative
specs (``repro.campaign``) and the :class:`repro.api.Session` facade look
generators up by name without hardcoding constructors.  The deprecated
per-name helpers of :mod:`repro.testgen.registry` still resolve but warn.
"""

from repro.testgen.base import GenerationResult, TestGenerator, stack_samples
from repro.testgen.combined import CombinedGenerator
from repro.testgen.gradient_gen import TARGET_MODES, GradientTestGenerator
from repro.testgen.neuron_testgen import NeuronCoverageSelector
from repro.testgen.random_select import RandomSelector
from repro.testgen.registry import (
    available_strategies,
    get_strategy,
    register_strategy,
    strategy_knobs,
)
from repro.testgen.selection import TrainingSetSelector
from repro.testgen.strategies import StrategyFactory, build_generator

__all__ = [
    "GenerationResult",
    "TestGenerator",
    "stack_samples",
    "CombinedGenerator",
    "TARGET_MODES",
    "GradientTestGenerator",
    "NeuronCoverageSelector",
    "RandomSelector",
    "TrainingSetSelector",
    "StrategyFactory",
    "available_strategies",
    "build_generator",
    "get_strategy",
    "register_strategy",
    "strategy_knobs",
]
