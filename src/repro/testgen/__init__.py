"""Functional test generation: the paper's Algorithms 1 and 2, their
combination, the neuron-coverage / random baselines, and a name-based
strategy registry so declarative specs (``repro.campaign``) can look
generators up without hardcoding constructors."""

from repro.testgen.base import GenerationResult, TestGenerator, stack_samples
from repro.testgen.combined import CombinedGenerator
from repro.testgen.gradient_gen import TARGET_MODES, GradientTestGenerator
from repro.testgen.neuron_testgen import NeuronCoverageSelector
from repro.testgen.random_select import RandomSelector
from repro.testgen.registry import (
    available_strategies,
    build_generator,
    get_strategy,
    register_strategy,
    strategy_knobs,
)
from repro.testgen.selection import TrainingSetSelector

__all__ = [
    "GenerationResult",
    "TestGenerator",
    "stack_samples",
    "CombinedGenerator",
    "TARGET_MODES",
    "GradientTestGenerator",
    "NeuronCoverageSelector",
    "RandomSelector",
    "TrainingSetSelector",
    "available_strategies",
    "build_generator",
    "get_strategy",
    "register_strategy",
    "strategy_knobs",
]
