"""Common interfaces and result containers for functional test generation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.coverage.activation import ActivationCriterion
from repro.engine import Engine, resolve_engine
from repro.nn.model import Sequential


@dataclass
class GenerationResult:
    """Outcome of a test-generation run.

    Attributes
    ----------
    tests:
        The generated functional tests, shape ``(N, *input_shape)``.
    coverage_history:
        ``coverage_history[i]`` is VC(X) after the first ``i + 1`` tests —
        exactly the curves plotted in Fig. 3.
    gains:
        Marginal coverage gain contributed by each test, in order.
    sources:
        Per-test provenance label, e.g. ``"training"`` or ``"gradient"`` —
        used by the combined method to report its switch point.
    dataset_indices:
        Per-test index into the generator's source dataset, recorded *at
        selection time* (``-1`` for synthesised tests with no dataset
        origin).  ``None`` when the generator has no dataset notion at all.
        This is the authoritative provenance record — mapping tests back by
        pixel comparison is ambiguous for duplicate images.
    method:
        Name of the generator that produced this result.
    """

    tests: np.ndarray
    coverage_history: List[float] = field(default_factory=list)
    gains: List[float] = field(default_factory=list)
    sources: List[str] = field(default_factory=list)
    dataset_indices: Optional[np.ndarray] = None
    method: str = "unknown"

    def __post_init__(self) -> None:
        self.tests = np.asarray(self.tests, dtype=np.float64)
        n = self.tests.shape[0] if self.tests.ndim else 0
        for name, seq in (
            ("coverage_history", self.coverage_history),
            ("gains", self.gains),
            ("sources", self.sources),
        ):
            if seq and len(seq) != n:
                raise ValueError(
                    f"{name} has {len(seq)} entries but there are {n} tests"
                )
        if self.dataset_indices is not None:
            self.dataset_indices = np.asarray(self.dataset_indices, dtype=np.int64)
            if self.dataset_indices.shape != (n,):
                raise ValueError(
                    f"dataset_indices has shape {self.dataset_indices.shape} "
                    f"but there are {n} tests"
                )

    @property
    def num_tests(self) -> int:
        return int(self.tests.shape[0])

    @property
    def final_coverage(self) -> float:
        """VC(X) of the full generated test set."""
        if not self.coverage_history:
            raise ValueError("no coverage history recorded")
        return self.coverage_history[-1]

    def truncated(self, n: int) -> "GenerationResult":
        """Result restricted to the first ``n`` tests (for budget sweeps)."""
        if n <= 0 or n > self.num_tests:
            raise ValueError(f"n must be in [1, {self.num_tests}], got {n}")
        return GenerationResult(
            tests=self.tests[:n].copy(),
            coverage_history=list(self.coverage_history[:n]),
            gains=list(self.gains[:n]),
            sources=list(self.sources[:n]),
            dataset_indices=(
                self.dataset_indices[:n].copy()
                if self.dataset_indices is not None
                else None
            ),
            method=self.method,
        )

    def switch_index(self) -> Optional[int]:
        """Index of the first non-training test (combined method's switch point)."""
        for i, src in enumerate(self.sources):
            if src != "training":
                return i
        return None


class TestGenerator:
    """Interface implemented by every functional test generator.

    Every generator owns (or is handed) a batched execution
    :class:`~repro.engine.Engine` for the wrapped model; passing a shared
    engine lets several generators (e.g. the combined method's selector and
    gradient synthesiser) reuse one memoized mask/gradient cache.
    """

    #: short name used in reports and benchmark tables
    method_name: str = "base"

    def __init__(
        self,
        model: Sequential,
        criterion: Optional[ActivationCriterion] = None,
        engine: Optional[Engine] = None,
    ) -> None:
        self.model = model
        self.criterion = criterion
        # generators are long-lived and revisit their pools, so the fallback
        # engine keeps its memo cache
        self.engine = resolve_engine(model, criterion, engine)

    def generate(self, num_tests: int) -> GenerationResult:
        """Produce ``num_tests`` functional tests for the wrapped model."""
        raise NotImplementedError


def stack_samples(samples: Sequence[np.ndarray]) -> np.ndarray:
    """Stack a list of single samples into a test batch (empty-safe)."""
    if not samples:
        raise ValueError("no samples to stack")
    return np.stack([np.asarray(s, dtype=np.float64) for s in samples], axis=0)


__all__ = ["GenerationResult", "TestGenerator", "stack_samples"]
