"""The combined functional test generation method (Section IV-D).

Algorithm 1 (selection from the training set) is very effective for the first
few tests but saturates; Algorithm 2 (gradient-based synthesis) keeps making
progress but is less efficient early on.  The combined method starts with
Algorithm 1 and switches to Algorithm 2 once the marginal coverage gain per
test of the gradient method exceeds that of the best remaining training
sample — the switch-point rule the paper proposes.

Two switch policies are supported:

* ``"adaptive"`` (paper) — at every step, compare the marginal gain of the
  best remaining training candidate with the (per-test) gain a freshly
  synthesised gradient batch would deliver, and take whichever is larger.
  Once the gradient method wins it keeps winning in practice, so this
  degenerates into "switch once" while remaining robust to noise.
* ``"fixed:<n>"`` — switch unconditionally after ``n`` training-selected
  tests (used by the switch-point ablation benchmark).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.coverage.activation import ActivationCriterion, default_criterion_for
from repro.coverage.bitmap import CoverageMap, MaskMatrix
from repro.coverage.parameter_coverage import ActivationMaskCache, CoverageTracker
from repro.data.datasets import Dataset
from repro.engine import Engine
from repro.nn.model import Sequential
from repro.testgen.base import GenerationResult, TestGenerator
from repro.testgen.gradient_gen import GradientTestGenerator
from repro.testgen.selection import TrainingSetSelector
from repro.utils.logging import get_logger
from repro.utils.rng import RngLike, as_generator

logger = get_logger("testgen.combined")


def _parse_switch_policy(policy: str) -> Optional[int]:
    """Return the fixed switch index, or ``None`` for the adaptive policy."""
    if policy == "adaptive":
        return None
    if policy.startswith("fixed:"):
        value = policy.split(":", 1)[1]
        try:
            n = int(value)
        except ValueError as exc:
            raise ValueError(f"invalid fixed switch policy {policy!r}") from exc
        if n < 0:
            raise ValueError("fixed switch point must be non-negative")
        return n
    raise ValueError(f"unknown switch policy {policy!r}")


class CombinedGenerator(TestGenerator):
    """Training-set selection followed by gradient-based synthesis.

    Parameters
    ----------
    model: the trained (vendor-side) model.
    training_set: dataset Algorithm 1 selects from.
    switch_policy: ``"adaptive"`` (default) or ``"fixed:<n>"``.
    candidate_pool: optional cap on the number of training candidates scanned.
    gradient_kwargs: forwarded to :class:`GradientTestGenerator` (step size,
        update count, targeting mode, ...).
    """

    method_name = "combined"

    def __init__(
        self,
        model: Sequential,
        training_set: Dataset,
        criterion: Optional[ActivationCriterion] = None,
        switch_policy: str = "adaptive",
        candidate_pool: Optional[int] = None,
        rng: RngLike = None,
        engine: Optional[Engine] = None,
        **gradient_kwargs: object,
    ) -> None:
        super().__init__(model, criterion or default_criterion_for(model), engine)
        self.training_set = training_set
        self.switch_policy = switch_policy
        self._fixed_switch = _parse_switch_policy(switch_policy)
        self._rng = as_generator(rng)
        # one shared engine: the selector's mask cache and the gradient
        # generator's synthesis reuse the same memoized batched passes
        self._selector = TrainingSetSelector(
            model,
            training_set,
            criterion=self.criterion,
            candidate_pool=candidate_pool,
            rng=self._rng,
            engine=self.engine,
        )
        self._gradient = GradientTestGenerator(
            model, criterion=self.criterion, rng=self._rng, engine=self.engine, **gradient_kwargs  # type: ignore[arg-type]
        )

    # -- helpers -------------------------------------------------------------
    def _gradient_batch_gain_per_test(
        self, tracker: CoverageTracker
    ) -> tuple[float, np.ndarray, MaskMatrix]:
        """Synthesise one trial batch and measure its average per-test gain.

        Returns ``(gain_per_test, batch, batch_masks)`` so the batch can be
        reused if the gradient method is chosen (the synthesis is the
        expensive part).  Masks come back packed; the new-coverage accounting
        is pure popcount arithmetic.
        """
        if self._gradient.target == "residual":
            synthesis_model = self._gradient._residual_model(tracker.covered_mask)
        else:
            synthesis_model = self.model
        batch = self._gradient.synthesize_batch(synthesis_model)
        masks = self.engine.packed_activation_masks(batch, self.criterion)
        union = CoverageMap(tracker.total_parameters)
        covered = tracker.covered_map
        new_total = 0
        for i in range(len(masks)):
            mask = masks.row(i)
            new_total += mask.andnot_count(covered, union)
            union.union_(mask)
        gain_per_test = new_total / len(masks) / tracker.total_parameters
        return gain_per_test, batch, masks

    # -- generation ------------------------------------------------------------
    def generate(self, num_tests: int) -> GenerationResult:
        if num_tests <= 0:
            raise ValueError("num_tests must be positive")

        cache: ActivationMaskCache = self._selector._ensure_cache()
        pool_indices = self._selector._pool_indices
        assert pool_indices is not None
        tracker = CoverageTracker(self.model, self.criterion)
        available = np.ones(len(cache), dtype=bool)

        tests: List[np.ndarray] = []
        history: List[float] = []
        gains: List[float] = []
        sources: List[str] = []
        dataset_indices: List[int] = []

        pending_batch: List[np.ndarray] = []
        pending_masks: List[CoverageMap] = []
        switched = False

        while len(tests) < num_tests:
            use_gradient = False

            if switched:
                use_gradient = True
            elif self._fixed_switch is not None:
                use_gradient = len(tests) >= self._fixed_switch
                switched = use_gradient
            else:
                # adaptive policy: compare best remaining training gain with
                # the per-test gain of a fresh gradient batch.  Availability
                # is an explicit subset — no sentinel values in the gains
                if available.any():
                    _, best_training_gain = cache.best_candidate(
                        tracker.covered_map, available
                    )
                else:
                    best_training_gain = -1.0
                grad_gain, batch, masks = self._gradient_batch_gain_per_test(tracker)
                if grad_gain > best_training_gain:
                    use_gradient = True
                    switched = True
                    pending_batch = list(batch)
                    pending_masks = [masks.row(i) for i in range(len(masks))]
                    logger.info(
                        "combined method switching to gradient generation after "
                        "%d tests (training gain %.4f < gradient gain %.4f)",
                        len(tests),
                        best_training_gain,
                        grad_gain,
                    )

            if use_gradient:
                if not pending_batch:
                    if self._gradient.target == "residual":
                        model = self._gradient._residual_model(tracker.covered_mask)
                    else:
                        model = self.model
                    batch = self._gradient.synthesize_batch(model)
                    packed = self.engine.packed_activation_masks(batch, self.criterion)
                    pending_batch = list(batch)
                    pending_masks = [packed.row(i) for i in range(len(packed))]
                sample = pending_batch.pop(0)
                mask = pending_masks.pop(0)
                gain = tracker.add_mask(mask)
                tests.append(sample)
                sources.append("gradient")
                dataset_indices.append(-1)  # synthesised: no dataset origin
            else:
                best, _gain = cache.best_candidate(tracker.covered_map, available)
                gain = tracker.add_mask(cache.packed_mask(best))
                available[best] = False
                tests.append(cache.sample(best))
                sources.append("training")
                dataset_indices.append(int(pool_indices[best]))

            gains.append(gain)
            history.append(tracker.coverage)

        return GenerationResult(
            tests=np.stack(tests, axis=0),
            coverage_history=history,
            gains=gains,
            sources=sources,
            dataset_indices=np.asarray(dataset_indices, dtype=np.int64),
            method=self.method_name,
        )


__all__ = ["CombinedGenerator"]
