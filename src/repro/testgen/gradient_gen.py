"""Algorithm 2 — gradient-based generation of new functional tests.

When selecting from the training set saturates, the paper synthesises new
tests: starting from an (almost) blank input, gradient descent *on the input*
drives down a per-class loss until the network classifies the synthetic input
as that class (Eq. 8).  One round produces ``k`` samples, one per output
class, because a batch covering every category has the best chance of
activating many parameters.

Two targeting modes are provided:

* ``target="model"`` — the literal Algorithm 2: the loss is evaluated on the
  full network.  Successive rounds differ through their random
  initialisation, otherwise every round would synthesise identical samples.
* ``target="residual"`` (default) — the paper's stated intuition ("samples
  which can be classified correctly by the network consisting of the
  un-activated parameters", Section IV-C): before each round the already
  activated parameters are zeroed out in a scratch copy of the model, and the
  synthesis loss is evaluated on that residual network.  This explicitly
  steers each round towards the parameters still missing from the coverage
  union, which is what lets the gradient-based curve in Fig. 3 keep climbing.

Coverage bookkeeping is always done on the *original* model.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.coverage.activation import ActivationCriterion, default_criterion_for
from repro.coverage.parameter_coverage import CoverageTracker
from repro.engine import Engine
from repro.nn.losses import Loss, get_loss
from repro.nn.model import Sequential
from repro.testgen.base import GenerationResult, TestGenerator
from repro.utils.logging import get_logger
from repro.utils.rng import RngLike, as_generator

logger = get_logger("testgen.gradient")

TARGET_MODES = ("model", "residual")


class GradientTestGenerator(TestGenerator):
    """Gradient-based synthesis of functional tests (Algorithm 2).

    Parameters
    ----------
    model: the trained (vendor-side) model.
    step_size: gradient-descent step size η in Eq. 8.
    max_updates: number of input updates T per synthesis round.
    target: ``"residual"`` (default, see module docstring) or ``"model"``.
    loss: loss J driven down during synthesis; the softmax cross-entropy by
        default, ``"negative_logit"`` is a useful alternative when the softmax
        saturates.
    init_noise_std: standard deviation of the random initialisation around
        zero.  The paper initialises with exact zeros; a small jitter keeps
        successive rounds from being identical in ``"model"`` mode and is
        harmless in ``"residual"`` mode.
    clip_range: optional ``(low, high)`` range the synthetic inputs are kept
        inside (images live in [0, 1]); ``None`` disables clipping.
    """

    method_name = "gradient-generation"

    def __init__(
        self,
        model: Sequential,
        criterion: Optional[ActivationCriterion] = None,
        step_size: float = 0.1,
        max_updates: int = 50,
        target: str = "residual",
        loss: str | Loss = "cross_entropy",
        init_noise_std: float = 0.01,
        clip_range: Optional[Tuple[float, float]] = (0.0, 1.0),
        rng: RngLike = None,
        engine: Optional[Engine] = None,
    ) -> None:
        super().__init__(model, criterion or default_criterion_for(model), engine)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if max_updates <= 0:
            raise ValueError("max_updates must be positive")
        if target not in TARGET_MODES:
            raise ValueError(f"target must be one of {TARGET_MODES}, got {target!r}")
        if init_noise_std < 0:
            raise ValueError("init_noise_std must be non-negative")
        if clip_range is not None and clip_range[0] >= clip_range[1]:
            raise ValueError("clip_range must be (low, high) with low < high")
        self.step_size = float(step_size)
        self.max_updates = int(max_updates)
        self.target = target
        self.loss = get_loss(loss)
        self.init_noise_std = float(init_noise_std)
        self.clip_range = clip_range
        self._rng = as_generator(rng)

    # -- synthesis ----------------------------------------------------------
    def synthesize_batch(
        self, synthesis_model: Optional[Sequential] = None
    ) -> np.ndarray:
        """One round of Algorithm 2: ``k`` synthetic samples, one per class.

        ``synthesis_model`` is the network the loss is evaluated on; by
        default the wrapped model itself (``"model"`` mode behaviour).

        All ``k`` per-class updates are driven as one batch: every descent
        step is a single batched input-gradient query through the execution
        engine rather than ``k`` per-class passes.
        """
        target_model = synthesis_model or self.model
        if target_model is self.model:
            engine = self.engine
        else:
            # residual scratch copies are used for one round only — a fresh
            # uncached engine avoids hashing throwaway parameters
            engine = Engine(target_model, criterion=self.criterion, cache=False)
        k = self.model.num_classes
        shape = (k, *self.model.input_shape)  # type: ignore[misc]
        x = np.zeros(shape, dtype=np.float64)
        if self.init_noise_std > 0:
            x += self._rng.normal(0.0, self.init_noise_std, size=shape)
            if self.clip_range is not None:
                np.clip(x, *self.clip_range, out=x)
        targets = np.arange(k)
        for _ in range(self.max_updates):
            _, grad = engine.input_gradients(x, targets, self.loss)
            x = x - self.step_size * grad
            if self.clip_range is not None:
                np.clip(x, *self.clip_range, out=x)
        return x

    def _residual_model(self, covered: np.ndarray) -> Sequential:
        """Scratch copy of the model with the already-covered parameters zeroed."""
        scratch = self.model.copy()
        view = scratch.parameter_view()
        flat = view.flat_values()
        flat[covered] = 0.0
        view.set_flat_values(flat)
        return scratch

    # -- generation ---------------------------------------------------------
    def generate(
        self,
        num_tests: int,
        tracker: Optional[CoverageTracker] = None,
    ) -> GenerationResult:
        """Generate ``num_tests`` synthetic functional tests.

        An existing :class:`CoverageTracker` may be passed in (the combined
        method does this) so synthesis continues from the current coverage
        state; otherwise a fresh tracker is used.
        """
        if num_tests <= 0:
            raise ValueError("num_tests must be positive")
        own_tracker = tracker or CoverageTracker(self.model, self.criterion)

        tests: List[np.ndarray] = []
        history: List[float] = []
        gains: List[float] = []

        while len(tests) < num_tests:
            if self.target == "residual":
                synthesis_model = self._residual_model(own_tracker.covered_mask)
            else:
                synthesis_model = self.model
            batch = self.synthesize_batch(synthesis_model)
            # packed masks for the whole synthetic batch in one engine pass
            batch_masks = self.engine.packed_activation_masks(batch, self.criterion)
            for i in range(len(batch_masks)):
                if len(tests) >= num_tests:
                    break
                gain = own_tracker.add_mask(batch_masks.row(i))
                tests.append(batch[i])
                gains.append(gain)
                history.append(own_tracker.coverage)
            logger.debug(
                "gradient generation: %d/%d tests, coverage %.3f",
                len(tests),
                num_tests,
                own_tracker.coverage,
            )

        return GenerationResult(
            tests=np.stack(tests, axis=0),
            coverage_history=history,
            gains=gains,
            sources=["gradient"] * len(tests),
            dataset_indices=np.full(len(tests), -1, dtype=np.int64),
            method=self.method_name,
        )

    # -- diagnostics -----------------------------------------------------------
    def synthesis_accuracy(self, batch: Optional[np.ndarray] = None) -> float:
        """Fraction of a synthetic batch classified as its intended class.

        The paper argues synthetic samples work because the model classifies
        them correctly (Fig. 4); this returns that fraction for one batch.
        """
        if batch is None:
            batch = self.synthesize_batch()
        k = self.model.num_classes
        if batch.shape[0] != k:
            raise ValueError(f"expected one sample per class ({k}), got {batch.shape[0]}")
        predicted = self.model.predict_classes(batch)
        return float(np.mean(predicted == np.arange(k)))


__all__ = ["GradientTestGenerator", "TARGET_MODES"]
